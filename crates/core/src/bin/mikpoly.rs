//! `mikpoly` — command-line front end for the compiler.
//!
//! ```text
//! mikpoly gemm M N K [--machine a100|h100|910a|a100-cc] [--oracle] [--split-k]
//! mikpoly conv N C H W OC KH KW STRIDE PAD [--machine ...] [--winograd]
//! mikpoly library [--machine ...]            # show the tuned kernel library
//! mikpoly serve [--workers N] [--devices N] [--requests N]
//!               [--utilization F] [--seed N] [--deadline-us N] [--machine ...]
//!               [--tenants N] [--batch-window-us N] [--max-batch N]
//!               [--trace-out trace.json] [--metrics-out metrics.txt]
//!               [--blackbox-out blackbox.json]
//!               [--snapshot-dir DIR] [--snapshot-interval-ms N]
//!               [--drain-after-us N]
//! mikpoly stats [serve flags] [--json]       # telemetered serve + metrics table
//! mikpoly health [--requests N] [--workers N] [--seed N] [--fault-rate F]
//!               [--deadline-us N] [--compile-budget-us N] [--json] [--machine ...]
//! mikpoly trace-stats trace.json             # validate/summarize a trace file
//! mikpoly chaos [--requests N] [--workers N] [--seed N] [--fault-rate F]
//!               [--stall-ns N] [--queue-capacity N] [--deadline-us N]
//!               [--compile-budget-us N] [--machine ...]
//! mikpoly cache-bench [--threads N] [--ops N] [--keys N] [--capacity N]
//!               [--theta F] [--seed N] [--min-hit-rate F]
//!               [--restart-entries N] [--restart-budget-ms N] [--machine ...]
//!               [--crash-programs N] [--crash-flips N]
//! ```
//!
//! Runs the offline stage (cached in-process), polymerizes the requested
//! operator, prints the chosen program as restructured online loops, and
//! times it on the simulated machine. `serve` instead drives the
//! concurrent serving runtime: a Poisson stream of transformer-layer GEMM
//! requests with random sequence lengths, served by a worker pool over a
//! simulated device pool, reporting tail latency, its decomposition, and
//! program-cache behaviour. With `--trace-out` / `--metrics-out` the run
//! is telemetered and exports a Chrome trace-event file (loadable in
//! Perfetto) and a Prometheus-style metrics snapshot; with
//! `--blackbox-out` the stream is additionally evaluated against the
//! default SLO policy and, on violation, a black-box dump (SLO report +
//! every retained flight-recorder chain) is written for offline triage.
//! With `--snapshot-dir` the serve restores whatever warm-state
//! generation the directory holds before taking traffic (salvaging torn
//! bundles, quarantining damage), snapshots the caches live in the
//! background every `--snapshot-interval-ms`, and ends with a graceful
//! drain that persists a final generation and prints the drain report;
//! `--drain-after-us` pins a deterministic virtual drain point, shedding
//! later arrivals as `draining`.
//! `stats` runs the same stream and prints the metrics registry as an
//! aligned table (`--json` for the machine-readable snapshot); `health`
//! runs a fixed-seed stream, evaluates windowed SLIs and multi-window
//! burn rates, prints the health snapshot, and self-validates that the
//! snapshot's disposition counts equal the serving report's.
//! `trace-stats` parses a previously exported trace and reports event
//! counts (the CI smoke test uses it to prove the JSON is well-formed).
//! `chaos` replays a request stream under a deterministic fault plan
//! (device faults, search stalls, compile panics, cache corruption) plus
//! admission control, prints the disposition table, and exits non-zero if
//! any request lacks exactly one terminal disposition — the CI chaos
//! smoke.

use std::sync::Arc;

use accel_sim::{Cluster, FaultPlan, Interconnect, MachineModel};
use mikpoly::serving::poisson_arrivals;
use mikpoly::telemetry::{render_blackbox, SloPolicy, Telemetry};
use mikpoly::{
    decode_bundle, encode_bundle, record_end_offsets, salvage_bundle, BatchingOptions,
    BreakerPolicy, CacheStats, CompiledProgram, Disposition, Engine, MikPoly, OfflineOptions,
    OnlineOptions, PatternId, Region, Request, ServingOptions, ServingRuntime, ShardedCache,
    Snapshotter, TemplateKind, TenantPolicy, TenantQuota,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tensor_ir::{Conv2dShape, GemmShape, Operator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("");
    }
    let machine = match flag_value(&args, "--machine").unwrap_or("a100") {
        "a100" => MachineModel::a100(),
        "h100" => MachineModel::h100(),
        "910a" | "ascend" | "npu" => MachineModel::ascend910a(),
        "a100-cc" | "cuda-cores" => MachineModel::a100_cuda_cores(),
        other => usage(&format!("unknown machine '{other}'")),
    };

    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let dim = |i: usize| -> usize {
        positional
            .get(i)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage("expected a positive integer dimension"))
    };

    match positional.first().map(|s| s.as_str()) {
        Some("gemm") if positional.len() == 4 => {
            let op = Operator::gemm(GemmShape::new(dim(1), dim(2), dim(3)));
            run(machine, TemplateKind::Gemm, op, &args);
        }
        Some("conv") if positional.len() == 10 => {
            let shape = Conv2dShape::new(
                dim(1),
                dim(2),
                dim(3),
                dim(4),
                dim(5),
                dim(6),
                dim(7),
                dim(8),
                dim(9),
            );
            let (op, template) = if has_flag(&args, "--winograd") {
                (Operator::conv2d_winograd(shape), TemplateKind::Gemm)
            } else {
                (Operator::conv2d(shape), TemplateKind::Conv)
            };
            run(machine, template, op, &args);
        }
        Some("serve") => {
            serve(machine, &args, ServeMode::Report);
        }
        Some("stats") => {
            serve(machine, &args, ServeMode::Stats);
        }
        Some("health") => {
            health(machine, &args);
        }
        Some("chaos") => {
            chaos(machine, &args);
        }
        Some("cache-bench") => {
            cache_bench(machine, &args);
        }
        Some("trace-stats") => {
            let path = positional
                .get(1)
                .map(|s| s.as_str())
                .unwrap_or_else(|| usage("trace-stats needs a trace file path"));
            trace_stats(path);
        }
        Some("library") => {
            let compiler = build(machine, TemplateKind::Gemm, &args);
            println!(
                "micro-kernel library for {} ({} kernels):",
                compiler.machine(),
                compiler.library().kernels.len()
            );
            for t in &compiler.library().kernels {
                println!(
                    "  {:<28} score {:.3}  steady {:.2} TFLOPS  g(64) = {:.2} us",
                    t.kernel.to_string(),
                    t.score,
                    t.steady_tflops,
                    t.perf.predict(64) / 1e3
                );
            }
        }
        _ => usage("unrecognized command"),
    }
}

fn build(machine: MachineModel, template: TemplateKind, args: &[String]) -> MikPoly {
    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let t0 = std::time::Instant::now();
    let compiler = MikPoly::offline(machine, &OfflineOptions::paper().with_template(template))
        .with_options(OnlineOptions {
            split_k: has_flag(args, "--split-k"),
            ..OnlineOptions::default()
        });
    eprintln!(
        "offline: {} kernels in {:.1?}\n",
        compiler.library().kernels.len(),
        t0.elapsed()
    );
    compiler
}

fn run(machine: MachineModel, template: TemplateKind, op: Operator, args: &[String]) {
    let compiler = build(machine, template, args);
    if has_flag(args, "--oracle") {
        let oracle = compiler.compile_oracle(&op);
        let report = compiler.simulate(&oracle.program);
        println!(
            "oracle ({} candidates simulated in {:.1?}):\n{}",
            oracle.candidates, oracle.search, oracle.program
        );
        println!(
            "device time: {:.1} us ({:.1} TFLOPS)",
            report.time_us(),
            report.tflops()
        );
        return;
    }
    let result = compiler.run(&op);
    println!("{}", result.program);
    println!(
        "polymerized in {:.1} us ({} strategies evaluated, {} pruned)",
        result.compile_ns as f64 / 1e3,
        result.program.stats.strategies_evaluated,
        result.program.stats.strategies_pruned
    );
    println!(
        "device time: {:.1} us ({:.1} TFLOPS, sm_efficiency {:.1}%, grid {})",
        result.report.time_us(),
        result.report.tflops(),
        result.report.sm_efficiency * 100.0,
        result.report.grid_size
    );
}

/// What `serve` prints at the end of the stream.
#[derive(Clone, Copy, PartialEq)]
enum ServeMode {
    /// The human latency/cache report (`mikpoly serve`).
    Report,
    /// The metrics registry as an aligned table (`mikpoly stats`).
    Stats,
}

/// Drives the serving runtime on a synthetic transformer-layer stream.
fn serve(machine: MachineModel, args: &[String], mode: ServeMode) {
    let workers: usize = parsed_flag(args, "--workers").unwrap_or(4);
    let devices: usize = parsed_flag(args, "--devices").unwrap_or(workers);
    let n_requests: usize = parsed_flag(args, "--requests").unwrap_or(96);
    let utilization: f64 = parsed_flag(args, "--utilization").unwrap_or(0.8);
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(42);
    if workers == 0 || devices == 0 || n_requests == 0 || utilization <= 0.0 {
        usage("serve needs positive --workers/--devices/--requests/--utilization");
    }
    let deadline_us: Option<f64> = parsed_flag(args, "--deadline-us");
    let tenants: u32 = parsed_flag(args, "--tenants").unwrap_or(1);
    let batch_window_us: Option<f64> = parsed_flag(args, "--batch-window-us");
    let max_batch: usize = parsed_flag(args, "--max-batch").unwrap_or(8);
    if tenants == 0 || max_batch == 0 || batch_window_us.is_some_and(|w| w < 0.0) {
        usage("serve needs positive --tenants/--max-batch and a non-negative --batch-window-us");
    }
    let trace_out = flag_value(args, "--trace-out");
    let metrics_out = flag_value(args, "--metrics-out");
    let blackbox_out = flag_value(args, "--blackbox-out");
    let snapshot_dir = flag_value(args, "--snapshot-dir");
    let snapshot_interval_ms: u64 = parsed_flag(args, "--snapshot-interval-ms").unwrap_or(200);
    let drain_after_us: Option<f64> = parsed_flag(args, "--drain-after-us");
    if snapshot_interval_ms == 0 || drain_after_us.is_some_and(|us| us < 0.0) {
        usage("serve needs a positive --snapshot-interval-ms and non-negative --drain-after-us");
    }
    let telemetry = if trace_out.is_some()
        || metrics_out.is_some()
        || blackbox_out.is_some()
        || mode == ServeMode::Stats
    {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    // A reduced library keeps the offline stage interactive; the online
    // path (the thing `serve` exercises) is identical.
    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let t0 = std::time::Instant::now();
    let engine = Arc::new(Engine::offline_with_telemetry(
        machine.clone(),
        &OfflineOptions::fast(),
        Arc::clone(&telemetry),
    ));
    eprintln!("offline: done in {:.1?}\n", t0.elapsed());

    // Warm restart: restore whatever generation the snapshot directory
    // holds (salvaging torn bundles, quarantining damage) before taking
    // traffic. An absent directory is a normal cold start.
    if let Some(dir) = snapshot_dir {
        let restore = engine.restore_program_caches(dir);
        eprintln!("{restore}");
    }

    // One request = the four GEMMs of a transformer encoder layer at a
    // random sequence length (quantized to 16, the serving bucket size).
    let layer = |len: usize| -> Vec<(Operator, usize)> {
        [(2304, 768), (768, 768), (3072, 768), (768, 3072)]
            .into_iter()
            .map(|(n, k)| (Operator::gemm(GemmShape::new(len, n, k)), 1))
            .collect()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let lengths: Vec<usize> = (0..n_requests)
        .map(|_| 16 * rng.gen_range(2usize..=32))
        .collect();

    // Calibrate the arrival rate against the mean device time of a median
    // request so --utilization is load relative to pool capacity.
    let probe = engine
        .run_graph(layer(256).iter().map(|(op, c)| (op, *c)))
        .device_ns;
    let mean_gap_ns = probe / (utilization * workers.min(devices) as f64);
    let requests: Vec<Request> = poisson_arrivals(n_requests, mean_gap_ns, seed)
        .into_iter()
        .zip(&lengths)
        .enumerate()
        .map(|(id, (arrival_ns, &len))| Request {
            id,
            arrival_ns,
            ops: layer(len),
            deadline_ns: deadline_us.map(|us| arrival_ns + us * 1e3),
            tenant: id as u32 % tenants,
        })
        .collect();

    // Batching and tenancy are strictly opt-in: without the flags the
    // options below are the defaults and the solo dispatcher runs.
    let options = ServingOptions {
        batching: batch_window_us.map(|us| BatchingOptions::new(us * 1e3, max_batch)),
        tenancy: (tenants > 1).then(|| {
            TenantPolicy::new(
                (0..tenants)
                    .map(|t| TenantQuota {
                        tenant: t,
                        weight: 1.0,
                        max_waiting: None,
                    })
                    .collect(),
            )
        }),
        ..ServingOptions::default()
    };
    let cluster = Cluster::new(machine, devices, Interconnect::nvlink3());
    let runtime = ServingRuntime::new(Arc::clone(&engine), cluster, workers).with_options(options);
    // A virtual drain point closes admission deterministically: requests
    // arriving at or after the point are shed as draining.
    if let Some(us) = drain_after_us {
        runtime.lifecycle().request_drain_at(us * 1e3);
    }
    // Live snapshotting runs beside the serve, persisting the warm caches
    // off the lock-free cache read path.
    let snapshotter = snapshot_dir.map(|dir| {
        Snapshotter::start(
            Arc::clone(&engine),
            std::path::PathBuf::from(dir),
            std::time::Duration::from_millis(snapshot_interval_ms),
        )
    });
    let t1 = std::time::Instant::now();
    let report = runtime.serve(&requests);
    let wall = t1.elapsed();

    // Stop the snapshotter (it takes one final snapshot) before the drain
    // accounting, so saves stay single-writer.
    let snapshot_stats = snapshotter.map(Snapshotter::stop);
    let drain_report = (snapshot_dir.is_some() || drain_after_us.is_some())
        .then(|| runtime.drain(&report, snapshot_dir.map(std::path::Path::new)));

    match mode {
        ServeMode::Report => {
            let unique: std::collections::HashSet<usize> = lengths.iter().copied().collect();
            let s = report.latency_summary();
            println!(
                "served {n_requests} requests ({} unique lengths) with {workers} workers / {devices} devices at {:.0}% target load",
                unique.len(),
                utilization * 100.0
            );
            println!(
                "throughput: {:.0} req/s over a {:.2} ms stream (host wall clock {:.1?})\n",
                report.throughput_rps(),
                report.makespan_ns / 1e6,
                wall
            );
            println!(
                "latency      P50 {:>9.1} us   P95 {:>9.1} us   P99 {:>9.1} us   mean {:>9.1} us  (virtual)",
                s.total.p50_ns / 1e3,
                s.total.p95_ns / 1e3,
                s.total.p99_ns / 1e3,
                s.total.mean_ns / 1e3
            );
            println!(
                "decomposed   queue {:>7.1} us   compile {:>5.1} us ({}-clock)   device {:>6.1} us  (means)\n",
                s.queue.mean_ns / 1e3,
                s.compile.mean_ns / 1e3,
                s.compile.clock,
                s.device.mean_ns / 1e3
            );
            for w in &report.workers {
                println!(
                    "worker {}: {:>4} requests, {:>5.1}% utilized",
                    w.worker,
                    w.requests,
                    w.utilization * 100.0
                );
            }
            let c = report.cache;
            println!(
                "\nprogram cache: {} polymerizations for {} unique shapes; {} hits, {} coalesced waits ({:.1}% hit rate)",
                c.computations,
                c.entries,
                c.hits,
                c.coalesced_waits,
                c.hit_rate() * 100.0
            );
            if batch_window_us.is_some() {
                println!(
                    "batching: {:.2} mean wave size over executed requests",
                    report.mean_batch_size()
                );
            }
            if tenants > 1 {
                for t in report.tenant_stats() {
                    println!(
                        "tenant {}: {:>4} requests, {:>4} served, {:>3} shed, {:.0} req/s goodput",
                        t.tenant,
                        t.requests,
                        t.dispositions.served(),
                        t.dispositions.shed,
                        t.goodput_rps
                    );
                }
            }
        }
        ServeMode::Stats => {
            if has_flag(args, "--json") {
                println!("{}", telemetry.registry().render_json());
            } else {
                println!("{}", telemetry.registry().render_pretty());
            }
        }
    }

    if let Some(stats) = snapshot_stats {
        println!(
            "snapshot: {} live snapshot(s), {} error(s), last committed generation {}",
            stats.snapshots,
            stats.errors,
            stats
                .last_generation
                .map_or_else(|| "none".to_string(), |g| g.to_string())
        );
    }
    if let Some(drain) = &drain_report {
        println!("{drain}");
        if drain.dispositions.total() != n_requests {
            eprintln!(
                "drain: disposition invariant violated: {} dispositions for {n_requests} requests",
                drain.dispositions.total()
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = metrics_out {
        let text = telemetry.registry().render_prometheus();
        std::fs::write(path, &text)
            .unwrap_or_else(|e| usage(&format!("cannot write metrics to '{path}': {e}")));
        eprintln!("metrics: wrote {} bytes to {path}", text.len());
    }
    if let Some(path) = blackbox_out {
        let slo = report.evaluate_slo(SloPolicy::default());
        if slo.violated {
            let chains = telemetry.recorder().snapshot();
            let json = render_blackbox(
                &slo,
                &chains,
                telemetry.recorder(),
                telemetry.dropped_spans(),
            );
            if let Err(e) = serde_json::from_str::<serde_json::Value>(&json) {
                eprintln!("blackbox: rendered dump is not valid JSON: {e}");
                std::process::exit(1);
            }
            std::fs::write(path, &json)
                .unwrap_or_else(|e| usage(&format!("cannot write blackbox to '{path}': {e}")));
            eprintln!(
                "blackbox: SLO violated; wrote {} bytes ({} retained chains) to {path}",
                json.len(),
                chains.len()
            );
        } else {
            eprintln!("blackbox: SLO healthy; no dump written to {path}");
        }
    }
    if let Some(path) = trace_out {
        let dropped = telemetry.dropped_spans();
        let json = telemetry.render_chrome_trace();
        std::fs::write(path, &json)
            .unwrap_or_else(|e| usage(&format!("cannot write trace to '{path}': {e}")));
        eprintln!(
            "trace: wrote {} bytes to {path} ({} spans dropped under buffer pressure); open in https://ui.perfetto.dev",
            json.len(),
            dropped
        );
    }
}

/// Replays a GEMM stream under a deterministic fault plan and admission
/// control, prints the disposition table, and exits non-zero when the
/// exhaustive-disposition invariant is violated. CI runs this with fixed
/// seeds as the chaos smoke.
fn chaos(machine: MachineModel, args: &[String]) {
    let n_requests: usize = parsed_flag(args, "--requests").unwrap_or(48);
    let workers: usize = parsed_flag(args, "--workers").unwrap_or(4);
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(7);
    let fault_rate: f64 = parsed_flag(args, "--fault-rate").unwrap_or(0.05);
    let stall_ns: u64 = parsed_flag(args, "--stall-ns").unwrap_or(200_000);
    let queue_capacity: Option<usize> = parsed_flag(args, "--queue-capacity");
    let deadline_us: Option<f64> = parsed_flag(args, "--deadline-us");
    let compile_budget_us: u64 = parsed_flag(args, "--compile-budget-us").unwrap_or(20_000);
    if n_requests == 0 || workers == 0 || !(0.0..=1.0).contains(&fault_rate) {
        usage("chaos needs positive --requests/--workers and --fault-rate in [0, 1]");
    }

    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let mut offline = OfflineOptions::fast();
    offline.n_gen = 4;
    let engine = Arc::new(Engine::offline(machine.clone(), &offline));
    eprintln!("offline: done\n");

    // One injected-fault rate drives every fault dimension; the stall
    // dimension only participates when a stall duration is configured.
    let plan = FaultPlan {
        seed,
        device_fault_rate: fault_rate,
        search_stall_rate: if stall_ns > 0 { fault_rate * 4.0 } else { 0.0 }.min(1.0),
        search_stall_ns: stall_ns,
        cache_corrupt_rate: fault_rate * 2.0,
        compile_panic_rate: fault_rate * 2.0,
        panic_attempts: 2,
    };
    let options = ServingOptions {
        queue_capacity,
        compile_budget: Some(std::time::Duration::from_micros(compile_budget_us)),
        breaker: Some(BreakerPolicy::default()),
        fault_plan: Some(Arc::new(plan)),
        ..ServingOptions::default()
    };
    let shapes = [
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(1111, 999, 512),
        GemmShape::new(64, 64, 64),
        GemmShape::new(320, 192, 128),
        GemmShape::new(511, 257, 96),
        GemmShape::new(900, 300, 300),
        GemmShape::new(128, 1024, 64),
    ];
    let requests: Vec<Request> = poisson_arrivals(n_requests, 30_000.0, seed)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| {
            let r = Request::single(id, arrival_ns, Operator::gemm(shapes[id % shapes.len()]));
            match deadline_us {
                Some(us) => r.with_deadline(arrival_ns + us * 1e3),
                None => r,
            }
        })
        .collect();

    let cluster = Cluster::new(machine, workers, Interconnect::nvlink3());
    let runtime = ServingRuntime::new(engine, cluster, workers).with_options(options);
    // Injected compile panics are caught at the worker boundary; silence
    // the default panic hook's backtrace spam while the stream runs.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = runtime.serve(&requests);
    std::panic::set_hook(prev_hook);

    // The invariant under chaos: every request terminates with exactly
    // one disposition, shed reasons appear iff the request was shed, and
    // shed requests consume no virtual resources.
    let counts = report.dispositions();
    let mut violations = 0usize;
    if report.records.len() != n_requests || counts.total() != n_requests {
        eprintln!(
            "invariant violated: {} records / {} dispositions for {n_requests} requests",
            report.records.len(),
            counts.total()
        );
        violations += 1;
    }
    for r in &report.records {
        if r.shed_reason.is_some() != (r.disposition == Disposition::Shed) {
            eprintln!(
                "invariant violated: request {} shed reason mismatch: {r:?}",
                r.id
            );
            violations += 1;
        }
        if r.disposition == Disposition::Shed && r.executed() {
            eprintln!(
                "invariant violated: shed request {} booked a device: {r:?}",
                r.id
            );
            violations += 1;
        }
    }

    let retried: u32 = report.records.iter().map(|r| r.retries).sum();
    println!("chaos: {n_requests} requests, {workers} workers, fault seed {seed}");
    println!("  completed  {:>6}", counts.completed);
    println!("  degraded   {:>6}", counts.degraded);
    println!("  shed       {:>6}", counts.shed);
    println!("  failed     {:>6}", counts.failed);
    println!(
        "  retries       {retried:>3}   breaker opens {:>3}",
        report.breaker_opens
    );
    println!(
        "  goodput {:.0} req/s of {:.0} req/s offered",
        report.goodput_rps(),
        report.throughput_rps()
    );
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    println!("chaos: disposition invariant holds");
}

/// Replays a fixed-seed GEMM stream through the serving runtime (with
/// admission control and, optionally, injected faults and deadlines),
/// evaluates it against the SLO policy, and prints the health snapshot —
/// a table by default, the snapshot JSON with `--json`. Self-validating:
/// the rendered JSON is parsed back and its disposition counts compared
/// field by field against [`mikpoly::ServingReport::dispositions`]; a
/// malformed snapshot or any mismatch exits non-zero, so CI can use this
/// as the observability smoke. An SLO violation alone does not fail the
/// command (an unhealthy service still has healthy telemetry).
fn health(machine: MachineModel, args: &[String]) {
    let n_requests: usize = parsed_flag(args, "--requests").unwrap_or(48);
    let workers: usize = parsed_flag(args, "--workers").unwrap_or(2);
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(7);
    let fault_rate: f64 = parsed_flag(args, "--fault-rate").unwrap_or(0.0);
    let deadline_us: Option<f64> = parsed_flag(args, "--deadline-us");
    let compile_budget_us: u64 = parsed_flag(args, "--compile-budget-us").unwrap_or(20_000);
    let json = has_flag(args, "--json");
    if n_requests == 0 || workers == 0 || !(0.0..=1.0).contains(&fault_rate) {
        usage("health needs positive --requests/--workers and --fault-rate in [0, 1]");
    }

    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let mut offline = OfflineOptions::fast();
    offline.n_gen = 4;
    let telemetry = Telemetry::enabled();
    let engine = Arc::new(Engine::offline_with_telemetry(
        machine.clone(),
        &offline,
        Arc::clone(&telemetry),
    ));
    eprintln!("offline: done\n");

    let options = ServingOptions {
        queue_capacity: Some(8),
        compile_budget: Some(std::time::Duration::from_micros(compile_budget_us)),
        breaker: Some(BreakerPolicy::default()),
        fault_plan: (fault_rate > 0.0).then(|| {
            Arc::new(FaultPlan {
                seed,
                device_fault_rate: fault_rate,
                compile_panic_rate: fault_rate * 2.0,
                panic_attempts: 2,
                ..FaultPlan::none()
            })
        }),
        ..ServingOptions::default()
    };
    let shapes = [
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(1111, 999, 512),
        GemmShape::new(64, 64, 64),
        GemmShape::new(320, 192, 128),
        GemmShape::new(511, 257, 96),
        GemmShape::new(900, 300, 300),
        GemmShape::new(128, 1024, 64),
    ];
    let requests: Vec<Request> = poisson_arrivals(n_requests, 30_000.0, seed)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| {
            let r = Request::single(id, arrival_ns, Operator::gemm(shapes[id % shapes.len()]));
            match deadline_us {
                Some(us) => r.with_deadline(arrival_ns + us * 1e3),
                None => r,
            }
        })
        .collect();

    let cluster = Cluster::new(machine, workers, Interconnect::nvlink3());
    let runtime = ServingRuntime::new(engine, cluster, workers).with_options(options);
    // Injected compile panics are caught at the worker boundary; silence
    // the default panic hook's backtrace spam while the stream runs.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = runtime.serve(&requests);
    std::panic::set_hook(prev_hook);

    let policy = SloPolicy {
        compile_p99_budget_ns: Some(compile_budget_us as f64 * 1e3),
        ..SloPolicy::default()
    };
    let slo = report.evaluate_slo(policy);
    let rendered = slo.render_json();

    // Self-validation: the snapshot must parse, and its disposition
    // counts must equal the serving report's exactly.
    let value: serde_json::Value = match serde_json::from_str(&rendered) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("health: snapshot is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let counts = report.dispositions();
    let mut mismatches = 0usize;
    for (field, expected) in [
        ("completed", counts.completed),
        ("degraded", counts.degraded),
        ("shed", counts.shed),
        ("failed", counts.failed),
        ("total", counts.total()),
    ] {
        let got = value
            .get("dispositions")
            .and_then(|d| d.get(field))
            .and_then(|v| v.as_u64());
        if got != Some(expected as u64) {
            eprintln!(
                "health: snapshot dispositions.{field} = {got:?}, serving report says {expected}"
            );
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("health: {mismatches} disposition mismatch(es) between snapshot and report");
        std::process::exit(1);
    }

    if json {
        println!("{rendered}");
        return;
    }
    println!("health: {n_requests} requests, {workers} workers, seed {seed}");
    println!(
        "  dispositions  completed {} / degraded {} / shed {} / failed {}",
        counts.completed, counts.degraded, counts.shed, counts.failed
    );
    for (label, sli) in [
        ("overall", &slo.overall),
        ("short", &slo.short),
        ("long", &slo.long),
    ] {
        println!(
            "  {label:<8} goodput {:.3}  deadline-hit {:.3}  degraded {:.3}  ({} requests)",
            sli.goodput_ratio, sli.deadline_hit_rate, sli.degraded_fraction, sli.requests
        );
    }
    for rule in &slo.rules {
        println!(
            "  burn [{}] short {:.2} long {:.2} vs threshold {:.2} -> {}",
            rule.sli,
            rule.short_burn,
            rule.long_burn,
            rule.threshold,
            if rule.breached { "BREACHED" } else { "ok" }
        );
    }
    println!(
        "  compile p99 {:.1} us vs budget {:.1} us -> {}",
        slo.compile_p99_ns as f64 / 1e3,
        slo.compile_budget_ns.unwrap_or(0.0) / 1e3,
        if slo.compile_budget_breached {
            "BREACHED"
        } else {
            "ok"
        }
    );
    println!(
        "health: SLO {} (snapshot self-validated)",
        if slo.violated { "VIOLATED" } else { "holding" }
    );
}

/// Parses a Chrome trace-event file and prints per-phase event counts.
/// Exits non-zero when the file is not valid trace JSON, so CI can use it
/// as a structural check on `serve --trace-out` artifacts.
fn trace_stats(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read '{path}': {e}")));
    let value: serde_json::Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| usage(&format!("'{path}' is not valid JSON: {e:?}")));
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| usage(&format!("'{path}' has no traceEvents array")));

    let mut by_name: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let mut pids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| usage(&format!("'{path}': event without a 'ph' field")));
        let name = event.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        if let Some(pid) = event.get("pid").and_then(|v| v.as_u64()) {
            pids.insert(pid);
        }
        if ph == "M" {
            continue; // metadata (process/thread names)
        }
        *by_name
            .entry((name.to_string(), ph.to_string()))
            .or_default() += 1;
    }
    println!(
        "{path}: {} events across {} processes",
        events.len(),
        pids.len()
    );
    for ((name, ph), count) in &by_name {
        println!("  {ph}  {name:<28} {count:>6}");
    }
}

/// Zipfian sampler over ranks `0..n`: rank `r` is drawn with probability
/// proportional to `1/(r+1)^theta`, via binary search on the precomputed
/// CDF — the skewed hot-set-plus-churn-tail shape traffic of production
/// dynamic-shape serving.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }
}

/// Synthesizes `n` distinct single-region compiled programs from a real
/// micro-kernel library — structurally valid warm-restart payload without
/// paying `n` polymerization searches.
fn synthetic_programs(compiler: &MikPoly, n: usize) -> Vec<CompiledProgram> {
    let kernels: Vec<_> = compiler
        .library()
        .kernels
        .iter()
        .map(|t| t.kernel)
        .collect();
    assert!(!kernels.is_empty(), "library has no kernels");
    (0..n)
        .map(|i| {
            let shape = GemmShape::new(8 + i, 64 + (i % 64), 32 + (i % 32));
            let operator = Operator::gemm(shape);
            CompiledProgram {
                operator,
                view: operator.gemm_view(),
                pattern: PatternId(1),
                regions: vec![Region::new(
                    0,
                    shape.m,
                    0,
                    shape.n,
                    kernels[i % kernels.len()],
                )],
                split_k: 1,
                predicted_ns: 1_000.0 + i as f64,
                stats: Default::default(),
            }
        })
        .collect()
}

/// Stress-benches the program cache: a bounded `ShardedCache` under
/// skewed (Zipfian) read-heavy traffic from N threads, then a
/// warm-restart round trip through both bundle formats (binary and
/// legacy JSON). Prints throughput, hit rate, and restart timings, and
/// exits non-zero if any cache invariant is violated, the hit rate falls
/// below the floor, a round trip loses programs, or the binary restart
/// misses its budget — the CI cache smoke.
fn cache_bench(machine: MachineModel, args: &[String]) {
    let threads: usize = parsed_flag(args, "--threads").unwrap_or(4);
    let ops: usize = parsed_flag(args, "--ops").unwrap_or(200_000);
    let keys: usize = parsed_flag(args, "--keys").unwrap_or(4096);
    let capacity: usize = parsed_flag(args, "--capacity").unwrap_or_else(|| (keys / 4).max(1));
    let theta: f64 = parsed_flag(args, "--theta").unwrap_or(1.05);
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(42);
    let min_hit_rate: f64 = parsed_flag(args, "--min-hit-rate").unwrap_or(0.3);
    let restart_entries: usize = parsed_flag(args, "--restart-entries").unwrap_or(10_000);
    let restart_budget_ms: u64 = parsed_flag(args, "--restart-budget-ms").unwrap_or(1_000);
    // The legacy-JSON compatibility gate runs on a smaller bundle: the
    // vendored serde_json parser is superlinear in document size, which
    // is exactly why the binary format exists.
    let legacy_entries: usize =
        parsed_flag(args, "--legacy-entries").unwrap_or_else(|| restart_entries.min(500));
    if threads == 0 || ops == 0 || keys == 0 || capacity == 0 {
        usage("cache-bench needs positive --threads/--ops/--keys/--capacity");
    }
    let mut violations = 0usize;
    let mut violation = |msg: String| {
        eprintln!("invariant violated: {msg}");
        violations += 1;
    };

    // Phase 1: Zipfian stress on a bounded cache. Every thread hammers
    // get_or_compute over the same skewed key distribution; the hot set
    // must stay resident (segmented LRU) while the tail churns through
    // the capacity bound.
    let zipf = Zipf::new(keys, theta);
    let stress = |threads: usize| -> (f64, CacheStats, Result<(), String>, usize) {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::bounded(capacity));
        let per_thread = ops / threads;
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let zipf = &zipf;
                scope.spawn(move || {
                    let mut rng =
                        SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    for _ in 0..per_thread {
                        let k = zipf.sample(&mut rng) as u64;
                        let (v, _) = cache.get_or_compute(&k, || k.wrapping_mul(2));
                        assert_eq!(*v, k.wrapping_mul(2), "cache returned a wrong value");
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let total = per_thread * threads;
        (
            total as f64 / secs,
            cache.stats(),
            cache.check_invariants(),
            total,
        )
    };
    let (base_tput, _, base_inv, _) = stress(1);
    if let Err(e) = base_inv {
        violation(format!("single-thread stress: {e}"));
    }
    let (tput, stats, inv, total_ops) = stress(threads);
    if let Err(e) = inv {
        violation(format!("{threads}-thread stress: {e}"));
    }
    let lookups = stats.hits + stats.misses + stats.coalesced_waits;
    if lookups != total_ops as u64 {
        violation(format!(
            "hits {} + misses {} + coalesced {} != {total_ops} operations",
            stats.hits, stats.misses, stats.coalesced_waits
        ));
    }
    if stats.computations != stats.misses {
        violation(format!(
            "computations {} != misses {} with an infallible compute",
            stats.computations, stats.misses
        ));
    }
    if stats.evictions > stats.computations + stats.direct_inserts {
        violation(format!(
            "evictions {} exceed fills {} — double-counted eviction",
            stats.evictions,
            stats.computations + stats.direct_inserts
        ));
    }
    if stats.entries as usize > capacity {
        violation(format!(
            "{} entries exceed the capacity bound {capacity}",
            stats.entries
        ));
    }
    if stats.hit_rate() < min_hit_rate {
        violation(format!(
            "hit rate {:.3} under the {min_hit_rate} floor",
            stats.hit_rate()
        ));
    }
    println!(
        "stress: {total_ops} ops, {keys} keys (theta {theta}), capacity {capacity}, {} shards",
        mikpoly::cache::DEFAULT_SHARDS
    );
    println!(
        "  1 thread:  {:>10.0} ops/s\n  {threads} threads: {:>10.0} ops/s  ({:.2}x, host has {} cpu(s))",
        base_tput,
        tput,
        tput / base_tput,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "  hit rate {:.3}  hits {}  misses {}  coalesced {}  evictions {}",
        stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.coalesced_waits,
        stats.evictions
    );

    // Phase 2: warm-restart round trip. Synthetic programs built from a
    // real library stand in for a production-sized compiled cache; the
    // binary load must beat the budget, and a save→load round trip
    // through *both* formats must preserve every program.
    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let mut offline = OfflineOptions::fast();
    offline.n_gen = 4;
    let a = MikPoly::offline(machine.clone(), &offline);
    let programs = synthetic_programs(&a, restart_entries);
    let tag = std::process::id();
    let bin_path = std::env::temp_dir().join(format!("mikpoly-cache-bench-{tag}.mpac"));
    let json_path = std::env::temp_dir().join(format!("mikpoly-cache-bench-{tag}.json"));
    if let Err(e) = std::fs::write(&bin_path, encode_bundle(programs.iter())) {
        eprintln!("error: writing {}: {e}", bin_path.display());
        std::process::exit(1);
    }

    let t0 = std::time::Instant::now();
    match a.load_program_cache(&bin_path) {
        Ok(n) if n == restart_entries => {}
        Ok(n) => violation(format!(
            "binary load restored {n}/{restart_entries} programs"
        )),
        Err(e) => violation(format!("binary load failed: {e}")),
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    if warm_ms > restart_budget_ms as f64 {
        violation(format!(
            "restart-to-warm {warm_ms:.1}ms over the {restart_budget_ms}ms budget"
        ));
    }
    println!("restart: {restart_entries} programs to warm in {warm_ms:.1}ms (binary bundle)");

    // Round trip on a smaller bundle: binary → legacy JSON save → fresh
    // load → binary re-save → fresh load. Counts must hold at every hop
    // (the legacy-format compatibility gate).
    let b = MikPoly::with_library(machine.clone(), a.library().clone());
    if let Err(e) = std::fs::write(
        &bin_path,
        encode_bundle(programs.iter().take(legacy_entries)),
    ) {
        eprintln!("error: writing {}: {e}", bin_path.display());
        std::process::exit(1);
    }
    match b.load_program_cache(&bin_path) {
        Ok(n) if n == legacy_entries => {}
        Ok(n) => violation(format!(
            "subset load restored {n}/{legacy_entries} programs"
        )),
        Err(e) => violation(format!("subset load failed: {e}")),
    }
    if let Err(e) = b.save_program_cache_json(&json_path) {
        violation(format!("legacy JSON save failed: {e}"));
    }
    let c = MikPoly::with_library(machine.clone(), a.library().clone());
    let t0 = std::time::Instant::now();
    match c.load_program_cache(&json_path) {
        Ok(n) if n == legacy_entries => {}
        Ok(n) => violation(format!(
            "legacy load restored {n}/{legacy_entries} programs"
        )),
        Err(e) => violation(format!("legacy load failed: {e}")),
    }
    let legacy_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("restart: {legacy_entries} programs to warm in {legacy_ms:.1}ms (legacy JSON)");
    if let Err(e) = c.save_program_cache(&bin_path) {
        violation(format!("binary re-save failed: {e}"));
    }
    let d = MikPoly::with_library(machine, a.library().clone());
    match d.load_program_cache(&bin_path) {
        Ok(n) if n == legacy_entries => {}
        Ok(n) => violation(format!(
            "binary round trip kept {n}/{legacy_entries} programs"
        )),
        Err(e) => violation(format!("binary round-trip load failed: {e}")),
    }
    let _ = std::fs::remove_file(&bin_path);
    let _ = std::fs::remove_file(&json_path);

    // Phase 3: crash matrix over the checksummed format. Truncate a
    // bundle at every byte offset — salvage must recover exactly the
    // records whose bytes end before the cut — then flip seeded bits —
    // the strict decoder must reject every one (CRC32 catches any
    // single-bit flip). The conformance crate's `crash` subcommand runs
    // the larger matrix; this phase keeps the persistence benchmark
    // honest about its own format.
    let crash_programs: usize = parsed_flag(args, "--crash-programs").unwrap_or(8);
    let crash_flips: usize = parsed_flag(args, "--crash-flips").unwrap_or(128);
    let bundle = encode_bundle(programs.iter().take(crash_programs.max(1)));
    match record_end_offsets(&bundle) {
        Ok(ends) => {
            for cut in 0..=bundle.len() {
                let salvage = salvage_bundle(&bundle[..cut]);
                let expected = ends.iter().filter(|&&end| end <= cut).count();
                if salvage.programs.len() != expected {
                    violation(format!(
                        "truncation at {cut}: salvaged {} records, expected the exact \
                         prefix of {expected}",
                        salvage.programs.len()
                    ));
                    break;
                }
            }
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xc4a5);
            for _ in 0..crash_flips {
                let pos = rng.gen_range(0..bundle.len());
                let bit: u8 = rng.gen_range(0..8);
                let mut damaged = bundle.clone();
                damaged[pos] ^= 1 << bit;
                if decode_bundle(&damaged).is_ok() {
                    violation(format!(
                        "bit flip at byte {pos} bit {bit} went undetected by the strict decoder"
                    ));
                }
                let _ = salvage_bundle(&damaged);
            }
            println!(
                "crash: {} truncation offsets and {crash_flips} bit flips held the salvage contract",
                bundle.len() + 1
            );
        }
        Err(e) => violation(format!("record_end_offsets rejected a fresh bundle: {e}")),
    }

    if violations > 0 {
        eprintln!("\ncache-bench: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    println!("\ncache-bench: all invariants held");
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag_value(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| usage(&format!("bad value '{v}' for {name}")))
    })
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!("usage:");
    eprintln!("  mikpoly gemm M N K [--machine a100|h100|910a|a100-cc] [--oracle] [--split-k]");
    eprintln!("  mikpoly conv N C H W OC KH KW STRIDE PAD [--machine ...] [--winograd]");
    eprintln!("  mikpoly library [--machine ...]");
    eprintln!("  mikpoly serve [--workers N] [--devices N] [--requests N] [--utilization F] [--seed N] [--deadline-us N] [--machine ...]");
    eprintln!("                [--trace-out trace.json] [--metrics-out metrics.txt] [--blackbox-out blackbox.json]");
    eprintln!(
        "                [--snapshot-dir DIR] [--snapshot-interval-ms N] [--drain-after-us N]"
    );
    eprintln!("  mikpoly stats [serve flags] [--json]  # telemetered serve + metrics table/JSON");
    eprintln!("  mikpoly health [--requests N] [--workers N] [--seed N] [--fault-rate F] [--deadline-us N]");
    eprintln!("                [--compile-budget-us N] [--json] [--machine ...]");
    eprintln!("  mikpoly trace-stats trace.json     # validate/summarize a trace file");
    eprintln!(
        "  mikpoly chaos [--requests N] [--workers N] [--seed N] [--fault-rate F] [--stall-ns N]"
    );
    eprintln!("                [--queue-capacity N] [--deadline-us N] [--compile-budget-us N] [--machine ...]");
    eprintln!("  mikpoly cache-bench [--threads N] [--ops N] [--keys N] [--capacity N] [--theta F] [--seed N]");
    eprintln!("                [--min-hit-rate F] [--restart-entries N] [--restart-budget-ms N] [--machine ...]");
    eprintln!("                [--crash-programs N] [--crash-flips N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
