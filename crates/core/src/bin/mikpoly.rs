//! `mikpoly` — command-line front end for the compiler.
//!
//! ```text
//! mikpoly gemm M N K [--machine a100|h100|910a|a100-cc] [--oracle] [--split-k]
//! mikpoly conv N C H W OC KH KW STRIDE PAD [--machine ...] [--winograd]
//! mikpoly library [--machine ...]            # show the tuned kernel library
//! ```
//!
//! Runs the offline stage (cached in-process), polymerizes the requested
//! operator, prints the chosen program as restructured online loops, and
//! times it on the simulated machine.

use accel_sim::MachineModel;
use mikpoly::{MikPoly, OfflineOptions, OnlineOptions, TemplateKind};
use tensor_ir::{Conv2dShape, GemmShape, Operator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("");
    }
    let machine = match flag_value(&args, "--machine").unwrap_or("a100") {
        "a100" => MachineModel::a100(),
        "h100" => MachineModel::h100(),
        "910a" | "ascend" | "npu" => MachineModel::ascend910a(),
        "a100-cc" | "cuda-cores" => MachineModel::a100_cuda_cores(),
        other => usage(&format!("unknown machine '{other}'")),
    };

    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let dim = |i: usize| -> usize {
        positional
            .get(i)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage("expected a positive integer dimension"))
    };

    match positional.first().map(|s| s.as_str()) {
        Some("gemm") if positional.len() == 4 => {
            let op = Operator::gemm(GemmShape::new(dim(1), dim(2), dim(3)));
            run(machine, TemplateKind::Gemm, op, &args);
        }
        Some("conv") if positional.len() == 10 => {
            let shape = Conv2dShape::new(
                dim(1),
                dim(2),
                dim(3),
                dim(4),
                dim(5),
                dim(6),
                dim(7),
                dim(8),
                dim(9),
            );
            let (op, template) = if has_flag(&args, "--winograd") {
                (Operator::conv2d_winograd(shape), TemplateKind::Gemm)
            } else {
                (Operator::conv2d(shape), TemplateKind::Conv)
            };
            run(machine, template, op, &args);
        }
        Some("library") => {
            let compiler = build(machine, TemplateKind::Gemm, &args);
            println!(
                "micro-kernel library for {} ({} kernels):",
                compiler.machine(),
                compiler.library().kernels.len()
            );
            for t in &compiler.library().kernels {
                println!(
                    "  {:<28} score {:.3}  steady {:.2} TFLOPS  g(64) = {:.2} us",
                    t.kernel.to_string(),
                    t.score,
                    t.steady_tflops,
                    t.perf.predict(64) / 1e3
                );
            }
        }
        _ => usage("unrecognized command"),
    }
}

fn build(machine: MachineModel, template: TemplateKind, args: &[String]) -> MikPoly {
    eprintln!("offline: tuning micro-kernels for {} ...", machine.name);
    let t0 = std::time::Instant::now();
    let compiler = MikPoly::offline(machine, &OfflineOptions::paper().with_template(template))
        .with_options(OnlineOptions {
            split_k: has_flag(args, "--split-k"),
            ..OnlineOptions::default()
        });
    eprintln!(
        "offline: {} kernels in {:.1?}\n",
        compiler.library().kernels.len(),
        t0.elapsed()
    );
    compiler
}

fn run(machine: MachineModel, template: TemplateKind, op: Operator, args: &[String]) {
    let compiler = build(machine, template, args);
    if has_flag(args, "--oracle") {
        let oracle = compiler.compile_oracle(&op);
        let report = compiler.simulate(&oracle.program);
        println!(
            "oracle ({} candidates simulated in {:.1?}):\n{}",
            oracle.candidates, oracle.search, oracle.program
        );
        println!("device time: {:.1} us ({:.1} TFLOPS)", report.time_us(), report.tflops());
        return;
    }
    let result = compiler.run(&op);
    println!("{}", result.program);
    println!(
        "polymerized in {:.1} us ({} strategies evaluated, {} pruned)",
        result.compile_ns as f64 / 1e3,
        result.program.stats.strategies_evaluated,
        result.program.stats.strategies_pruned
    );
    println!(
        "device time: {:.1} us ({:.1} TFLOPS, sm_efficiency {:.1}%, grid {})",
        result.report.time_us(),
        result.report.tflops(),
        result.report.sm_efficiency * 100.0,
        result.report.grid_size
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!("usage:");
    eprintln!("  mikpoly gemm M N K [--machine a100|h100|910a|a100-cc] [--oracle] [--split-k]");
    eprintln!("  mikpoly conv N C H W OC KH KW STRIDE PAD [--machine ...] [--winograd]");
    eprintln!("  mikpoly library [--machine ...]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
