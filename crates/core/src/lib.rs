//! # mikpoly — dynamic-shape tensor compilation via micro-kernel polymerization
//!
//! A from-scratch Rust reproduction of **MikPoly** ("Optimizing
//! Dynamic-Shape Neural Networks on Accelerators via On-the-Fly
//! Micro-Kernel Polymerization", ASPLOS 2024). MikPoly optimizes tensor
//! operators whose shapes are only known at model-execution time, in two
//! stages:
//!
//! * **Offline** ([`MicroKernelLibrary::generate`]): from the operator's
//!   micro-kernel template, auto-tune a set of fixed-size micro-kernels for
//!   `M_local` and fit a piecewise-linear performance model
//!   ([`PerfModel`], `g_predict`) per kernel from single-PE measurements.
//! * **Online** ([`MikPoly::compile`]): once the runtime shape is known,
//!   restructure the online loops following the polymerization
//!   [`pattern`]s of Fig. 5, instantiate each region's
//!   parameterized micro-kernel from the library (the polymerization
//!   *strategy*), and select the cheapest program under the Eq. 2 cost
//!   model `Cost(S, H) = Σ f_wave · f_pipe` with branch-and-bound pruning.
//!
//! The compiled [`CompiledProgram`] can be timed on the simulated
//! accelerator ([`MikPoly::simulate`]) and functionally executed on real
//! data ([`execute_gemm`], [`execute_conv2d`]) for verification.
//!
//! # Example
//!
//! ```
//! use accel_sim::MachineModel;
//! use mikpoly::{MikPoly, OfflineOptions};
//! use tensor_ir::{GemmShape, Operator};
//!
//! // Offline stage: tune a (reduced, for the example) kernel library.
//! let mut options = OfflineOptions::fast();
//! options.n_gen = 4;
//! let compiler = MikPoly::offline(MachineModel::a100(), &options);
//!
//! // Online stage: the shape arrives at runtime.
//! let op = Operator::gemm(GemmShape::new(4096, 1024, 4096));
//! let run = compiler.run(&op);
//! println!(
//!     "{} -> {} regions, {:.1} us",
//!     op,
//!     run.program.regions.len(),
//!     run.report.time_us()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
pub mod cache;
mod compiler;
mod cost;
mod engine;
mod error;
mod exec;
mod kernel;
mod offline;
pub mod pattern;
mod perf_model;
pub mod persist;
mod plan;
pub mod recovery;
mod resilience;
mod search;
pub mod serving;

pub use alloc::{lpt_makespan, makespan, max_min_assign};
pub use cache::{CacheOutcome, CacheStats, ShardedCache};
pub use compiler::{
    shape_key, CompileBudget, CompileGrade, CompileReply, MikPoly, OnlineOptions, OperatorRun,
    OracleResult,
};
pub use cost::{f_pipe, f_wave, region_cost, CostModelKind};
pub use engine::{ConvAlgorithm, Engine, EngineRun, GraphPlan, GraphRun, OpPlan};
pub use error::{panic_reason, MikPolyError};
pub use exec::{execute_conv2d, execute_gemm};
pub use kernel::{MicroKernel, MicroKernelId};
pub use offline::{
    MicroKernelLibrary, OfflineOptions, TemplateKind, TileArea, TileAspect, TileIndex, TileStratum,
    TunedKernel,
};
pub use pattern::{all_patterns, default_patterns, gpu_patterns, Pattern, PatternId};
pub use perf_model::{sample_schedule, PerfModel, Segment};
pub use persist::{
    crc32, decode_bundle, encode_bundle, encode_bundle_v2, is_binary_bundle, is_legacy_json_bundle,
    record_end_offsets, salvage_bundle, write_bytes_atomic, SalvagedBundle,
};
pub use plan::{CompiledProgram, CoverageError, Region, SearchStats};
pub use recovery::{quarantine_file, BundleRestore, Manifest, RestoreOutcome, RestoreReport};
pub use resilience::{BreakerDecision, BreakerPolicy, BreakerState, CircuitBreaker, RetryPolicy};
pub use search::{
    enumerate_strategies, enumerate_strategies_capped, improve_with_split_k, polymerize,
    polymerize_degraded, polymerize_traced, record_search_stats, try_polymerize,
    try_polymerize_traced, SearchPolicy, SearchRun,
};
pub use serving::{
    percentile, poisson_arrivals, BatchingOptions, Disposition, DispositionCounts, DrainReport,
    LatencySummary, Lifecycle, Request, RequestRecord, ServingOptions, ServingReport,
    ServingRuntime, ShedReason, SnapshotStats, Snapshotter, TenantId, TenantPolicy, TenantQuota,
    TenantStats, WorkerStats,
};

/// The observability layer (re-exported so downstream crates need no
/// direct `mikpoly-telemetry` dependency): [`telemetry::Telemetry`],
/// spans, histograms, and the Chrome-trace / Prometheus exporters.
pub use mikpoly_telemetry as telemetry;
