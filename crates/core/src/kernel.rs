//! Fixed-size micro-kernels.
//!
//! A micro-kernel is an instantiation of the micro-kernel template `K̃` with
//! a specific tile size `(uM, uN, uK)` and a schedule (warp count), compiled
//! offline and optimized to exploit `M_local` (Section 3.3). Its starting
//! addresses and loop trip counts remain runtime parameters, which is what
//! lets the online stage polymerize the same binary into arbitrary shapes.

use serde::{Deserialize, Serialize};

use accel_sim::{MachineModel, TaskShape, TaskSpec};
use tensor_ir::GemmView;

/// Identifier of a micro-kernel within a [`crate::MicroKernelLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MicroKernelId(pub usize);

impl std::fmt::Display for MicroKernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mk#{}", self.0)
    }
}

/// A fixed-size micro-kernel: tile size plus the schedule the offline
/// auto-tuner selected for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroKernel {
    /// Library identifier.
    pub id: MicroKernelId,
    /// Tile rows `uM`.
    pub um: usize,
    /// Tile columns `uN`.
    pub un: usize,
    /// Tile reduction depth `uK`.
    pub uk: usize,
    /// Warps the tuned schedule occupies on a PE.
    pub warps: usize,
}

impl MicroKernel {
    /// Creates a micro-kernel description.
    ///
    /// # Panics
    ///
    /// Panics if any tile extent or the warp count is zero.
    pub fn new(id: MicroKernelId, um: usize, un: usize, uk: usize, warps: usize) -> Self {
        assert!(um > 0 && un > 0 && uk > 0, "tile extents must be positive");
        assert!(warps > 0, "a micro-kernel occupies at least one warp");
        Self {
            id,
            um,
            un,
            uk,
            warps,
        }
    }

    /// The simulator task shape of one instance of this kernel for a given
    /// operator view (element widths and load amplification).
    pub fn task_shape(&self, view: &GemmView) -> TaskShape {
        let in_bytes = view.dtype.bytes();
        let acc_bytes = view.dtype.accumulator().bytes();
        TaskShape::gemm_tile(self.um, self.un, self.uk, in_bytes, in_bytes, acc_bytes)
            .with_load_scale(view.load_scale)
    }

    /// A pipelined task running `instances` instances of this kernel.
    pub fn task_spec(&self, view: &GemmView, instances: usize) -> TaskSpec {
        TaskSpec::new(self.task_shape(view), self.warps, instances)
    }

    /// Whether the kernel's `M_local` footprint fits the machine for the
    /// given element widths.
    pub fn fits(&self, machine: &MachineModel, view: &GemmView) -> bool {
        self.task_shape(view).fits(machine) && self.warps <= machine.warp_cap_per_pe
    }

    /// Floating-point work of one instance.
    pub fn flops_per_instance(&self) -> f64 {
        2.0 * self.um as f64 * self.un as f64 * self.uk as f64
    }

    /// Number of tasks needed to cover an `m x n` output region (with local
    /// padding up to tile multiples).
    pub fn tasks_for(&self, m: usize, n: usize) -> usize {
        m.div_ceil(self.um) * n.div_ceil(self.un)
    }

    /// Number of instances per pipelined task for reduction depth `k`
    /// (with local padding of the final slice).
    pub fn instances_for(&self, k: usize) -> usize {
        k.div_ceil(self.uk)
    }
}

impl std::fmt::Display for MicroKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({}, {}, {}) x{}w",
            self.id, self.um, self.un, self.uk, self.warps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::{DType, GemmShape, Operator};

    fn f16_view() -> GemmView {
        Operator::gemm(GemmShape::new(128, 128, 128)).gemm_view()
    }

    #[test]
    fn task_shape_uses_view_dtype() {
        let k = MicroKernel::new(MicroKernelId(0), 64, 64, 32, 4);
        let shape = k.task_shape(&f16_view());
        assert_eq!(shape.in_elem_bytes, DType::F16.bytes());
        assert_eq!(shape.acc_elem_bytes, 4);
        assert_eq!(shape.load_scale, 1.0);
    }

    #[test]
    fn tasks_round_up_with_local_padding() {
        let k = MicroKernel::new(MicroKernelId(1), 64, 64, 32, 4);
        assert_eq!(k.tasks_for(64, 64), 1);
        assert_eq!(k.tasks_for(65, 64), 2);
        assert_eq!(k.tasks_for(130, 130), 3 * 3);
        assert_eq!(k.instances_for(32), 1);
        assert_eq!(k.instances_for(33), 2);
    }

    #[test]
    fn fits_checks_warp_cap() {
        let m = MachineModel::a100();
        let view = f16_view();
        let small = MicroKernel::new(MicroKernelId(2), 64, 64, 32, 4);
        let too_many_warps = MicroKernel::new(MicroKernelId(3), 64, 64, 32, 64);
        assert!(small.fits(&m, &view));
        assert!(!too_many_warps.fits(&m, &view));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let _ = MicroKernel::new(MicroKernelId(0), 0, 64, 32, 4);
    }

    #[test]
    fn display_shows_tile_and_warps() {
        let k = MicroKernel::new(MicroKernelId(7), 256, 128, 32, 8);
        assert_eq!(k.to_string(), "mk#7(256, 128, 32) x8w");
    }
}
