//! Stage 2: shape-aware shortlisting — per-shape kernel ranking by
//! predicted *region efficiency*, plus the stratified-diversity shortlist
//! that replaces the old global top-`DEEP_PATTERN_KERNELS` cut.
//!
//! Eq. 2's wave term charges every task a whole PE, but dynamically
//! scheduled machines co-schedule several small-warp tasks per PE (bounded
//! by warp slots and local memory) and throttle under bandwidth
//! congestion. On large shapes that ranking error — not pruning, not
//! library coverage — was the measured source of the 1.2–1.45 hard-shape
//! oracle gap: the simulator's best kernel loses under Eq. 2 because its
//! co-residency is invisible to `f_wave`. The occupancy-aware estimator
//! here folds both effects into a closed form that stays O(1) per region,
//! so it can rank kernels per shape *and* re-rank complete strategies (the
//! selection-refinement step in [`super::polymerize`]) without touching
//! the simulator on the online path.

use accel_sim::MachineModel;
use tensor_ir::GemmView;

use crate::offline::{TileIndex, TileStratum, TunedKernel};

/// Per-kernel occupancy constants, precomputed once per shape.
#[derive(Debug, Clone, Copy)]
struct KernelOccupancy {
    /// Co-resident task slots per PE: warp-slot and local-memory bound.
    slots: usize,
    /// Bytes a resident task moves per ns of pipelined execution.
    bw_per_task: f64,
    /// `g_predict` for the shape's reduction extent.
    pipe: f64,
}

/// The occupancy-aware region-efficiency estimator: predicts the
/// effective latency of a region, accounting for task co-residency
/// (multiple small-warp tasks share a PE's warp slots and local memory)
/// and bandwidth congestion among resident tasks.
#[derive(Debug)]
pub(crate) struct OccupancyModel {
    num_pes: usize,
    pe_bw: f64,
    /// Parallel to the search's kernel order.
    profiles: Vec<KernelOccupancy>,
}

impl OccupancyModel {
    pub(crate) fn new(
        machine: &MachineModel,
        kernels: &[&TunedKernel],
        pipe: &[f64],
        view: &GemmView,
    ) -> Self {
        let profiles = kernels
            .iter()
            .zip(pipe)
            .map(|(t, &p)| {
                let spec = t
                    .kernel
                    .task_spec(view, t.kernel.instances_for(view.shape.k));
                let slots_w = machine.warp_cap_per_pe / t.kernel.warps.max(1);
                let slots_m = machine.local_mem_bytes / spec.shape.local_mem_bytes().max(1);
                KernelOccupancy {
                    slots: slots_w.min(slots_m).max(1),
                    bw_per_task: spec.total_bytes() / p.max(1e-9),
                    pipe: p,
                }
            })
            .collect();
        Self {
            num_pes: machine.num_pes,
            pe_bw: machine.pe_bandwidth_bytes_per_ns(),
            profiles,
        }
    }

    /// Effective latency of a `tasks`-task region under kernel
    /// `kernel_idx`: waves over the *co-residency* capacity (not the PE
    /// count), scaled by the bandwidth-congestion factor of the resident
    /// set. O(1) — nothing here depends on region geometry beyond the
    /// task count.
    pub(crate) fn region_ns(&self, kernel_idx: usize, tasks: usize) -> f64 {
        let p = &self.profiles[kernel_idx];
        let cap = self.num_pes * p.slots;
        let resident = p.slots.min(tasks.div_ceil(self.num_pes)).max(1);
        let congestion = (resident as f64 * p.bw_per_task / self.pe_bw).max(1.0);
        tasks.div_ceil(cap) as f64 * p.pipe * congestion
    }
}

/// Ranks the usable kernels for one shape, best predicted region
/// efficiency first, and (when a `shortlist` cut will apply) promotes the
/// best kernel of each tile-geometry stratum into the shortlist prefix so
/// a truncated deep-pattern search keeps geometric diversity instead of
/// drowning in near-duplicates of the front-runner. Returns a permutation
/// of kernel indices.
///
/// Dynamic machines rank by the occupancy-aware estimator; static
/// (compiler-placed) machines rank by the makespan estimate
/// `max(tasks·g/|P|, g)` of a single-region program — both are this
/// shape's Pattern-I cost under the respective machine's execution model,
/// which places a near-optimal incumbent on the search's first descent.
pub(crate) fn shape_order(
    machine: &MachineModel,
    kernels: &[&TunedKernel],
    pipe: &[f64],
    view: &GemmView,
    static_alloc: bool,
    index: &TileIndex,
    shortlist: usize,
) -> Vec<usize> {
    let (m, n) = (view.shape.m, view.shape.n);
    let score: Vec<f64> = if static_alloc {
        kernels
            .iter()
            .zip(pipe)
            .map(|(t, &p)| {
                let tasks = t.kernel.tasks_for(m, n);
                (tasks as f64 * p / machine.num_pes as f64).max(p)
            })
            .collect()
    } else {
        let occ = OccupancyModel::new(machine, kernels, pipe, view);
        kernels
            .iter()
            .enumerate()
            .map(|(i, t)| occ.region_ns(i, t.kernel.tasks_for(m, n)))
            .collect()
    };
    let mut order: Vec<usize> = (0..kernels.len()).collect();
    order.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
    if shortlist >= order.len() {
        return order;
    }
    // Stratified-diversity promotion: the first occurrence of each
    // geometry stratum (in efficiency order) moves to the front, so any
    // shortlist prefix of at least `strata` kernels covers every tile
    // regime the library retained.
    let mut anchors: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = Vec::new();
    let mut seen: Vec<TileStratum> = Vec::new();
    for &i in &order {
        let stratum = index
            .stratum_of(kernels[i].kernel.id)
            .unwrap_or_else(|| TileStratum::of(&kernels[i].kernel));
        if seen.contains(&stratum) {
            rest.push(i);
        } else {
            seen.push(stratum);
            anchors.push(i);
        }
    }
    anchors.extend(rest);
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{MicroKernelLibrary, OfflineOptions};
    use tensor_ir::GemmShape;

    fn setup() -> (MachineModel, MicroKernelLibrary) {
        let m = MachineModel::a100();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        (m.clone(), MicroKernelLibrary::generate(&m, &o))
    }

    fn view(m: usize, n: usize, k: usize) -> GemmView {
        tensor_ir::Operator::gemm(GemmShape::new(m, n, k)).gemm_view()
    }

    #[test]
    fn region_efficiency_never_beats_the_pipelined_task_itself() {
        let (machine, lib) = setup();
        let v = view(512, 512, 256);
        let kernels: Vec<_> = lib.usable_kernels(&machine, &v);
        let pipe = super::super::candidates::pipe_cache(&kernels, v.shape.k);
        let occ = OccupancyModel::new(&machine, &kernels, &pipe, &v);
        for (i, t) in kernels.iter().enumerate() {
            let tasks = t.kernel.tasks_for(512, 512);
            assert!(occ.region_ns(i, tasks) >= pipe[i] - 1e-9);
        }
    }

    #[test]
    fn co_residency_discounts_small_warp_kernels_under_plain_waves() {
        // A kernel whose warp count is below the PE cap gets charged fewer
        // effective waves than Eq. 2's tasks/|P| whenever its tasks
        // co-reside — the exact effect the hard-shape gap came from.
        let (machine, lib) = setup();
        let v = view(512, 512, 256);
        let kernels: Vec<_> = lib.usable_kernels(&machine, &v);
        let pipe = super::super::candidates::pipe_cache(&kernels, v.shape.k);
        let occ = OccupancyModel::new(&machine, &kernels, &pipe, &v);
        let mut discounted = 0;
        for (i, t) in kernels.iter().enumerate() {
            let tasks = t.kernel.tasks_for(512, 512);
            let eq2 = tasks.div_ceil(machine.num_pes) as f64 * pipe[i];
            if t.kernel.warps < machine.warp_cap_per_pe && tasks > machine.num_pes {
                assert!(occ.region_ns(i, tasks) <= eq2 + 1e-9);
                if occ.region_ns(i, tasks) < eq2 * 0.75 {
                    discounted += 1;
                }
            }
        }
        assert!(discounted > 0, "no kernel benefits from co-residency");
    }

    #[test]
    fn shape_order_is_a_permutation_and_diversity_prefix_covers_strata() {
        let (machine, lib) = setup();
        let v = view(777, 333, 111);
        let kernels: Vec<_> = lib.usable_kernels(&machine, &v);
        let pipe = super::super::candidates::pipe_cache(&kernels, v.shape.k);
        let index = lib.stratified_index().into_owned();
        let order = shape_order(&machine, &kernels, &pipe, &v, false, &index, 2);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..kernels.len()).collect::<Vec<_>>());
        // With a cut in play, the distinct strata of the usable set appear
        // before any repeat.
        let strata: Vec<TileStratum> = order
            .iter()
            .map(|&i| TileStratum::of(&kernels[i].kernel))
            .collect();
        let distinct: std::collections::HashSet<_> = strata.iter().collect();
        let prefix: std::collections::HashSet<_> = strata[..distinct.len()].iter().collect();
        assert_eq!(prefix.len(), distinct.len(), "prefix must cover all strata");
    }
}
