//! Stage 1: candidate generation — the single source of truth for the
//! polymerization strategy space.
//!
//! Both the pruned branch-and-bound search ([`super::polymerize`]) and the
//! exhaustive conformance oracle ([`super::enumerate_strategies`]) walk the
//! strategy space through this generator, so the searched space and the
//! audited space are identical *by construction*: the oracle cannot
//! "discover" a strategy the search was never offered, and a geometry bug
//! affects both sides equally (the superset test in `super::tests` pins
//! this property).
//!
//! Geometry of a strategy: bands stack top-down; a band led by kernel `a`
//! spans the largest multiple of `a.uM` that fits the remaining rows (the
//! final band absorbs the remainder with local padding); within a band,
//! column segments behave the same way along `N`.

use accel_sim::MachineModel;
use tensor_ir::GemmView;

use crate::offline::{MicroKernelLibrary, TunedKernel};
use crate::pattern::{Pattern, PatternId};
use crate::plan::Region;

/// A visitor's verdict on a proposed region extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Recurse into the subtree below this region; a matching
    /// [`StrategyVisitor::retract`] follows once the subtree is exhausted.
    Descend,
    /// Skip the subtree (a branch-and-bound cut). Pruned subtrees are not
    /// charged against the generator's budget.
    Prune,
}

/// The callbacks through which a search stage consumes the candidate
/// space. The generator owns the *geometry* (which region lists are
/// feasible); visitors own the *economics* (costs, bounds, incumbents).
pub(crate) trait StrategyVisitor {
    /// A region is proposed as the next extension of the current partial
    /// strategy. `rows_remaining` counts output rows still uncovered after
    /// this region's band.
    fn admit(&mut self, kernel_idx: usize, region: &Region, rows_remaining: usize) -> Admit;

    /// Undoes the most recent admitted region (stack discipline).
    fn retract(&mut self);

    /// A complete strategy: `regions` exactly covers the output.
    fn complete(&mut self, pattern: PatternId, regions: &[Region]);

    /// A degenerate branch was skipped (the pattern has more bands than
    /// the remaining rows can populate; a shallower pattern covers it).
    fn degenerate(&mut self) {}
}

/// Walks every feasible polymerization strategy for one shape, feeding a
/// [`StrategyVisitor`]. The budget counts admitted descents (the expensive
/// part: recursion plus leaf cost evaluation) and makes the walk anytime.
pub(crate) struct Generator<'a> {
    kernels: &'a [&'a TunedKernel],
    m: usize,
    n: usize,
    budget: usize,
}

impl<'a> Generator<'a> {
    pub(crate) fn new(kernels: &'a [&'a TunedKernel], m: usize, n: usize, budget: usize) -> Self {
        Self {
            kernels,
            m,
            n,
            budget,
        }
    }

    /// Whether the budget ran out (the walk may have missed strategies).
    pub(crate) fn exhausted(&self) -> bool {
        self.budget == 0
    }

    /// Walks one pattern's strategies, drawing lead/trail kernels from the
    /// first `limit` entries of the kernel order (the shortlist prefix).
    pub(crate) fn run_pattern<V: StrategyVisitor>(
        &mut self,
        pattern: &Pattern,
        limit: usize,
        visitor: &mut V,
    ) {
        let limit = limit.min(self.kernels.len()).max(1);
        let mut regions = Vec::with_capacity(pattern.num_regions());
        self.bands(pattern, limit, 0, 0, &mut regions, visitor);
    }

    fn bands<V: StrategyVisitor>(
        &mut self,
        pattern: &Pattern,
        limit: usize,
        band_idx: usize,
        row_off: usize,
        regions: &mut Vec<Region>,
        visitor: &mut V,
    ) {
        if band_idx == pattern.bands.len() {
            debug_assert_eq!(row_off, self.m, "last band must absorb the remainder");
            visitor.complete(pattern.id, regions);
            return;
        }
        let rem_m = self.m - row_off;
        if rem_m == 0 {
            // A pattern with fewer bands covers this shape; skip the
            // degenerate strategy.
            visitor.degenerate();
            return;
        }
        let last_band = band_idx + 1 == pattern.bands.len();
        let segs = pattern.bands[band_idx];
        for i in 0..limit {
            if self.budget == 0 {
                return;
            }
            let lead = self.kernels[i];
            let um = lead.kernel.um;
            let h = if last_band { rem_m } else { (rem_m / um) * um };
            if h == 0 || (!last_band && h == rem_m) {
                continue;
            }
            let (r0, r1) = (row_off, row_off + h);
            match segs {
                1 => {
                    let region = Region::new(r0, r1, 0, self.n, lead.kernel);
                    if visitor.admit(i, &region, self.m - r1) == Admit::Prune {
                        continue;
                    }
                    regions.push(region);
                    self.budget = self.budget.saturating_sub(1);
                    self.bands(pattern, limit, band_idx + 1, r1, regions, visitor);
                    regions.pop();
                    visitor.retract();
                }
                2 => {
                    let w = (self.n / lead.kernel.un) * lead.kernel.un;
                    if w == 0 || w == self.n {
                        // Degenerate split; the single-segment pattern
                        // covers it.
                        continue;
                    }
                    let left = Region::new(r0, r1, 0, w, lead.kernel);
                    if visitor.admit(i, &left, self.m - r1) == Admit::Prune {
                        continue;
                    }
                    regions.push(left);
                    for j in 0..limit {
                        if self.budget == 0 {
                            break;
                        }
                        let trail = self.kernels[j];
                        let right = Region::new(r0, r1, w, self.n, trail.kernel);
                        if visitor.admit(j, &right, self.m - r1) == Admit::Prune {
                            continue;
                        }
                        regions.push(right);
                        self.budget = self.budget.saturating_sub(1);
                        self.bands(pattern, limit, band_idx + 1, r1, regions, visitor);
                        regions.pop();
                        visitor.retract();
                    }
                    regions.pop();
                    visitor.retract();
                }
                other => panic!("patterns support 1 or 2 column segments, got {other}"),
            }
        }
    }
}

/// Precomputes `g_predict(f_num)` per usable kernel for a fixed reduction
/// extent. Every region spans the full reduction extent, so the
/// pipelined-task cost of a kernel does not depend on region geometry —
/// this cache is what keeps the online search at microsecond scale.
pub(crate) fn pipe_cache(kernels: &[&TunedKernel], k_extent: usize) -> Vec<f64> {
    kernels
        .iter()
        .map(|t| t.perf.predict(t.kernel.instances_for(k_extent)))
        .collect()
}

/// The library's kernels usable for this view, in library rank order.
///
/// # Panics
///
/// Panics if the library contains no usable kernel for this view (which
/// cannot happen for libraries produced by
/// [`MicroKernelLibrary::generate`] on the same machine).
pub(crate) fn usable<'a>(
    machine: &MachineModel,
    library: &'a MicroKernelLibrary,
    view: &GemmView,
) -> Vec<&'a TunedKernel> {
    let kernels = library.usable_kernels(machine, view);
    assert!(
        !kernels.is_empty(),
        "micro-kernel library for {} has no kernel usable for {:?} on {}",
        library.machine,
        view.shape,
        machine.name
    );
    kernels
}
