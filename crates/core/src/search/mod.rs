//! On-the-fly polymerization search (Section 3.4, Algorithm 1 lines 7–15),
//! as a staged, adaptive pipeline.
//!
//! Once the operator's shape is known, MikPoly tries each polymerization
//! pattern, instantiating the pattern's parameterized micro-kernels from
//! the offline library (the *polymerization strategies*), and keeps the
//! strategy with the lowest estimated cost. The search decomposes into
//! explicit stages, each with its own module and its own knobs in
//! [`SearchPolicy`]:
//!
//! 1. **Candidate generation** ([`candidates`]) — one shared generator
//!    walks the strategy space for both the branch-and-bound search and
//!    the conformance oracle's enumeration, so the searched space and the
//!    audited space are identical by construction.
//! 2. **Shape-aware shortlisting** ([`shortlist`]) — kernels are ranked
//!    per shape by predicted region efficiency (occupancy-aware on
//!    dynamically scheduled machines), and deep patterns draw from a
//!    stratified-diversity shortlist built on the offline library's
//!    tile-geometry index, replacing the old global top-16 cut.
//! 3. **Bounding and pruning** ([`bound`]) — the admissible remaining-work
//!    bound; as soon as a partial strategy's bound reaches the incumbent's
//!    cost (under *both* tracked criteria), the subtree is skipped — the
//!    paper's "if the cost of `(R_i, K̃_i)` exceeds the current best
//!    strategy's cost, related strategies are skipped".
//! 4. **Selection refinement** — alongside Eq. 2, the search accumulates
//!    the occupancy-aware region-efficiency estimate of every visited
//!    strategy and (on dynamic machines, full model) selects the strategy
//!    that estimator favors. Eq. 2 remains the ablatable cost model
//!    (`--cost-model` keeps its meaning); refinement is the closed-form
//!    correction that closes the measured hard-shape oracle gap.
//! 5. **Anytime budget escalation** — when the node budget exhausts and
//!    the incumbent is still far from the shape's admissible lower bound,
//!    the search re-runs with escalated budget and shortlist (bounded by
//!    [`SearchPolicy::max_escalations`]); outcomes land in [`SearchStats`]
//!    and the `search.*` telemetry counters.
//!
//! Under a serving deadline the search is *anytime*: [`try_polymerize`]
//! takes an optional wall-clock deadline, checks it every few dozen
//! descents, and on expiry stops exploring and returns the incumbent
//! (flagged `deadline_cut`). When even pattern I's first strategy did not
//! complete in time, it reports [`MikPolyError::DeadlineExceeded`] and the
//! caller falls back to [`polymerize_degraded`] — a search-free
//! single-region plan under the shape's shortlist-top-1 kernel.

// Online hot path: failures must surface as typed errors, not panics.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub(crate) mod bound;
pub(crate) mod candidates;
mod policy;
pub(crate) mod shortlist;
mod splitk;

use std::time::Instant;

use accel_sim::{AllocationPolicy, MachineModel};
use mikpoly_telemetry::{span, Clock, Registry, Telemetry};
use tensor_ir::GemmView;

use crate::alloc::lpt_makespan;
use crate::cost::CostModelKind;
use crate::error::MikPolyError;
use crate::offline::MicroKernelLibrary;
use crate::pattern::{Pattern, PatternId};
use crate::plan::{CompiledProgram, Region, SearchStats};

use bound::{CostEval, Partial};
use candidates::{pipe_cache, usable, Admit, Generator, StrategyVisitor};
use shortlist::OccupancyModel;

pub use policy::SearchPolicy;
pub use splitk::improve_with_split_k;

/// How often the branch-and-bound walk consults the wall clock when a
/// deadline is set: every this-many admitted descents. Cheap enough to
/// bound deadline overshoot to the cost of a few dozen node expansions
/// (single-digit microseconds), rare enough not to tax deadline-free runs.
const DEADLINE_CHECK_INTERVAL: usize = 32;

/// Outcome of a deadline-aware polymerization search.
#[derive(Debug, Clone)]
pub struct SearchRun {
    /// The selected program — the full search's pick, or the incumbent at
    /// the moment the deadline cut exploration short.
    pub program: CompiledProgram,
    /// Whether the deadline stopped the search before it covered the
    /// space it would otherwise have explored. The program is still a
    /// valid, coverage-complete plan — just possibly not the one the full
    /// search would have chosen.
    pub deadline_cut: bool,
}

/// Result of a polymerization search before packaging into a
/// [`CompiledProgram`].
#[derive(Debug, Clone)]
struct Best {
    pattern: PatternId,
    regions: Vec<Region>,
    /// The cost under this incumbent's selection criterion (Eq. 2 / LPT
    /// makespan for the model incumbent, effective latency for the
    /// refined incumbent).
    cost: f64,
    /// The Eq. 2 / makespan cost of the same strategy, for reporting in
    /// [`CompiledProgram::predicted_ns`] regardless of which criterion
    /// selected it.
    model_cost: f64,
}

/// Test/diagnostic hook over the search: sees every complete strategy
/// the branch-and-bound walk visits.
type StrategyObserver<'o> = &'o mut dyn FnMut(PatternId, &[Region]);

/// The branch-and-bound consumer of the candidate generator: accumulates
/// Eq. 2 (and, when refinement is active, the region-efficiency estimate)
/// along the current path, prunes subtrees hopeless under every tracked
/// criterion, and keeps one incumbent per criterion.
struct BnbVisitor<'a, 'o> {
    eval: &'a CostEval<'a>,
    /// Region-efficiency tracking (selection refinement); `None` disables.
    occ: Option<&'a OccupancyModel>,
    prune: bool,
    margin: f64,
    /// Eq. 2 accumulation along the current path (index = depth).
    partials: Vec<Partial>,
    /// Region-efficiency accumulation along the current path.
    eff_stack: Vec<f64>,
    /// `(f_pipe, tasks)` per region of the current partial strategy, for
    /// the exact LPT makespan at static-placement leaves.
    group_stack: Vec<(f64, usize)>,
    best: Option<Best>,
    best_eff: Option<Best>,
    evaluated: usize,
    pruned: usize,
    observer: Option<StrategyObserver<'o>>,
    /// Wall-clock search deadline; `None` disables the clock entirely.
    deadline: Option<Instant>,
    /// Admitted descents since the walk began (drives the periodic
    /// deadline check).
    admits: usize,
    /// Latched once the deadline fires; every later admit prunes, so the
    /// walk unwinds in microseconds.
    deadline_cut: bool,
}

impl<'a, 'o> BnbVisitor<'a, 'o> {
    fn new(
        eval: &'a CostEval<'a>,
        occ: Option<&'a OccupancyModel>,
        prune: bool,
        margin: f64,
        deadline: Option<Instant>,
        observer: Option<StrategyObserver<'o>>,
    ) -> Self {
        Self {
            eval,
            occ,
            prune,
            margin,
            partials: vec![Partial::default()],
            eff_stack: vec![0.0],
            group_stack: Vec::with_capacity(4),
            best: None,
            best_eff: None,
            evaluated: 0,
            pruned: 0,
            observer,
            deadline,
            admits: 0,
            deadline_cut: false,
        }
    }

    fn best_cost(&self) -> f64 {
        self.best.as_ref().map_or(f64::INFINITY, |b| b.cost)
    }
}

// Invariant behind the `expect`s below: `partials`/`eff_stack` are seeded
// with one root element in `new()` and every `retract()` pairs with a
// prior `admit()`, so `last()` is always `Some` — an empty stack is the
// logic bug the message names, not a runtime condition.
#[allow(clippy::expect_used)]
impl StrategyVisitor for BnbVisitor<'_, '_> {
    fn admit(&mut self, kernel_idx: usize, region: &Region, rows_remaining: usize) -> Admit {
        if let Some(deadline) = self.deadline {
            self.admits += 1;
            if self.deadline_cut
                || (self.admits.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                    && Instant::now() >= deadline)
            {
                self.deadline_cut = true;
                self.pruned += 1;
                return Admit::Prune;
            }
        }
        let acc = self.eval.extend(
            *self.partials.last().expect("root partial"),
            region,
            kernel_idx,
        );
        let eff = self.occ.map(|o| {
            self.eff_stack.last().expect("root eff") + o.region_ns(kernel_idx, region.tasks())
        });
        if self.prune {
            // A subtree survives if it can still improve *either*
            // incumbent: the two rankings disagree exactly where the
            // refinement has value, so the cut must be hopeless under
            // both. The partial efficiency sum is itself admissible
            // (completions only add regions).
            let model_cut =
                self.eval.lower_bound(acc, rows_remaining) >= self.best_cost() * self.margin;
            let eff_cut = match (eff, &self.best_eff) {
                (Some(e), Some(b)) => e >= b.cost * self.margin,
                (Some(_), None) => false,
                (None, _) => true,
            };
            if model_cut && eff_cut {
                self.pruned += 1;
                return Admit::Prune;
            }
        }
        self.partials.push(acc);
        if let Some(e) = eff {
            self.eff_stack.push(e);
        }
        self.group_stack
            .push((self.eval.pipe[kernel_idx], region.tasks()));
        Admit::Descend
    }

    fn retract(&mut self) {
        self.partials.pop();
        if self.occ.is_some() {
            self.eff_stack.pop();
        }
        self.group_stack.pop();
    }

    fn complete(&mut self, pattern: PatternId, regions: &[Region]) {
        self.evaluated += 1;
        if let Some(obs) = self.observer.as_mut() {
            obs(pattern, regions);
        }
        let partial = *self.partials.last().expect("root partial");
        let model_cost = if self.eval.static_alloc && self.eval.kind == CostModelKind::Full {
            // Exact max-min (LPT) allocation makespan of the complete
            // strategy; the additive bound is only used for pruning.
            lpt_makespan(&self.group_stack, self.eval.num_pes)
        } else {
            self.eval.finish(partial)
        };
        if model_cost < self.best_cost() {
            self.best = Some(Best {
                pattern,
                regions: regions.to_vec(),
                cost: model_cost,
                model_cost,
            });
        }
        if self.occ.is_some() {
            let eff_cost = *self.eff_stack.last().expect("root eff");
            if self.best_eff.as_ref().is_none_or(|b| eff_cost < b.cost) {
                self.best_eff = Some(Best {
                    pattern,
                    regions: regions.to_vec(),
                    cost: eff_cost,
                    model_cost,
                });
            }
        }
        // A completed strategy is the natural cut point: an incumbent now
        // exists, so latching here (in addition to the admit-interval
        // sample, which covers long strategy-free stretches) guarantees a
        // blown deadline stops the search even when heavy pruning keeps
        // the admit count below the check interval.
        if let Some(deadline) = self.deadline {
            if !self.deadline_cut && Instant::now() >= deadline {
                self.deadline_cut = true;
            }
        }
    }

    fn degenerate(&mut self) {
        self.pruned += 1;
    }
}

/// Runs the online polymerization search and returns the optimized tensor
/// program `S*`.
///
/// # Panics
///
/// Panics if the library contains no usable kernel for this view (which
/// cannot happen for libraries produced by
/// [`MicroKernelLibrary::generate`] on the same machine). Deadline-bound
/// callers use [`try_polymerize`], which reports that condition (and a
/// blown deadline) as a typed error instead.
#[allow(clippy::too_many_arguments)]
pub fn polymerize(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
) -> CompiledProgram {
    polymerize_observed(
        machine, library, view, operator, patterns, kind, prune, policy, None,
    )
}

/// Deadline-aware, fallible polymerization. With `deadline: None` this is
/// [`polymerize`] behind a `Result`; with a deadline the search checks the
/// clock every [`DEADLINE_CHECK_INTERVAL`] descents and, on expiry,
/// returns the incumbent flagged [`SearchRun::deadline_cut`]. Errors:
///
/// * [`MikPolyError::DeadlineExceeded`] — the deadline fired before any
///   complete strategy was costed (no incumbent to return);
/// * [`MikPolyError::NoFeasibleStrategy`] — the library holds no kernel
///   usable for this view.
#[allow(clippy::too_many_arguments)]
pub fn try_polymerize(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
    deadline: Option<Instant>,
) -> Result<SearchRun, MikPolyError> {
    try_polymerize_observed(
        machine, library, view, operator, patterns, kind, prune, policy, deadline, None,
    )
}

/// [`polymerize`] with a hook that observes every complete strategy the
/// search visits — the instrument behind the oracle-superset test and gap
/// attributions.
#[allow(clippy::too_many_arguments)]
fn polymerize_observed(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
    observer: Option<StrategyObserver<'_>>,
) -> CompiledProgram {
    match try_polymerize_observed(
        machine, library, view, operator, patterns, kind, prune, policy, None, observer,
    ) {
        Ok(run) => run.program,
        // No deadline was set, so the only representable failure is a
        // library with no usable kernel — the logic bug the infallible
        // contract documents as a panic.
        Err(err) => panic!("infallible polymerization failed: {err}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn try_polymerize_observed(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
    deadline: Option<Instant>,
    observer: Option<StrategyObserver<'_>>,
) -> Result<SearchRun, MikPolyError> {
    let start = Instant::now();
    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    let raw_kernels = library.usable_kernels(machine, view);
    if raw_kernels.is_empty() {
        return Err(MikPolyError::NoFeasibleStrategy { operator });
    }
    let raw_pipe = pipe_cache(&raw_kernels, view.shape.k);

    // Stage 2: shape-aware ordering with stratified-diversity promotion.
    let index = library.stratified_index();
    let order = shortlist::shape_order(
        machine,
        &raw_kernels,
        &raw_pipe,
        view,
        static_alloc,
        &index,
        policy.shortlist,
    );
    let kernels: Vec<_> = order.iter().map(|&i| raw_kernels[i]).collect();
    let pipe: Vec<f64> = order.iter().map(|&i| raw_pipe[i]).collect();

    let flops_per_row = 2.0 * view.shape.n as f64 * view.shape.k as f64;
    let best_rate = kernels
        .iter()
        .zip(&pipe)
        .map(|(t, &p)| {
            t.kernel.flops_per_instance() * t.kernel.instances_for(view.shape.k) as f64 / p
        })
        .fold(1e-9, f64::max);
    let eval = CostEval {
        pipe: &pipe,
        kind,
        static_alloc,
        num_pes: machine.num_pes,
        flops_per_row,
        best_rate,
    };
    // Stage 4 applies on dynamically scheduled machines under the full
    // model: static placement already costs leaves exactly (LPT), and the
    // ablated models must keep their deliberately-ablated selection.
    let refine = policy.refine && !static_alloc && kind == CostModelKind::Full;
    let occ = refine.then(|| OccupancyModel::new(machine, &kernels, &pipe, view));

    let mut stats = SearchStats {
        patterns_tried: patterns.len(),
        ..SearchStats::default()
    };
    // The visitor persists across escalation rounds: an escalated round
    // re-walks the (larger) space with the previous round's incumbents
    // already in place, so revisited prefixes prune immediately.
    let mut visitor = BnbVisitor::new(
        &eval,
        occ.as_ref(),
        prune,
        policy.prune_margin,
        deadline,
        observer,
    );
    let mut round = 0usize;
    loop {
        let budget = if prune {
            policy.budget_for(round)
        } else {
            usize::MAX
        };
        let deep_limit = policy.shortlist_for(round).min(kernels.len());
        let mut generator = Generator::new(&kernels, view.shape.m, view.shape.n, budget);
        for pattern in patterns {
            let limit = if pattern.num_regions() >= 3 {
                if deep_limit < kernels.len() {
                    stats.shortlist_truncated += 1;
                }
                deep_limit
            } else {
                kernels.len()
            };
            generator.run_pattern(pattern, limit, &mut visitor);
        }
        let exhausted = generator.exhausted();
        if exhausted {
            stats.budget_exhausted += 1;
        }
        // Stage 5: escalate only while the budget is the binding
        // constraint *and* the incumbent is demonstrably far from the
        // shape's admissible lower bound. A blown deadline trumps both:
        // escalation would only dig the hole deeper.
        if exhausted && prune && !visitor.deadline_cut && round < policy.max_escalations {
            let floor = eval.lower_bound(Partial::default(), view.shape.m);
            let incumbent = visitor.best_cost();
            if floor > 0.0 && incumbent > floor * policy.escalate_ratio {
                round += 1;
                stats.escalations += 1;
                continue;
            }
        }
        break;
    }
    stats.strategies_evaluated = visitor.evaluated;
    stats.strategies_pruned = visitor.pruned;
    let deadline_cut = visitor.deadline_cut;
    let (best, best_eff) = (visitor.best, visitor.best_eff);

    // Pattern I always yields at least one strategy, so an empty incumbent
    // means the deadline fired before even that first strategy completed.
    let Some(model_best) = best else {
        return Err(MikPolyError::DeadlineExceeded { operator });
    };
    let chosen = match best_eff {
        Some(eff_best) if refine => {
            stats.refined =
                eff_best.pattern != model_best.pattern || eff_best.regions != model_best.regions;
            eff_best
        }
        _ => model_best,
    };
    stats.search_ns = start.elapsed().as_nanos();
    Ok(SearchRun {
        program: CompiledProgram {
            operator,
            view: *view,
            pattern: chosen.pattern,
            regions: chosen.regions,
            split_k: 1,
            predicted_ns: chosen.model_cost,
            stats,
        },
        deadline_cut,
    })
}

/// The search-free degraded compile path: a single region covering the
/// whole output under the shape's shortlist-top-1 micro-kernel. This is
/// the bottom rung of the degradation ladder — taken when the deadline
/// left no room for any search, or when a shape's circuit breaker is open.
/// The resulting program is coverage-complete and numerically identical to
/// a full-search program (only slower), and its
/// [`SearchStats::degraded`] flag is set so it is never mistaken for a
/// searched plan.
pub fn polymerize_degraded(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
) -> Result<CompiledProgram, MikPolyError> {
    let start = Instant::now();
    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    let kernels = library.usable_kernels(machine, view);
    if kernels.is_empty() {
        return Err(MikPolyError::NoFeasibleStrategy { operator });
    }
    let pipe = pipe_cache(&kernels, view.shape.k);
    // Rank with the same shape-aware ordering the full search uses, but
    // keep only the head: one kernel, one region, zero search.
    let index = library.stratified_index();
    let order = shortlist::shape_order(machine, &kernels, &pipe, view, static_alloc, &index, 1);
    let Some(&top) = order.first() else {
        return Err(MikPolyError::NoFeasibleStrategy { operator });
    };
    let region = Region::new(0, view.shape.m, 0, view.shape.n, kernels[top].kernel);

    // Cost the plan with the same Eq. 2 evaluator as the full search so
    // `predicted_ns` stays comparable across grades.
    let flops_per_row = 2.0 * view.shape.n as f64 * view.shape.k as f64;
    let best_rate = kernels
        .iter()
        .zip(&pipe)
        .map(|(t, &p)| {
            t.kernel.flops_per_instance() * t.kernel.instances_for(view.shape.k) as f64 / p
        })
        .fold(1e-9, f64::max);
    let eval = CostEval {
        pipe: &pipe,
        kind: CostModelKind::Full,
        static_alloc,
        num_pes: machine.num_pes,
        flops_per_row,
        best_rate,
    };
    let predicted_ns = eval.finish(eval.extend(Partial::default(), &region, top));

    let stats = SearchStats {
        strategies_evaluated: 1,
        patterns_tried: 1,
        degraded: true,
        search_ns: start.elapsed().as_nanos(),
        ..SearchStats::default()
    };
    Ok(CompiledProgram {
        operator,
        view: *view,
        pattern: PatternId(1),
        regions: vec![region],
        split_k: 1,
        predicted_ns,
        stats,
    })
}

/// Like [`polymerize`], but wrapped in an `online.search` span and with
/// the resulting [`SearchStats`] accumulated into `telemetry`'s registry
/// (see [`record_search_stats`] for the counter names). Identical to
/// [`polymerize`] — including cost — when `telemetry` is disabled.
#[allow(clippy::too_many_arguments)]
pub fn polymerize_traced(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
    telemetry: &Telemetry,
) -> CompiledProgram {
    if !telemetry.is_enabled() {
        return polymerize(
            machine, library, view, operator, patterns, kind, prune, policy,
        );
    }
    let mut span = span!(
        telemetry,
        "online.search",
        m = view.shape.m,
        n = view.shape.n,
        k = view.shape.k,
    );
    let program = polymerize(
        machine, library, view, operator, patterns, kind, prune, policy,
    );
    span.arg("strategies_evaluated", program.stats.strategies_evaluated);
    span.arg("strategies_pruned", program.stats.strategies_pruned);
    span.arg("patterns_tried", program.stats.patterns_tried);
    span.arg("escalations", program.stats.escalations);
    record_search_stats(&program.stats, telemetry.registry());
    program
}

/// [`try_polymerize`] under an `online.search` span, with the stats
/// recorded into `telemetry`'s registry — the deadline-aware sibling of
/// [`polymerize_traced`]. Errors are not recorded as search stats (no
/// program was produced); the caller accounts for them in its own
/// disposition counters.
#[allow(clippy::too_many_arguments)]
pub fn try_polymerize_traced(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    policy: &SearchPolicy,
    deadline: Option<Instant>,
    telemetry: &Telemetry,
) -> Result<SearchRun, MikPolyError> {
    if !telemetry.is_enabled() {
        return try_polymerize(
            machine, library, view, operator, patterns, kind, prune, policy, deadline,
        );
    }
    let mut span = span!(
        telemetry,
        "online.search",
        m = view.shape.m,
        n = view.shape.n,
        k = view.shape.k,
    );
    let run = try_polymerize(
        machine, library, view, operator, patterns, kind, prune, policy, deadline,
    )?;
    span.arg(
        "strategies_evaluated",
        run.program.stats.strategies_evaluated,
    );
    span.arg("strategies_pruned", run.program.stats.strategies_pruned);
    span.arg("patterns_tried", run.program.stats.patterns_tried);
    span.arg("escalations", run.program.stats.escalations);
    span.arg("deadline_cut", usize::from(run.deadline_cut));
    record_search_stats(&run.program.stats, telemetry.registry());
    Ok(run)
}

/// Accumulates one shape's [`SearchStats`] into the registry's
/// search-efficiency counters (`search.shapes`, `search.strategies_*`,
/// `search.patterns_tried`, and the stage counters
/// `search.budget_exhausted` / `search.shortlist_truncated` /
/// `search.escalations` / `search.refined`) and the real-clock
/// `online.search_ns` histogram — the numbers the `fig*` / `abl_search`
/// experiments report, and what lets a gap report attribute slack to
/// pruning vs. library coverage directly.
pub fn record_search_stats(stats: &SearchStats, registry: &Registry) {
    registry.counter("search.shapes").inc();
    registry
        .counter("search.strategies_evaluated")
        .add(stats.strategies_evaluated as u64);
    registry
        .counter("search.strategies_pruned")
        .add(stats.strategies_pruned as u64);
    registry
        .counter("search.patterns_tried")
        .add(stats.patterns_tried as u64);
    registry
        .counter("search.budget_exhausted")
        .add(stats.budget_exhausted as u64);
    registry
        .counter("search.shortlist_truncated")
        .add(stats.shortlist_truncated as u64);
    registry
        .counter("search.escalations")
        .add(stats.escalations as u64);
    if stats.refined {
        registry.counter("search.refined").inc();
    }
    registry
        .histogram("online.search_ns", Clock::Real)
        .record(stats.search_ns.min(u128::from(u64::MAX)) as u64);
}

/// The enumeration consumer of the candidate generator: no costs, no
/// pruning — every feasible strategy reaches the callback.
struct EnumerateVisitor<'c> {
    cb: &'c mut dyn FnMut(PatternId, &[Region]),
}

impl StrategyVisitor for EnumerateVisitor<'_> {
    fn admit(&mut self, _kernel_idx: usize, _region: &Region, _rows_remaining: usize) -> Admit {
        Admit::Descend
    }
    fn retract(&mut self) {}
    fn complete(&mut self, pattern: PatternId, regions: &[Region]) {
        (self.cb)(pattern, regions);
    }
}

/// Enumerates every polymerization strategy (no pruning, no shortlist),
/// invoking the callback with each complete region list. Used by the
/// Oracle variant of Fig. 12(b), which simulates every candidate instead
/// of trusting the cost model. Because the walk goes through the same
/// [`candidates::Generator`] as [`polymerize`], the enumerated space is a
/// superset of anything the pruned search can visit.
pub fn enumerate_strategies(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    patterns: &[Pattern],
    cb: impl FnMut(PatternId, &[Region]),
) {
    enumerate_strategies_capped(machine, library, view, patterns, usize::MAX, cb);
}

/// Like [`enumerate_strategies`], but the walk visits at most `cap`
/// descents before giving up on the remaining strategy space. Returns
/// `true` when the enumeration was truncated by the cap.
///
/// The conformance oracle uses this to bound exhaustive searches on
/// shapes whose strategy space explodes: the kernels are visited in the
/// library's rank order, so even a truncated enumeration sees the
/// plausible candidates first.
pub fn enumerate_strategies_capped(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    patterns: &[Pattern],
    cap: usize,
    mut cb: impl FnMut(PatternId, &[Region]),
) -> bool {
    let kernels = usable(machine, library, view);
    let mut generator = Generator::new(&kernels, view.shape.m, view.shape.n, cap.max(1));
    let mut visitor = EnumerateVisitor { cb: &mut cb };
    for pattern in patterns {
        generator.run_pattern(pattern, kernels.len(), &mut visitor);
    }
    generator.exhausted()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::offline::OfflineOptions;
    use crate::pattern::{all_patterns, gpu_patterns};
    use tensor_ir::{GemmShape, Operator};

    fn setup() -> (MachineModel, MicroKernelLibrary) {
        let m = MachineModel::a100();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        (m, lib)
    }

    fn compile(m: &MachineModel, lib: &MicroKernelLibrary, shape: GemmShape) -> CompiledProgram {
        let op = Operator::gemm(shape);
        polymerize(
            m,
            lib,
            &op.gemm_view(),
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
        )
    }

    #[test]
    fn polymerize_covers_output_exactly() {
        let (m, lib) = setup();
        for &(mm, nn, kk) in &[
            (4096, 1024, 4096),
            (105, 1024, 544),
            (1, 1, 1),
            (33, 65, 17),
        ] {
            let prog = compile(&m, &lib, GemmShape::new(mm, nn, kk));
            prog.verify_coverage().expect("coverage");
            assert!(prog.predicted_ns.is_finite());
            assert!(prog.stats.strategies_evaluated > 0);
        }
    }

    #[test]
    fn awkward_shapes_prefer_polymerization() {
        // With large tiles in the library, a shape whose task count just
        // spills into an extra wave should split off its remainder rows
        // under a second (smaller) micro-kernel — the Fig. 15 effect. (The
        // tiny `setup()` library has no large tiles, so it is generated
        // here with the full `fast()` tile range.)
        let m = MachineModel::a100();
        // Synthetic ranking must reach large shapes (n_syn) for large
        // tiles to survive RankAndPrune.
        let mut options = OfflineOptions::fast();
        options.n_syn = 12;
        let lib = MicroKernelLibrary::generate(&m, &options);
        let mut found_multi = false;
        for mm in (1600..=2400).step_by(16) {
            let op = Operator::gemm(GemmShape::new(mm, 1024, 512));
            let prog = polymerize(
                &m,
                &lib,
                &op.gemm_view(),
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                true,
                &SearchPolicy::default(),
            );
            prog.verify_coverage().expect("coverage");
            if prog.regions.len() > 1 {
                found_multi = true;
            }
        }
        assert!(found_multi, "no awkward shape polymerized into two regions");
    }

    #[test]
    fn pruning_preserves_the_optimum() {
        // Refinement off: this pins the branch-and-bound machinery (the
        // Eq. 2 optimum survives pruning within the margin) independently
        // of the selection-refinement stage.
        let policy = SearchPolicy::legacy();
        let (m, lib) = setup();
        for &(mm, nn, kk) in &[(777, 512, 256), (2048, 384, 128), (96, 96, 96)] {
            let op = Operator::gemm(GemmShape::new(mm, nn, kk));
            let view = op.gemm_view();
            let pruned = polymerize(
                &m,
                &lib,
                &view,
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                true,
                &policy,
            );
            let full = polymerize(
                &m,
                &lib,
                &view,
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                false,
                &policy,
            );
            // Pruning keeps the result within the branch-and-bound margin
            // of the true optimum.
            assert!(
                pruned.predicted_ns <= full.predicted_ns * 1.006 + 1e-9,
                "shape ({mm},{nn},{kk}): pruned {} vs optimal {}",
                pruned.predicted_ns,
                full.predicted_ns
            );
            assert!(pruned.stats.strategies_evaluated <= full.stats.strategies_evaluated);
        }
    }

    #[test]
    fn wave_only_picks_larger_tiles_than_pipe_only() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(2048, 2048, 1024));
        let view = op.gemm_view();
        let wave = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::WaveOnly,
            true,
            &SearchPolicy::default(),
        );
        let pipe = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::PipeOnly,
            true,
            &SearchPolicy::default(),
        );
        let area = |p: &CompiledProgram| {
            p.regions
                .iter()
                .map(|r| r.kernel.um * r.kernel.un)
                .max()
                .unwrap_or(0)
        };
        assert!(
            area(&wave) >= area(&pipe),
            "WaveOnly should favor at-least-as-large micro-kernels"
        );
    }

    #[test]
    fn npu_patterns_search_completes() {
        let m = MachineModel::ascend910a();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        let op = Operator::gemm(GemmShape::new(1234, 777, 512));
        let prog = polymerize(
            &m,
            &lib,
            &op.gemm_view(),
            op,
            &all_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
        );
        prog.verify_coverage().expect("coverage");
        assert_eq!(prog.stats.patterns_tried, 9);
    }

    #[test]
    fn enumerate_visits_every_pattern_i_strategy() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(512, 512, 512));
        let mut count = 0usize;
        enumerate_strategies(
            &m,
            &lib,
            &op.gemm_view(),
            &gpu_patterns()[..1],
            |_, regions| {
                assert_eq!(regions.len(), 1);
                count += 1;
            },
        );
        // Pattern I has exactly one strategy per usable kernel.
        let usable = lib.usable_kernels(&m, &op.gemm_view()).len();
        assert_eq!(count, usable);
    }

    #[test]
    fn pruned_search_evaluates_far_fewer_strategies() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(1111, 999, 512));
        let view = op.gemm_view();
        let policy = SearchPolicy::legacy();
        let pruned = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &policy,
        );
        let full = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            false,
            &policy,
        );
        assert!(pruned.stats.strategies_pruned > 0);
        assert!(pruned.stats.strategies_evaluated < full.stats.strategies_evaluated);
    }

    /// Satellite: the oracle's enumerated space is a superset of every
    /// strategy the pruned online search visits — provable here because
    /// both walks run through the one shared [`candidates::Generator`].
    #[test]
    fn oracle_enumeration_is_a_superset_of_the_pruned_search() {
        fn key(pattern: PatternId, regions: &[Region]) -> String {
            use std::fmt::Write;
            let mut s = format!("{pattern:?}");
            for r in regions {
                write!(
                    s,
                    "|{},{},{},{},k{}",
                    r.row0, r.row1, r.col0, r.col1, r.kernel.id.0
                )
                .unwrap();
            }
            s
        }
        for (machine, patterns, shape) in [
            (
                MachineModel::a100(),
                gpu_patterns(),
                (640usize, 384usize, 128usize),
            ),
            (MachineModel::ascend910a(), all_patterns(), (96, 96, 96)),
        ] {
            let mut o = OfflineOptions::fast();
            o.n_gen = 4;
            let lib = MicroKernelLibrary::generate(&machine, &o);
            let op = Operator::gemm(GemmShape::new(shape.0, shape.1, shape.2));
            let view = op.gemm_view();

            let mut oracle_space = std::collections::HashSet::new();
            enumerate_strategies(&machine, &lib, &view, &patterns, |p, r| {
                oracle_space.insert(key(p, r));
            });

            let mut visited = Vec::new();
            let mut observer = |p: PatternId, r: &[Region]| visited.push(key(p, r));
            let _ = polymerize_observed(
                &machine,
                &lib,
                &view,
                op,
                &patterns,
                CostModelKind::Full,
                true,
                &SearchPolicy::default(),
                Some(&mut observer),
            );
            assert!(!visited.is_empty());
            for v in &visited {
                assert!(
                    oracle_space.contains(v),
                    "{}: pruned search visited a strategy outside the oracle space: {v}",
                    machine.name
                );
            }
        }
    }

    /// The refinement stage only ever replaces the Eq. 2 pick with another
    /// strategy from the same visited space, and it reports having done so.
    #[test]
    fn refined_selection_stays_within_the_search_space_and_is_flagged() {
        let m = MachineModel::a100();
        let lib = MicroKernelLibrary::generate(&m, &OfflineOptions::fast());
        let mut refined_any = false;
        for &(mm, nn, kk) in &[(512, 512, 256), (768, 768, 128), (777, 333, 111)] {
            let op = Operator::gemm(GemmShape::new(mm, nn, kk));
            let view = op.gemm_view();
            let prog = polymerize(
                &m,
                &lib,
                &view,
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                true,
                &SearchPolicy::default(),
            );
            prog.verify_coverage().expect("coverage");
            assert!(prog.predicted_ns.is_finite() && prog.predicted_ns > 0.0);
            let mut in_space = false;
            enumerate_strategies(&m, &lib, &view, &gpu_patterns(), |p, r| {
                if p == prog.pattern && r == prog.regions.as_slice() {
                    in_space = true;
                }
            });
            assert!(in_space, "refined pick must be a generated candidate");
            refined_any |= prog.stats.refined;
        }
        assert!(
            refined_any,
            "refinement should change the pick on at least one hard shape"
        );
    }

    /// An already-expired deadline still yields a valid program — the
    /// incumbent at the cut — and reports the cut, while exploring a tiny
    /// fraction of the space.
    #[test]
    fn expired_deadline_returns_incumbent_and_flags_the_cut() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(1111, 999, 512));
        let view = op.gemm_view();
        let full = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            false,
            &SearchPolicy::default(),
        );
        let cut = try_polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
            Some(Instant::now() - std::time::Duration::from_millis(1)),
        )
        .expect("the first strategies complete before the deadline check");
        assert!(cut.deadline_cut, "expired deadline must cut the search");
        cut.program.verify_coverage().expect("coverage");
        assert!(cut.program.predicted_ns.is_finite());
        assert!(
            cut.program.stats.strategies_evaluated < full.stats.strategies_evaluated,
            "cut search must explore less than the exhaustive one"
        );
        assert_eq!(cut.program.stats.escalations, 0, "no escalation past a cut");
    }

    /// Without a deadline, `try_polymerize` is `polymerize` behind a
    /// `Result` — bit-identical program, no cut.
    #[test]
    fn try_polymerize_without_deadline_matches_polymerize() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(777, 512, 256));
        let view = op.gemm_view();
        let plain = compile(&m, &lib, GemmShape::new(777, 512, 256));
        let run = try_polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
            None,
        )
        .expect("deadline-free search cannot fail");
        assert!(!run.deadline_cut);
        assert_eq!(run.program.pattern, plain.pattern);
        assert_eq!(run.program.regions, plain.regions);
    }

    /// The degraded fallback is search-free, single-region, coverage
    /// complete, and flagged.
    #[test]
    fn degraded_fallback_is_single_region_and_flagged() {
        let (m, lib) = setup();
        for &(mm, nn, kk) in &[(4096, 1024, 4096), (105, 1024, 544), (1, 1, 1)] {
            let op = Operator::gemm(GemmShape::new(mm, nn, kk));
            let prog = polymerize_degraded(&m, &lib, &op.gemm_view(), op)
                .expect("generated library always has a usable kernel");
            assert_eq!(prog.regions.len(), 1, "degraded plan is one region");
            prog.verify_coverage().expect("coverage");
            assert!(prog.stats.degraded, "degraded plans must say so");
            assert!(prog.predicted_ns.is_finite() && prog.predicted_ns > 0.0);
            // Never better than what the full search would pick.
            let full = compile(&m, &lib, GemmShape::new(mm, nn, kk));
            assert!(
                prog.predicted_ns >= full.predicted_ns * 0.999,
                "degraded ({}) cannot beat the searched plan ({})",
                prog.predicted_ns,
                full.predicted_ns
            );
        }
    }

    /// Escalation rounds are visible in the stats and bounded by the
    /// policy.
    #[test]
    fn budget_exhaustion_escalates_and_is_reported() {
        let m = MachineModel::ascend910a();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        let op = Operator::gemm(GemmShape::new(1234, 777, 512));
        let starved = SearchPolicy {
            node_budget: 16,
            max_escalations: 2,
            escalate_ratio: 1.0,
            ..SearchPolicy::default()
        };
        let prog = polymerize(
            &m,
            &lib,
            &op.gemm_view(),
            op,
            &all_patterns(),
            CostModelKind::Full,
            true,
            &starved,
        );
        assert!(
            prog.stats.budget_exhausted > 0,
            "16 nodes cannot cover IX patterns"
        );
        assert!(prog.stats.escalations > 0 && prog.stats.escalations <= 2);

        let capped = SearchPolicy {
            node_budget: 16,
            max_escalations: 0,
            ..SearchPolicy::default()
        };
        let fixed = polymerize(
            &m,
            &lib,
            &op.gemm_view(),
            op,
            &all_patterns(),
            CostModelKind::Full,
            true,
            &capped,
        );
        assert_eq!(fixed.stats.escalations, 0);
        // The escalated search saw strictly more of the space.
        assert!(prog.stats.strategies_evaluated >= fixed.stats.strategies_evaluated);
    }
}
