//! Split-K post-pass (extension; not part of the paper's pattern set).

use accel_sim::{AllocationPolicy, MachineModel};
use tensor_ir::GemmView;

use crate::offline::MicroKernelLibrary;
use crate::pattern::PatternId;
use crate::plan::{CompiledProgram, Region};

use super::candidates::usable;

/// Split-K post-pass.
///
/// For shapes whose best task grid cannot fill the machine (small `M x N`,
/// huge `K`), replicating the grid `w` ways along the reduction — each task
/// computing `1/w` of `K` into partial outputs combined by a memory-bound
/// reduction pass — multiplies the exploitable parallelism. Tries
/// `w ∈ {2, 4, 8}` over all usable kernels and returns the improved program
/// if any beats the input's predicted cost.
pub fn improve_with_split_k(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    mut program: CompiledProgram,
) -> CompiledProgram {
    if machine.allocation != AllocationPolicy::DynamicHardware || program.regions.len() != 1 {
        return program;
    }
    let (m, n, k) = (view.shape.m, view.shape.n, view.shape.k);
    // The reduction pass reads w fp32 partials and writes the output once;
    // its bandwidth is bounded by how many PEs its 32x32-tile grid covers.
    let reduce_ns = |w: usize| -> f64 {
        let bytes = (w * m * n * 4 + m * n * 2) as f64;
        let tiles = m.div_ceil(32) * n.div_ceil(32);
        let active = tiles.min(machine.num_pes) as f64;
        bytes / (active * machine.pe_bandwidth_bytes_per_ns())
            + machine.launch_overhead_ns
            + machine.task_overhead_ns
    };
    // Gate on a deep reduction: for short K the per-task overheads and the
    // reduction pass eat the gains, and the cost model's error margin
    // dominates (the same K-threshold gating vendor split-K heuristics
    // use).
    if k < 2048 {
        return program;
    }
    // Demand a clear predicted win to absorb cost-model error.
    let mut best_cost = program.predicted_ns * 0.85;
    let mut improved = false;
    for t in usable(machine, library, view) {
        let base_tasks = t.kernel.tasks_for(m, n);
        let instances = t.kernel.instances_for(k);
        for ways in [2usize, 4, 8] {
            if instances < ways || base_tasks * ways > 4 * machine.num_pes {
                continue;
            }
            let waves = (base_tasks * ways).div_ceil(machine.num_pes) as f64;
            let cost = waves * t.perf.predict(instances.div_ceil(ways)) + reduce_ns(ways);
            if cost < best_cost {
                best_cost = cost;
                improved = true;
                program.pattern = PatternId(10);
                program.regions = vec![Region::new(0, m, 0, n, t.kernel)];
                program.split_k = ways;
            }
        }
    }
    if improved {
        program.predicted_ns = best_cost;
    }
    program
}

#[cfg(test)]
mod tests {
    use accel_sim::MachineModel;
    use tensor_ir::{GemmShape, Operator};

    use crate::compiler::{MikPoly, OnlineOptions};
    use crate::offline::OfflineOptions;

    fn compilers() -> (MikPoly, MikPoly) {
        let m = MachineModel::a100();
        let options = OfflineOptions::fast();
        let base = MikPoly::offline(m.clone(), &options);
        let split = MikPoly::offline(m, &options).with_options(OnlineOptions {
            split_k: true,
            ..OnlineOptions::default()
        });
        (base, split)
    }

    #[test]
    fn split_k_fires_on_small_mn_huge_k() {
        let (base, split) = compilers();
        let op = Operator::gemm(GemmShape::new(64, 64, 100_000));
        let plain = base.run(&op);
        let improved = split.run(&op);
        assert_eq!(plain.program.split_k, 1);
        assert!(improved.program.split_k > 1, "split-K should fire");
        assert_eq!(improved.program.pattern.to_string(), "Pattern-X(split-K)");
        assert!(
            improved.report.time_ns < plain.report.time_ns,
            "split-K must pay off: {} vs {}",
            improved.report.time_ns,
            plain.report.time_ns
        );
    }

    #[test]
    fn split_k_stays_off_when_the_grid_already_fills_the_machine() {
        let (_, split) = compilers();
        let op = Operator::gemm(GemmShape::new(4096, 4096, 1024));
        let run = split.run(&op);
        assert_eq!(run.program.split_k, 1, "no reason to split a full grid");
    }

    #[test]
    fn split_k_programs_stay_functionally_correct() {
        use crate::exec::execute_gemm;
        use tensor_ir::{reference_gemm, Tensor};
        let (_, split) = compilers();
        let shape = GemmShape::new(48, 40, 3000);
        let program = split.compile(&Operator::gemm(shape));
        let a = Tensor::random(&[48, 3000], 81);
        let b = Tensor::random(&[3000, 40], 82);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(shape, &a, &b);
        assert!(
            got.approx_eq(&want, 2e-2),
            "max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn reduction_launch_exists_iff_split() {
        let (base, split) = compilers();
        let big_k = Operator::gemm(GemmShape::new(64, 64, 100_000));
        assert!(base.compile(&big_k).reduction_launch().is_none());
        assert!(split.compile(&big_k).reduction_launch().is_some());
    }
}
