//! The knobs of the staged online search, grouped into one serializable
//! policy so `compiler.rs`, `serving.rs`, the conformance gate, and bench
//! ablations exercise the exact same configuration surface (they all flow
//! through `OnlineOptions::search`).

use serde::{Deserialize, Serialize};

/// Configuration of the staged polymerization search. The defaults
/// reproduce the paper's search-narrowing heuristics (Algorithm 1) with
/// the adaptive extensions of this crate; every field was previously a
/// hard-coded constant in the monolithic search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchPolicy {
    /// Kernel-shortlist size for deep patterns (three or more regions).
    /// The shortlist is per shape — kernels ranked by predicted region
    /// efficiency with stratified tile-geometry diversity — not the old
    /// global top-16 by library score.
    pub shortlist: usize,
    /// Search-effort budget of the pruned search, counting admitted
    /// descents (recursion plus leaf cost evaluation). Keeps worst-case
    /// polymerization in the low tens of microseconds (Fig. 12(a)).
    pub node_budget: usize,
    /// Branch-and-bound margin: subtrees whose lower bound is within
    /// `1 - prune_margin` of the incumbent are skipped. The cost model's
    /// own error is several percent, so chasing sub-0.5% improvements
    /// buys nothing.
    pub prune_margin: f64,
    /// Occupancy-aware selection refinement: track the region-efficiency
    /// estimate alongside Eq. 2 and select the strategy the estimator
    /// favors (dynamic machines, full cost model only). This is what
    /// closes the hard-shape oracle gap; disable to reproduce the
    /// pre-refinement selection exactly.
    pub refine: bool,
    /// Escalate only when, at budget exhaustion, the incumbent is worse
    /// than `escalate_ratio` times the shape's admissible lower bound —
    /// a cheap proxy for "the budget, not the library, is the limiter".
    pub escalate_ratio: f64,
    /// Node-budget multiplier applied per escalation round.
    pub escalate_budget_factor: usize,
    /// Deep-pattern shortlist multiplier applied per escalation round.
    pub escalate_shortlist_factor: usize,
    /// Maximum escalation rounds per shape (bounds worst-case latency).
    pub max_escalations: usize,
}

impl Default for SearchPolicy {
    fn default() -> Self {
        Self {
            shortlist: 16,
            node_budget: 600,
            prune_margin: 0.995,
            refine: true,
            escalate_ratio: 1.10,
            escalate_budget_factor: 4,
            escalate_shortlist_factor: 2,
            max_escalations: 2,
        }
    }
}

impl SearchPolicy {
    /// The pre-refactor behaviour: the same budget and shortlist size but
    /// no occupancy-aware refinement and no escalation. Used by the
    /// `oracle-gap-hard` before/after experiment and by tests that pin the
    /// branch-and-bound machinery in isolation.
    pub fn legacy() -> Self {
        Self {
            refine: false,
            max_escalations: 0,
            ..Self::default()
        }
    }

    /// The effective node budget for escalation round `round` (0-based).
    pub(crate) fn budget_for(&self, round: usize) -> usize {
        let factor = self
            .escalate_budget_factor
            .max(1)
            .saturating_pow(round as u32);
        self.node_budget.saturating_mul(factor).max(1)
    }

    /// The effective deep-pattern shortlist size for escalation round
    /// `round`, clamped to the usable-kernel count by the generator.
    pub(crate) fn shortlist_for(&self, round: usize) -> usize {
        let factor = self
            .escalate_shortlist_factor
            .max(1)
            .saturating_pow(round as u32);
        self.shortlist.saturating_mul(factor).max(1)
    }
}
