//! Stage 3: bounding and pruning — the cost accumulator and the admissible
//! lower bound of the branch-and-bound search, extracted so they are unit
//! testable in isolation.
//!
//! The accumulator implements Eq. 2 (`Cost = Σ f_wave · f_pipe`) and its
//! ablations; on machines with compiler-assigned static placement (NPUs)
//! the full model instead estimates the max-min allocation makespan
//! `max(Σ tasks·g / |P|, max g)` — "a max-min static allocation algorithm
//! is employed, enhancing parallel execution" (Section 4). The bound is
//! admissible: it never exceeds the true cost of any completion, so cutting
//! a subtree whose bound meets the incumbent cannot discard the optimum
//! (within the configured margin).

use crate::cost::CostModelKind;
use crate::plan::Region;

/// Accumulated cost of a partial strategy.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Partial {
    /// GPU mode: Σ f_wave · f_pipe. NPU mode: Σ tasks · g_predict (total
    /// core-seconds of work).
    pub sum: f64,
    /// NPU mode: the longest single task (a makespan lower bound).
    pub dmax: f64,
}

/// The shape-specific cost machinery shared by every search stage: the
/// per-kernel `f_pipe` cache plus the constants of the remaining-work
/// bound.
#[derive(Debug)]
pub(crate) struct CostEval<'a> {
    /// Per-kernel `f_pipe` (Eq. 4), parallel to the search's kernel order.
    pub pipe: &'a [f64],
    pub kind: CostModelKind,
    /// Whether the machine executes compiler-assigned static placements
    /// (NPU).
    pub static_alloc: bool,
    pub num_pes: usize,
    /// FLOPs per output row (2·N·K), for the remaining-work bound.
    pub flops_per_row: f64,
    /// The fastest per-task FLOP rate any usable kernel achieves (FLOPs
    /// per ns of `g_predict`); rows not yet covered cannot be computed
    /// faster.
    pub best_rate: f64,
}

impl CostEval<'_> {
    /// Extends a partial cost by one region, using the per-kernel `f_pipe`
    /// cache (O(1) per call).
    pub(crate) fn extend(&self, partial: Partial, region: &Region, kernel_idx: usize) -> Partial {
        let pipe = self.pipe[kernel_idx];
        if self.static_alloc && self.kind == CostModelKind::Full {
            Partial {
                sum: partial.sum + region.tasks() as f64 * pipe,
                dmax: partial.dmax.max(pipe),
            }
        } else {
            let waves = region.tasks().div_ceil(self.num_pes) as f64;
            let add = match self.kind {
                CostModelKind::Full => waves * pipe,
                CostModelKind::WaveOnly => waves,
                CostModelKind::PipeOnly => pipe,
            };
            Partial {
                sum: partial.sum + add,
                dmax: partial.dmax,
            }
        }
    }

    /// The final selection cost of a complete strategy (the additive form;
    /// leaves of the full static-placement model use the exact LPT
    /// makespan instead).
    pub(crate) fn finish(&self, partial: Partial) -> f64 {
        if self.static_alloc && self.kind == CostModelKind::Full {
            (partial.sum / self.num_pes as f64).max(partial.dmax)
        } else {
            partial.sum
        }
    }

    /// An admissible lower bound on any completion of a partial strategy
    /// that still has `rows_remaining` uncovered output rows: even at the
    /// best kernel's rate, the remaining work takes
    /// `rows · 2NK / (best_rate · |P|)`.
    pub(crate) fn lower_bound(&self, partial: Partial, rows_remaining: usize) -> f64 {
        if self.kind != CostModelKind::Full {
            return partial.sum;
        }
        let rem_ns = rows_remaining as f64 * self.flops_per_row / self.best_rate;
        if self.static_alloc {
            ((partial.sum + rem_ns) / self.num_pes as f64).max(partial.dmax)
        } else {
            partial.sum + rem_ns / self.num_pes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{MicroKernel, MicroKernelId};

    fn region(rows: usize, cols: usize) -> Region {
        Region::new(
            0,
            rows,
            0,
            cols,
            MicroKernel::new(MicroKernelId(0), 16, 16, 16, 1),
        )
    }

    fn eval<'a>(pipe: &'a [f64], kind: CostModelKind, static_alloc: bool) -> CostEval<'a> {
        CostEval {
            pipe,
            kind,
            static_alloc,
            num_pes: 4,
            flops_per_row: 2.0 * 32.0 * 16.0,
            best_rate: 100.0,
        }
    }

    #[test]
    fn extend_accumulates_wave_times_pipe_on_dynamic_machines() {
        let pipe = [10.0];
        let e = eval(&pipe, CostModelKind::Full, false);
        // 32x32 region of 16x16 tiles: 4 tasks on 4 PEs = 1 wave.
        let p = e.extend(Partial::default(), &region(32, 32), 0);
        assert_eq!(p.sum, 10.0);
        // 48x48: 9 tasks = 3 waves.
        let p = e.extend(p, &region(48, 48), 0);
        assert_eq!(p.sum, 10.0 + 3.0 * 10.0);
        assert_eq!(e.finish(p), p.sum);
    }

    #[test]
    fn ablated_models_drop_the_other_term() {
        let pipe = [10.0];
        let wave = eval(&pipe, CostModelKind::WaveOnly, false);
        let pipe_only = eval(&pipe, CostModelKind::PipeOnly, false);
        let r = region(48, 48); // 9 tasks = 3 waves
        assert_eq!(wave.extend(Partial::default(), &r, 0).sum, 3.0);
        assert_eq!(pipe_only.extend(Partial::default(), &r, 0).sum, 10.0);
    }

    #[test]
    fn static_full_model_tracks_work_sum_and_longest_task() {
        let pipe = [10.0, 40.0];
        let e = eval(&pipe, CostModelKind::Full, true);
        let p = e.extend(Partial::default(), &region(32, 32), 0); // 4 tasks
        let p = e.extend(p, &region(16, 16), 1); // 1 task
        assert_eq!(p.sum, 4.0 * 10.0 + 40.0);
        assert_eq!(p.dmax, 40.0);
        // Makespan estimate: max(work/|P|, longest task).
        assert_eq!(e.finish(p), (80.0f64 / 4.0).max(40.0));
    }

    #[test]
    fn lower_bound_is_admissible_for_any_single_kernel_completion() {
        // Remaining rows completed by the (only) kernel can never beat the
        // best-rate bound.
        let pipe = [10.0];
        let mut e = eval(&pipe, CostModelKind::Full, false);
        // The kernel computes one 16x16x16 instance per task in 10 ns.
        e.best_rate = 2.0 * 16.0 * 16.0 * 16.0 / 10.0;
        for rows in [16usize, 64, 128, 1000] {
            let completion = e.extend(Partial::default(), &region(rows, 32), 0);
            // Rate of this kernel: flops of a (rows x 32 x 16) region over
            // its cost is at most best_rate by construction below.
            let bound = e.lower_bound(Partial::default(), rows);
            assert!(
                bound <= e.finish(completion) + 1e-9,
                "bound {bound} exceeds completion {}",
                e.finish(completion)
            );
        }
    }

    #[test]
    fn ablated_bound_degenerates_to_the_partial_sum() {
        let pipe = [10.0];
        let e = eval(&pipe, CostModelKind::WaveOnly, false);
        let p = e.extend(Partial::default(), &region(48, 48), 0);
        assert_eq!(e.lower_bound(p, 1000), p.sum);
    }
}
