//! Offline micro-kernel generation (Section 3.3, Algorithm 1 lines 1–6).
//!
//! From a micro-kernel template `K̃`, the offline stage:
//!
//! 1. enumerates candidate tile sizes `{16·i | i ∈ [1, n_gen]}` per
//!    dimension, keeping those that fit `M_local`;
//! 2. auto-tunes a schedule (warp count) per candidate by measuring it on
//!    the device (our simulator in measurement mode);
//! 3. fits a piecewise-linear performance model `g_predict(t)` per
//!    candidate from single-PE runs at `t ∈ [1, n_pred]`;
//! 4. ranks candidates by their average performance over synthetic test
//!    cases with dimension sizes `{2^i | i ∈ [0, n_syn]}` (run through a
//!    Pattern-I program and the fitted model) and retains the top `n_mik`.
//!
//! The ranking score is the mean of per-shape *relative* performance
//! (a kernel's throughput on a shape divided by the best candidate's
//! throughput on that shape). A raw TFLOPS average would be dominated by
//! the largest synthetic shapes and select only large tiles, leaving the
//! online stage nothing to polymerize small dynamic shapes with — the
//! relative score keeps specialists for every shape regime, which is what
//! lets MikPoly "perform exceptionally well for small shapes" (Fig. 6).

use std::borrow::Cow;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use accel_sim::{hash_f64, measure_pipelined_task, MachineModel, TaskSpec, TimingMode};
use mikpoly_telemetry::{span, Telemetry};
use tensor_ir::{DType, GemmShape, GemmView};

use crate::cost::{region_cost, CostModelKind};
use crate::kernel::{MicroKernel, MicroKernelId};
use crate::perf_model::{sample_schedule, PerfModel};
use crate::plan::Region;

/// Which micro-kernel template a library is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TemplateKind {
    /// Plain GEMM.
    #[default]
    Gemm,
    /// Implicit-GEMM convolution: the same loop nest with an im2col gather,
    /// which inflates operand load traffic.
    Conv,
}

impl TemplateKind {
    /// Representative load-traffic multiplier used while tuning kernels for
    /// this template.
    pub fn load_scale(self) -> f64 {
        match self {
            TemplateKind::Gemm => 1.0,
            TemplateKind::Conv => 1.3,
        }
    }
}

/// Hyper-parameters of the offline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineOptions {
    /// Tile sizes are `tile_quantum * {1..=n_gen}` per dimension.
    pub n_gen: usize,
    /// Synthetic ranking shapes use dimensions `{2^i | i ∈ [0, n_syn]}`.
    pub n_syn: u32,
    /// Number of micro-kernels retained after ranking.
    pub n_mik: usize,
    /// Maximum instance count measured when fitting `g_predict`.
    pub n_pred: usize,
    /// Tile quantum (16 in the paper).
    pub tile_quantum: usize,
    /// Template the kernels are tuned for.
    pub template: TemplateKind,
    /// Element type the kernels are tuned for.
    pub dtype: DType,
    /// Measurement-noise seed.
    pub seed: u64,
    /// Linear segments per performance model.
    pub segments: usize,
}

impl OfflineOptions {
    /// The paper's hyper-parameters: `n_gen = 32`, `n_syn = 12`,
    /// `n_mik = 40`, `n_pred = 5120` (Sections 3.3 and 5.4).
    pub fn paper() -> Self {
        Self {
            n_gen: 32,
            n_syn: 12,
            n_mik: 40,
            n_pred: 5120,
            tile_quantum: 16,
            template: TemplateKind::Gemm,
            dtype: DType::F16,
            seed: 0x4D69_6B50,
            segments: 4,
        }
    }

    /// A reduced configuration for unit tests and examples: the same
    /// pipeline with a far smaller search space.
    pub fn fast() -> Self {
        Self {
            n_gen: 8,
            n_syn: 8,
            n_mik: 12,
            n_pred: 512,
            ..Self::paper()
        }
    }

    /// Sets the template kind (builder style).
    #[must_use]
    pub fn with_template(mut self, template: TemplateKind) -> Self {
        self.template = template;
        self
    }

    /// The tuning view: dtype plus the template's load multiplier.
    pub fn view(&self) -> GemmView {
        GemmView {
            shape: GemmShape::new(1, 1, 1),
            dtype: self.dtype,
            load_scale: self.template.load_scale(),
        }
    }
}

/// A micro-kernel together with its fitted performance model and ranking
/// scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedKernel {
    /// The kernel (tile + schedule).
    pub kernel: MicroKernel,
    /// Its `g_predict` model.
    pub perf: PerfModel,
    /// Ranking score: mean per-shape relative performance (in `(0, 1]`)
    /// over the synthetic workloads.
    pub score: f64,
    /// Steady-state single-PE throughput (TFLOPS).
    pub steady_tflops: f64,
}

/// Tile aspect-ratio regime of a micro-kernel (row-heavy, column-heavy, or
/// balanced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileAspect {
    /// `uM ≥ 2·uN`.
    Tall,
    /// `uN ≥ 2·uM`.
    Wide,
    /// Neither dimension dominates.
    Square,
}

/// Tile footprint regime of a micro-kernel (output elements per task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileArea {
    /// `uM·uN ≤ 1024` (up to 32×32).
    Small,
    /// `uM·uN ≤ 4096` (up to 64×64).
    Medium,
    /// Larger tiles.
    Large,
}

/// The tile-geometry stratum of a micro-kernel: aspect regime × footprint
/// regime. The online shortlist keeps at least one kernel per stratum so a
/// truncated deep-pattern search retains geometric diversity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileStratum {
    /// Aspect-ratio regime.
    pub aspect: TileAspect,
    /// Footprint regime.
    pub area: TileArea,
}

impl TileStratum {
    /// Classifies a micro-kernel's tile geometry.
    pub fn of(kernel: &MicroKernel) -> Self {
        let aspect = if kernel.um >= 2 * kernel.un {
            TileAspect::Tall
        } else if kernel.un >= 2 * kernel.um {
            TileAspect::Wide
        } else {
            TileAspect::Square
        };
        let area = match kernel.um * kernel.un {
            0..=1024 => TileArea::Small,
            1025..=4096 => TileArea::Medium,
            _ => TileArea::Large,
        };
        Self { aspect, area }
    }
}

/// A stratified index over a library's kernels by tile geometry, built once
/// offline so the per-shape online shortlist can look up strata in O(1)
/// amortized instead of reclassifying per shape.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TileIndex {
    /// Kernel ids per stratum, in library rank order within each stratum.
    pub strata: Vec<(TileStratum, Vec<MicroKernelId>)>,
}

impl TileIndex {
    /// Builds the index from a ranked kernel list.
    pub fn build(kernels: &[TunedKernel]) -> Self {
        let mut strata: Vec<(TileStratum, Vec<MicroKernelId>)> = Vec::new();
        for t in kernels {
            let s = TileStratum::of(&t.kernel);
            match strata.iter_mut().find(|(stratum, _)| *stratum == s) {
                Some((_, ids)) => ids.push(t.kernel.id),
                None => strata.push((s, vec![t.kernel.id])),
            }
        }
        Self { strata }
    }

    /// The stratum a kernel id belongs to, if indexed.
    pub fn stratum_of(&self, id: MicroKernelId) -> Option<TileStratum> {
        self.strata
            .iter()
            .find(|(_, ids)| ids.contains(&id))
            .map(|(s, _)| *s)
    }

    /// Whether the index holds no kernels (e.g. deserialized from a library
    /// saved before stratification existed).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// The product of the offline stage: the retained micro-kernels, best
/// ranked first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroKernelLibrary {
    /// Machine the library was tuned for.
    pub machine: String,
    /// Hyper-parameters used.
    pub options: OfflineOptions,
    /// Retained kernels, descending ranking score.
    pub kernels: Vec<TunedKernel>,
    /// Tile-geometry index over the retained kernels (empty when loading a
    /// library saved before stratification; rebuilt on demand).
    #[serde(default)]
    pub index: TileIndex,
}

impl MicroKernelLibrary {
    /// Runs the offline stage on (simulated) hardware.
    ///
    /// Candidate tuning is parallelized across OS threads; results are
    /// deterministic regardless of thread count.
    ///
    /// # Panics
    ///
    /// Panics if no candidate tile fits the machine's `M_local`.
    pub fn generate(machine: &MachineModel, options: &OfflineOptions) -> Self {
        Self::generate_with_telemetry(machine, options, &Telemetry::disabled())
    }

    /// Like [`MicroKernelLibrary::generate`], but records `offline.*`
    /// spans (generate / per-chunk tune / rank) and registry counters
    /// into `telemetry`. Identical output either way.
    pub fn generate_with_telemetry(
        machine: &MachineModel,
        options: &OfflineOptions,
        telemetry: &Telemetry,
    ) -> Self {
        let mut generate_span = span!(
            telemetry,
            "offline.generate",
            machine = machine.name.as_str()
        );
        let view = options.view();
        let candidates = enumerate_candidates(machine, options, &view);
        assert!(
            !candidates.is_empty(),
            "no candidate micro-kernel fits M_local on {}",
            machine.name
        );
        generate_span.arg("candidates", candidates.len());

        // Step 2+3: tune a schedule and fit g_predict per candidate, in
        // parallel.
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(16);
        let chunk = candidates.len().div_ceil(threads);
        let tuned: Vec<TunedKernel> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in candidates.chunks(chunk.max(1)) {
                handles.push(scope.spawn(move || {
                    let _tune = span!(telemetry, "offline.tune", candidates = part.len());
                    part.iter()
                        .map(|&(um, un, uk)| tune_candidate(machine, options, &view, um, un, uk))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tuning thread panicked"))
                .collect()
        });

        // Step 4: rank over the synthetic workloads through Pattern-I
        // programs and retain a covering subset of n_mik kernels.
        let shapes = synthetic_shapes(options);
        let mut tuned = {
            let _rank = span!(telemetry, "offline.rank", shapes = shapes.len());
            rank_and_prune(machine, &shapes, tuned, options.n_mik)
        };
        for (i, t) in tuned.iter_mut().enumerate() {
            t.kernel.id = MicroKernelId(i);
        }
        if telemetry.is_enabled() {
            let registry = telemetry.registry();
            registry
                .counter("offline.candidates")
                .add(candidates.len() as u64);
            registry
                .counter("offline.kernels_retained")
                .add(tuned.len() as u64);
        }

        let index = TileIndex::build(&tuned);
        Self {
            machine: machine.name.clone(),
            options: options.clone(),
            kernels: tuned,
            index,
        }
    }

    /// The tile-geometry index over this library's kernels. Libraries
    /// generated by this version carry it; for libraries loaded from older
    /// saved artifacts (empty index) it is built on the fly.
    pub fn stratified_index(&self) -> Cow<'_, TileIndex> {
        if self.index.is_empty() && !self.kernels.is_empty() {
            Cow::Owned(TileIndex::build(&self.kernels))
        } else {
            Cow::Borrowed(&self.index)
        }
    }

    /// Kernels usable for a given operator view on a machine (re-checks the
    /// `M_local` fit under the view's element widths).
    pub fn usable_kernels(&self, machine: &MachineModel, view: &GemmView) -> Vec<&TunedKernel> {
        self.kernels
            .iter()
            .filter(|t| t.kernel.fits(machine, view))
            .collect()
    }

    /// Looks up a tuned kernel by id.
    pub fn get(&self, id: MicroKernelId) -> Option<&TunedKernel> {
        self.kernels.iter().find(|t| t.kernel.id == id)
    }

    /// Serializes the library to a JSON file (the persisted artifact of the
    /// offline stage; the paper compiles kernels once per platform and
    /// reuses them).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a library previously written by [`MicroKernelLibrary::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

fn enumerate_candidates(
    machine: &MachineModel,
    options: &OfflineOptions,
    view: &GemmView,
) -> Vec<(usize, usize, usize)> {
    let q = options.tile_quantum;
    let mut out = Vec::new();
    for i in 1..=options.n_gen {
        for j in 1..=options.n_gen {
            for l in 1..=options.n_gen {
                let (um, un, uk) = (q * i, q * j, q * l);
                let probe = MicroKernel::new(MicroKernelId(0), um, un, uk, 1);
                if probe.task_shape(view).fits(machine) {
                    out.push((um, un, uk));
                }
            }
        }
    }
    out
}

/// Warp-count candidates for a tile: powers of two up to the PE cap, never
/// exceeding one MMA fragment per warp.
fn warp_candidates(machine: &MachineModel, um: usize, un: usize) -> Vec<usize> {
    let max_by_frags = ((um * un) / machine.mma.area()).max(1);
    let mut out = Vec::new();
    let mut w = 1usize;
    while w <= machine.warp_cap_per_pe && w <= max_by_frags {
        out.push(w);
        w *= 2;
    }
    if out.is_empty() {
        out.push(1);
    }
    out
}

fn tune_candidate(
    machine: &MachineModel,
    options: &OfflineOptions,
    view: &GemmView,
    um: usize,
    un: usize,
    uk: usize,
) -> TunedKernel {
    let mode = TimingMode::Measure { seed: options.seed };
    let probe_t = 64.min(options.n_pred).max(2);

    // Schedule micro-search: pick the warp count with the best measured
    // steady throughput.
    let mut best_warps = 1;
    let mut best_ns = f64::INFINITY;
    for w in warp_candidates(machine, um, un) {
        let kernel = MicroKernel::new(MicroKernelId(0), um, un, uk, w);
        let spec = kernel.task_spec(view, probe_t);
        let ns = measure_pipelined_task(machine, &spec, mode);
        if ns < best_ns {
            best_ns = ns;
            best_warps = w;
        }
    }
    let kernel = MicroKernel::new(MicroKernelId(0), um, un, uk, best_warps);

    // Fit g_predict from single-PE measurements.
    let samples: Vec<(usize, f64)> = sample_schedule(options.n_pred)
        .into_iter()
        .map(|t| {
            let spec: TaskSpec = kernel.task_spec(view, t);
            (t, measure_pipelined_task(machine, &spec, mode))
        })
        .collect();
    let perf = PerfModel::fit(&samples, options.segments);

    let steady_tflops = kernel.flops_per_instance() * probe_t as f64 / best_ns / 1e3;
    TunedKernel {
        kernel,
        perf,
        score: 0.0,
        steady_tflops,
    }
}

/// The synthetic ranking shapes: a deterministic ~20% sample of
/// `{2^i}³ for i ∈ [0, n_syn]`.
fn synthetic_shapes(options: &OfflineOptions) -> Vec<GemmShape> {
    let mut shapes = Vec::new();
    for i in 0..=options.n_syn {
        for j in 0..=options.n_syn {
            for l in 0..=options.n_syn {
                if i == j && j == l
                    || hash_f64(options.seed, &[i as u64, j as u64, l as u64]) < 0.18
                {
                    shapes.push(GemmShape::new(1 << i, 1 << j, 1 << l));
                }
            }
        }
    }
    shapes
}

/// `RankAndPrune` (Algorithm 1, line 4): keeps the `n_mik` kernels that
/// together best cover the synthetic workloads.
///
/// Each kernel's performance on each shape (Pattern-I program, fitted
/// model) is normalized to the best candidate on that shape; the retained
/// subset is grown greedily, each step adding the kernel with the largest
/// marginal coverage gain (classic facility-location greedy). A plain
/// top-`n_mik` by *average* score would retain only specialists of the most
/// numerous shape regime and leave other regimes without usable kernels —
/// coverage is what gives the online stage both the large tiles that win
/// `(4096, 4096, 4096)` and the small ones that win `(1, 1000, 4096)`.
fn rank_and_prune(
    machine: &MachineModel,
    shapes: &[GemmShape],
    mut tuned: Vec<TunedKernel>,
    n_mik: usize,
) -> Vec<TunedKernel> {
    // rel[k][s]: kernel k's relative performance on shape s, in (0, 1].
    let mut rel: Vec<Vec<f64>> = Vec::with_capacity(tuned.len());
    for t in &tuned {
        let row: Vec<f64> = shapes
            .iter()
            .map(|s| {
                let region = Region::new(0, s.m, 0, s.n, t.kernel);
                region_cost(CostModelKind::Full, &region, s.k, machine.num_pes, &t.perf)
            })
            .collect();
        rel.push(row);
    }
    for si in 0..shapes.len() {
        let best = rel.iter().map(|row| row[si]).fold(f64::INFINITY, f64::min);
        for row in &mut rel {
            row[si] = best / row[si];
        }
    }
    for (t, row) in tuned.iter_mut().zip(&rel) {
        t.score = row.iter().sum::<f64>() / shapes.len() as f64;
    }

    // Greedy max-coverage selection.
    let mut covered = vec![0.0f64; shapes.len()];
    let mut remaining: Vec<usize> = (0..tuned.len()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n_mik);
    while order.len() < n_mik && !remaining.is_empty() {
        let (pos, &best_k) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                let gain = |k: usize| -> f64 {
                    rel[k]
                        .iter()
                        .zip(&covered)
                        .map(|(r, c)| (r - c).max(0.0))
                        .sum()
                };
                gain(a)
                    .total_cmp(&gain(b))
                    .then(tuned[a].score.total_cmp(&tuned[b].score))
            })
            .expect("remaining is nonempty");
        for (c, r) in covered.iter_mut().zip(&rel[best_k]) {
            *c = c.max(*r);
        }
        order.push(best_k);
        remaining.swap_remove(pos);
    }
    let mut keep: Vec<TunedKernel> = order.into_iter().map(|k| tuned[k].clone()).collect();
    // Present in descending overall score (the order the online search
    // iterates, which also helps its branch-and-bound pruning).
    keep.sort_by(|a, b| b.score.total_cmp(&a.score));
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lib(machine: &MachineModel) -> MicroKernelLibrary {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4; // up to 64^3 tiles: fast enough for debug tests
        MicroKernelLibrary::generate(machine, &o)
    }

    #[test]
    fn generate_retains_at_most_n_mik() {
        let m = MachineModel::a100();
        let lib = small_lib(&m);
        assert!(!lib.kernels.is_empty());
        assert!(lib.kernels.len() <= OfflineOptions::fast().n_mik);
        assert_eq!(lib.machine, m.name);
    }

    #[test]
    fn kernels_sorted_by_rank_and_renumbered() {
        let m = MachineModel::a100();
        let lib = small_lib(&m);
        for (i, t) in lib.kernels.iter().enumerate() {
            assert_eq!(t.kernel.id, MicroKernelId(i));
        }
        for w in lib.kernels.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn all_retained_kernels_fit_local_mem() {
        let m = MachineModel::a100();
        let lib = small_lib(&m);
        let view = lib.options.view();
        for t in &lib.kernels {
            assert!(t.kernel.fits(&m, &view), "{}", t.kernel);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = MachineModel::a100();
        let a = small_lib(&m);
        let b = small_lib(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_round_trip() {
        let m = MachineModel::a100();
        let lib = small_lib(&m);
        let dir = std::env::temp_dir().join("mikpoly-test-lib.json");
        lib.save(&dir).expect("save");
        let loaded = MicroKernelLibrary::load(&dir).expect("load");
        assert_eq!(lib, loaded);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn warp_candidates_capped_by_fragments() {
        let m = MachineModel::a100();
        // A 16x16 tile has 2 MMA fragments (16x8 each): at most 2 warps.
        assert_eq!(warp_candidates(&m, 16, 16), vec![1, 2]);
        // A big tile can use the full cap.
        assert_eq!(warp_candidates(&m, 256, 128), vec![1, 2, 4, 8]);
    }

    #[test]
    fn synthetic_shapes_include_diagonal() {
        let o = OfflineOptions::fast();
        let shapes = synthetic_shapes(&o);
        for i in 0..=o.n_syn {
            let d = 1usize << i;
            assert!(shapes.contains(&GemmShape::new(d, d, d)));
        }
    }

    #[test]
    fn conv_template_kernels_account_for_gather() {
        let m = MachineModel::a100();
        let mut o = OfflineOptions::fast().with_template(TemplateKind::Conv);
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        assert!(!lib.kernels.is_empty());
        assert_eq!(lib.options.template, TemplateKind::Conv);
    }

    #[test]
    fn npu_library_generates_single_warp_kernels() {
        let m = MachineModel::ascend910a();
        let lib = small_lib(&m);
        assert!(lib.kernels.iter().all(|t| t.kernel.warps == 1));
    }
}
