//! Micro-costs of the analytic machinery: `g_predict` fitting and
//! evaluation, Eq. 2 region costs, and the level-based LPT makespan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mikpoly::{
    lpt_makespan, region_cost, sample_schedule, CostModelKind, MicroKernel, MicroKernelId,
    PerfModel, Region,
};

fn affine_samples(n_pred: usize) -> Vec<(usize, f64)> {
    sample_schedule(n_pred)
        .into_iter()
        .map(|t| (t, 480.0 + 151.3 * t as f64))
        .collect()
}

fn bench_perf_model(c: &mut Criterion) {
    let samples = affine_samples(5120);
    c.bench_function("cost/perf-model-fit", |b| {
        b.iter(|| black_box(PerfModel::fit(black_box(&samples), 4)));
    });
    let model = PerfModel::fit(&samples, 4);
    c.bench_function("cost/perf-model-predict", |b| {
        b.iter(|| black_box(model.predict(black_box(128))));
    });
}

fn bench_region_cost(c: &mut Criterion) {
    let samples = affine_samples(5120);
    let model = PerfModel::fit(&samples, 4);
    let kernel = MicroKernel::new(MicroKernelId(0), 256, 128, 32, 8);
    let region = Region::new(0, 4096, 0, 1024, kernel);
    c.bench_function("cost/eq2-region-cost", |b| {
        b.iter(|| {
            black_box(region_cost(
                CostModelKind::Full,
                black_box(&region),
                4096,
                108,
                &model,
            ))
        });
    });
}

fn bench_lpt_makespan(c: &mut Criterion) {
    // Four groups, tens of thousands of tasks: the level-based makespan
    // must stay O(groups^2) regardless of counts.
    let groups = [
        (1200.0, 9600usize),
        (800.0, 12_000),
        (400.0, 30_000),
        (90.0, 4_000),
    ];
    c.bench_function("cost/lpt-makespan-4-groups-55k-tasks", |b| {
        b.iter(|| black_box(lpt_makespan(black_box(&groups), 32)));
    });
}

criterion_group!(
    benches,
    bench_perf_model,
    bench_region_cost,
    bench_lpt_makespan
);
criterion_main!(benches);
