//! Custom bench target (no Criterion harness): regenerates every table and
//! figure of the paper in quick (subsampled) mode, so `cargo bench
//! --workspace` output contains the paper-vs-measured headline numbers.
//!
//! For the full-population run, use the experiments binary:
//!
//! ```text
//! cargo run --release -p mikpoly-bench --bin experiments -- all
//! ```

use mikpoly_bench::experiments::registry;
use mikpoly_bench::{Config, Harness};

fn main() {
    // `cargo bench -- --list` and test-mode invocations must not run the
    // whole suite.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("paper_experiments: benchmark");
        return;
    }

    let harness = Harness::new(Config::quick());
    println!("== paper experiments (quick mode: every 25th case of the big suites) ==\n");
    let total = std::time::Instant::now();
    for (id, runner) in registry() {
        let start = std::time::Instant::now();
        let reports = runner(&harness);
        println!("-- {id} ({:.1?}) --", start.elapsed());
        for report in &reports {
            for (label, value) in &report.headlines {
                println!("   {label}: {value:.3}");
            }
            if let Err(e) = report.write_csv(&harness.config.results_dir) {
                eprintln!("   (csv write failed: {e})");
            }
        }
        println!();
    }
    println!("total: {:.1?}", total.elapsed());
}
