//! Online polymerization latency — the cost the paper reports at ~2 us per
//! shape (Section 5.3.1) and breaks down in Fig. 12(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use accel_sim::MachineModel;
use mikpoly::{MikPoly, OfflineOptions, OnlineOptions};
use mikpoly_bench::{Config, Harness};
use tensor_ir::{GemmShape, Operator};

fn uncached_compiler(machine: MachineModel) -> MikPoly {
    let harness = Harness::new(Config::full());
    MikPoly::with_library(
        machine.clone(),
        harness.library(&machine, mikpoly::TemplateKind::Gemm),
    )
    .with_options(OnlineOptions {
        cache: false,
        ..OnlineOptions::default()
    })
}

fn bench_gpu_polymerization(c: &mut Criterion) {
    let compiler = uncached_compiler(MachineModel::a100());
    let mut group = c.benchmark_group("polymerize/gpu");
    group.sample_size(30);
    for (label, m, n, k) in [
        ("small", 64usize, 256usize, 256usize),
        ("case-study", 4096, 1024, 4096),
        ("skinny", 105, 1024, 12544),
        ("large", 10752, 8192, 1024),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        group.bench_with_input(BenchmarkId::from_parameter(label), &op, |b, op| {
            b.iter(|| black_box(compiler.compile(black_box(op))));
        });
    }
    group.finish();
}

fn bench_npu_polymerization(c: &mut Criterion) {
    let compiler = uncached_compiler(MachineModel::ascend910a());
    let mut group = c.benchmark_group("polymerize/npu-9-patterns");
    group.sample_size(30);
    for (label, m, n, k) in [
        ("small", 64usize, 256usize, 256usize),
        ("case-study", 4096, 1024, 4096),
        ("flat-landscape", 3600, 288, 1296),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        group.bench_with_input(BenchmarkId::from_parameter(label), &op, |b, op| {
            b.iter(|| black_box(compiler.compile(black_box(op))));
        });
    }
    group.finish();
}

fn bench_oracle_vs_model(c: &mut Criterion) {
    // The Fig. 12(b) contrast: cost-model search (~us) vs exhaustive
    // simulation (~s). Oracle is benchmarked at a reduced library size to
    // keep `cargo bench` bounded.
    let mut options = OfflineOptions::fast();
    options.n_gen = 3;
    let compiler = MikPoly::offline(MachineModel::a100(), &options).with_options(OnlineOptions {
        cache: false,
        ..OnlineOptions::default()
    });
    let op = Operator::gemm(GemmShape::new(777, 512, 384));
    let mut group = c.benchmark_group("polymerize/model-vs-oracle");
    group.sample_size(10);
    group.bench_function("cost-model", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&op))))
    });
    group.bench_function("oracle-exhaustive", |b| {
        b.iter(|| black_box(compiler.compile_oracle(black_box(&op))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gpu_polymerization,
    bench_npu_polymerization,
    bench_oracle_vs_model
);
criterion_main!(benches);
