//! Offline micro-kernel generation cost. On the paper's testbed this takes
//! hours (real auto-tuning on hardware); on the simulator it is the full
//! algorithm against closed-form measurements, so it lands in milliseconds
//! and `cargo bench` can afford the paper-scale configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use accel_sim::MachineModel;
use mikpoly::{MicroKernelLibrary, OfflineOptions, TemplateKind};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/generate");
    group.sample_size(10);
    for (label, mut options) in [
        ("fast", OfflineOptions::fast()),
        ("paper", OfflineOptions::paper()),
    ] {
        options.template = TemplateKind::Gemm;
        group.bench_with_input(BenchmarkId::from_parameter(label), &options, |b, o| {
            let machine = MachineModel::a100();
            b.iter(|| black_box(MicroKernelLibrary::generate(&machine, o)));
        });
    }
    group.finish();
}

fn bench_npu_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/generate-npu");
    group.sample_size(10);
    let options = OfflineOptions::paper();
    group.bench_function("paper", |b| {
        let machine = MachineModel::ascend910a();
        b.iter(|| black_box(MicroKernelLibrary::generate(&machine, &options)));
    });
    group.finish();
}

fn bench_library_io(c: &mut Criterion) {
    let machine = MachineModel::a100();
    let lib = MicroKernelLibrary::generate(&machine, &OfflineOptions::paper());
    let path = std::env::temp_dir().join("mikpoly-bench-lib.json");
    lib.save(&path).expect("save");
    c.bench_function("offline/load-cached-library", |b| {
        b.iter(|| black_box(MicroKernelLibrary::load(&path).expect("load")));
    });
    let _ = std::fs::remove_file(path);
}

criterion_group!(
    benches,
    bench_generation,
    bench_npu_generation,
    bench_library_io
);
criterion_main!(benches);
