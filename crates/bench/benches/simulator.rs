//! Accelerator-simulator throughput: the substrate must stay fast enough
//! to play "hardware" for thousands of experiment cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use accel_sim::{simulate, Launch, MachineModel, TaskGroup, TaskShape, TaskSpec, TimingMode};

fn bench_homogeneous_grids(c: &mut Criterion) {
    let machine = MachineModel::a100();
    let spec = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 32), 8, 32);
    let mut group = c.benchmark_group("simulator/homogeneous-grid");
    group.sample_size(20);
    for tasks in [108usize, 1_080, 10_800, 108_000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            let launch = Launch::grid(spec, tasks);
            b.iter(|| black_box(simulate(&machine, &launch, TimingMode::Evaluate)));
        });
    }
    group.finish();
}

fn bench_polymerized_launch(c: &mut Criterion) {
    // A mixed two-kernel launch, as polymerization emits (the Fig. 15
    // GEMM-AB structure).
    let machine = MachineModel::a100();
    let a = TaskGroup::new(
        TaskSpec::new(TaskShape::gemm_tile_f16(256, 128, 32), 8, 128),
        96,
    );
    let b = TaskGroup::new(
        TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 64), 4, 64),
        256,
    );
    let launch = Launch::from_groups(vec![a, b]);
    c.bench_function("simulator/mixed-kernel-launch", |bch| {
        bch.iter(|| black_box(simulate(&machine, &launch, TimingMode::Evaluate)));
    });
}

fn bench_npu_static_schedule(c: &mut Criterion) {
    let machine = MachineModel::ascend910a();
    let spec = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
    let assignment: Vec<usize> = (0..2048).map(|i| i % machine.num_pes).collect();
    let launch = Launch::from_groups(vec![TaskGroup::with_assignment(spec, assignment)]);
    c.bench_function("simulator/npu-static-2048-tasks", |b| {
        b.iter(|| black_box(simulate(&machine, &launch, TimingMode::Evaluate)));
    });
}

criterion_group!(
    benches,
    bench_homogeneous_grids,
    bench_polymerized_launch,
    bench_npu_static_schedule
);
criterion_main!(benches);
