//! Shared experiment setup: machines, cached micro-kernel libraries, and
//! the harness configuration.
//!
//! The offline stage is expensive by design ("approximately 6 hours for
//! GEMM on GPUs" on real hardware; seconds on the simulator) and its
//! product is reusable — "these micro-kernels ... do not require
//! re-generation for the same operator on the same platform". Libraries
//! are therefore cached on disk under `target/mikpoly-libs/`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use accel_sim::MachineModel;
use mikpoly::{MicroKernelLibrary, MikPoly, OfflineOptions, TemplateKind};

/// The workspace root, so artifact paths are stable regardless of the
/// working directory (`cargo bench` runs with the crate as cwd).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf()
}

/// Global harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Keep only every `stride`-th case of the big suites (1 = full run).
    pub stride: usize,
    /// Directory for CSV artifacts.
    pub results_dir: PathBuf,
    /// Offline options used for all MikPoly compilers.
    pub offline: OfflineOptions,
}

impl Config {
    /// The full paper-scale configuration.
    pub fn full() -> Self {
        Self {
            stride: 1,
            results_dir: workspace_root().join("results"),
            offline: OfflineOptions::paper(),
        }
    }

    /// A subsampled configuration for smoke runs and `cargo bench`.
    pub fn quick() -> Self {
        Self {
            stride: 25,
            ..Self::full()
        }
    }

    /// Applies the stride to a case list.
    pub fn subsample<T: Clone>(&self, cases: &[T]) -> Vec<T> {
        cases.iter().step_by(self.stride.max(1)).cloned().collect()
    }
}

/// Lazily-constructed, disk-cached compilers for every (machine, template)
/// pair the experiments need.
pub struct Harness {
    /// Configuration.
    pub config: Config,
}

impl Harness {
    /// Creates a harness.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    fn cache_path(machine: &MachineModel, options: &OfflineOptions) -> PathBuf {
        let dir = workspace_root().join("target/mikpoly-libs");
        dir.join(format!(
            "{}-{:?}-g{}s{}m{}p{}.json",
            machine.name,
            options.template,
            options.n_gen,
            options.n_syn,
            options.n_mik,
            options.n_pred
        ))
    }

    /// Generates (or loads from cache) the micro-kernel library for a
    /// machine/template pair.
    pub fn library(&self, machine: &MachineModel, template: TemplateKind) -> MicroKernelLibrary {
        let options = self.config.offline.clone().with_template(template);
        let path = Self::cache_path(machine, &options);
        if let Ok(lib) = MicroKernelLibrary::load(&path) {
            if lib.machine == machine.name && lib.options == options {
                return lib;
            }
        }
        let lib = MicroKernelLibrary::generate(machine, &options);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = lib.save(&path);
        lib
    }

    /// A MikPoly compiler for a machine/template pair.
    pub fn compiler(&self, machine: &MachineModel, template: TemplateKind) -> Arc<MikPoly> {
        Arc::new(MikPoly::with_library(
            machine.clone(),
            self.library(machine, template),
        ))
    }

    /// The Tensor-Core GPU.
    pub fn gpu(&self) -> MachineModel {
        MachineModel::a100()
    }

    /// The CUDA-core GPU (Fig. 10 / Table 5).
    pub fn gpu_cuda_cores(&self) -> MachineModel {
        MachineModel::a100_cuda_cores()
    }

    /// The NPU.
    pub fn npu(&self) -> MachineModel {
        MachineModel::ascend910a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_subsamples() {
        let c = Config::quick();
        let cases: Vec<usize> = (0..100).collect();
        let sub = c.subsample(&cases);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub[0], 0);
    }

    #[test]
    fn full_config_keeps_everything() {
        let c = Config::full();
        let cases: Vec<usize> = (0..10).collect();
        assert_eq!(c.subsample(&cases).len(), 10);
    }

    #[test]
    fn library_cache_round_trips() {
        let mut config = Config::quick();
        config.offline = OfflineOptions::fast();
        config.offline.n_gen = 3;
        let h = Harness::new(config);
        let machine = h.gpu();
        let first = h.library(&machine, TemplateKind::Gemm);
        let second = h.library(&machine, TemplateKind::Gemm);
        assert_eq!(first, second);
    }
}
