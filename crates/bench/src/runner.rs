//! End-to-end model execution over operator backends.

use mikpoly_baselines::{Backend, BackendError};
use mikpoly_models::ModelGraph;

/// Number of measured runs the paper averages per configuration ("we warm
/// up experiments and average execution times over 20 runs"). One-time
/// host work — MikPoly's polymerization, a library's kernel selection — is
/// paid on the first of those runs and amortized across the average, which
/// is how the reported end-to-end latency "encompasses ... the runtime
/// overhead attributed to MikPoly's cost model" without being dominated by
/// it.
pub const RUNS_AVERAGED: f64 = 20.0;

/// Latency of one forward pass: device time for every operator occurrence
/// plus each backend's host overhead, amortized per [`RUNS_AVERAGED`] and
/// paid once per *unique* shape (runtimes and MikPoly alike compile/select
/// once and reuse the program for repeated layers).
///
/// Routes convolutions to `conv_backend` and (batched) GEMMs to
/// `gemm_backend` — the split vendor libraries (cuDNN vs cuBLAS) and
/// MikPoly's per-template kernel libraries both want.
///
/// # Errors
///
/// Propagates the first backend error (e.g. a DietCode invalid run).
pub fn model_latency_ns(
    graph: &ModelGraph,
    gemm_backend: &dyn Backend,
    conv_backend: &dyn Backend,
) -> Result<f64, BackendError> {
    let mut total = 0.0;
    for op in &graph.ops {
        let backend = match op.operator.kind() {
            "conv2d" => conv_backend,
            _ => gemm_backend,
        };
        let run = backend.run(&op.operator)?;
        total += run.report.time_ns * op.count as f64 + run.overhead_ns / RUNS_AVERAGED;
    }
    Ok(total)
}

/// Latency across a sequence of graphs (e.g. prefill + decode blocks).
///
/// # Errors
///
/// Propagates the first backend error.
pub fn graphs_latency_ns(
    graphs: &[ModelGraph],
    gemm_backend: &dyn Backend,
    conv_backend: &dyn Backend,
) -> Result<f64, BackendError> {
    graphs
        .iter()
        .map(|g| model_latency_ns(g, gemm_backend, conv_backend))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::MachineModel;
    use mikpoly_baselines::VendorLibrary;
    use mikpoly_models::TransformerConfig;

    #[test]
    fn longer_sequences_cost_more() {
        let vendor = VendorLibrary::cublas(MachineModel::a100());
        let bert = TransformerConfig::bert_base();
        let short = model_latency_ns(&bert.graph(1, 32), &vendor, &vendor).expect("run");
        let long = model_latency_ns(&bert.graph(1, 512), &vendor, &vendor).expect("run");
        assert!(long > 2.0 * short);
    }

    #[test]
    fn graphs_latency_sums() {
        let vendor = VendorLibrary::cublas(MachineModel::a100());
        let bert = TransformerConfig::bert_base();
        let g = bert.graph(1, 64);
        let one = model_latency_ns(&g, &vendor, &vendor).expect("run");
        let two = graphs_latency_ns(&[g.clone(), g], &vendor, &vendor).expect("run");
        assert!((two - 2.0 * one).abs() < 1e-6);
    }
}
