//! Experiment reporting: aligned console tables, CSV artifacts, and
//! summary statistics.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A rendered experiment: a title, column headers, stringly-typed rows, and
/// headline metrics recorded into `EXPERIMENTS.md`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (`"fig6"`, `"tab8"`, ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Headline metrics: (label, value) pairs compared against the paper.
    pub headlines: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            headlines: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Records a headline metric.
    pub fn headline(&mut self, label: impl Into<String>, value: f64) {
        self.headlines.push((label.into(), value));
    }

    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for (label, value) in &self.headlines {
            let _ = writeln!(out, ">> {label}: {value:.3}");
        }
        out
    }

    /// Writes the report as CSV into `dir/<id>.csv` and returns the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_csv(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.csv", self.id));
        let mut csv = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

/// Geometric mean of positive values (the standard speedup aggregate).
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive entry.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of nothing");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Maximum.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn max(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "max of nothing");
    values.iter().copied().fold(f64::MIN, f64::max)
}

/// Formats a speedup as `1.23x`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let v = geomean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "toy", &["name", "value"]);
        r.push_row(vec!["a".into(), "1.0".into()]);
        r.push_row(vec!["long-name".into(), "2.0".into()]);
        let s = r.render();
        assert!(s.contains("toy"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t", "toy", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("mikpoly-report-test");
        let mut r = Report::new("csv-test", "t", &["a"]);
        r.push_row(vec!["x,y".into()]);
        let path = r.write_csv(&dir).expect("write");
        let content = std::fs::read_to_string(path).expect("read");
        assert!(content.contains("\"x,y\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(fmt_speedup(1.492), "1.49x");
    }
}
