//! Extension: graph-level co-launching (toward the paper's Section 7
//! "combination of MikPoly with graph-level optimization techniques").
//!
//! Branchy CNNs (GoogLeNet's inception modules, ResNet's shortcut
//! projections) contain mutually independent small convolutions whose
//! individual grids cannot fill the machine. Because a polymerized program
//! is just a set of task groups, *co-launching* a dataflow stage — merging
//! the task groups of all its compiled programs into one launch — is free
//! composition: the hardware scheduler interleaves them, recovering the
//! parallelism each small operator leaves on the table.
//!
//! The wave planning is shared with the serving dispatcher
//! ([`mikpoly::serving::colaunch`]): a stage's programs are packed into
//! waves by warp-slot demand against the machine's capacity, so this
//! offline study and online batched serving cannot drift apart on what
//! "co-launch" means.

use accel_sim::{simulate, TimingMode};
use mikpoly::serving::colaunch::{merge_launches, plan_waves, warp_capacity, warp_slots};
use mikpoly::TemplateKind;
use mikpoly_models::CnnConfig;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs the co-launch study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let gemm = h.compiler(&gpu, TemplateKind::Gemm);
    let conv = h.compiler(&gpu, TemplateKind::Conv);
    let compiler_for = |op: &tensor_ir::Operator| match op.kind() {
        "conv2d" => &conv,
        _ => &gemm,
    };

    let mut report = Report::new(
        "ext-colaunch",
        "Co-launching independent operators of a dataflow stage (extension)",
        &[
            "model",
            "config",
            "stages",
            "sequential (ms)",
            "co-launched (ms)",
            "speedup",
        ],
    );
    let sweep: &[(usize, usize)] = &[(1, 224), (4, 224), (1, 96), (8, 320)];
    let capacity = warp_capacity(&gpu);
    let mut per_model: Vec<(String, Vec<f64>)> = Vec::new();
    for cfg in [CnnConfig::googlenet(), CnnConfig::resnet18()] {
        let mut speedups = Vec::new();
        for &(batch, resolution) in sweep {
            let graph = cfg.graph(batch, resolution);
            let mut sequential = 0.0;
            let mut colaunched = 0.0;
            for stage in graph.stages() {
                let mut launches = Vec::new();
                for op in &stage {
                    let compiler = compiler_for(&op.operator);
                    let program = compiler.compile(&op.operator);
                    sequential += compiler.simulate(&program).time_ns * op.count as f64;
                    launches.push(program.launch_dynamic());
                }
                // Pack the stage into waves under the machine's warp-slot
                // capacity (the serving planner's resource-fit rule), then
                // time each merged wave.
                let demands: Vec<u64> = launches.iter().map(warp_slots).collect();
                for wave in plan_waves(&demands, capacity) {
                    let launch = merge_launches(wave.iter().map(|&i| &launches[i]));
                    colaunched += simulate(&gpu, &launch, TimingMode::Evaluate).time_ns;
                }
            }
            speedups.push(sequential / colaunched);
            report.push_row(vec![
                cfg.name.clone(),
                format!("b{batch} r{resolution}"),
                graph.stages().len().to_string(),
                format!("{:.3}", sequential / 1e6),
                format!("{:.3}", colaunched / 1e6),
                format!("{:.2}", sequential / colaunched),
            ]);
        }
        per_model.push((cfg.name.clone(), speedups));
    }
    for (name, speedups) in &per_model {
        report.headline(
            format!("{name}: mean co-launch speedup over sequential MikPoly"),
            mean(speedups),
        );
    }
    vec![report]
}
