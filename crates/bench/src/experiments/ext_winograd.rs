//! Extension (the paper's Section 7 future work): routing unit-stride 3x3
//! convolutions through the Winograd `F(2x2, 3x3)` transform domain instead
//! of implicit GEMM.
//!
//! The transform-domain GEMMs perform 16/36 of the direct multiplies but
//! read roughly twice the traffic per FLOP, so Winograd wins on
//! compute-bound layers and loses on memory-bound ones — the crossover this
//! experiment maps across the Table 4 suite's 3x3 stride-1 cases.

use mikpoly::{ConvAlgorithm, Engine, TemplateKind};
use mikpoly_baselines::{Backend, MikPolyBackend};
use tensor_ir::{winograd_applicable, Operator};

use crate::report::{geomean, mean};
use crate::setup::Harness;
use crate::Report;

/// Runs the Winograd extension study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let im2col = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Conv));
    // The transform-domain GEMMs have plain-GEMM access patterns.
    let winograd = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));

    let mut report = Report::new(
        "ext-winograd",
        "Winograd F(2x2,3x3) vs implicit GEMM on eligible Table 4 cases (extension)",
        &[
            "model",
            "cases",
            "mean speedup",
            "geomean",
            "wins",
            "losses",
        ],
    );
    let cases: Vec<_> = h
        .config
        .subsample(&mikpoly_workloads::conv_suite())
        .into_iter()
        .filter(|c| winograd_applicable(&c.shape))
        .collect();

    let mut by_model: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut all = Vec::new();
    for case in &cases {
        let direct = im2col
            .run(&Operator::conv2d(case.shape))
            .expect("conv runs")
            .report
            .time_ns;
        let wino = winograd
            .run(&Operator::conv2d_winograd(case.shape))
            .expect("winograd runs")
            .report
            .time_ns;
        let speedup = direct / wino;
        by_model.entry(case.model).or_default().push(speedup);
        all.push(speedup);
    }
    for (model, speedups) in &by_model {
        let wins = speedups.iter().filter(|&&s| s > 1.0).count();
        report.push_row(vec![
            model.to_string(),
            speedups.len().to_string(),
            format!("{:.2}", mean(speedups)),
            format!("{:.2}", geomean(speedups)),
            wins.to_string(),
            (speedups.len() - wins).to_string(),
        ]);
    }
    report.headline(
        "mean Winograd speedup on eligible convs (theory caps at 2.25)",
        mean(&all),
    );
    report.headline(
        "fraction of eligible convs where Winograd wins",
        all.iter().filter(|&&s| s > 1.0).count() as f64 / all.len() as f64,
    );

    // Algorithm selection: the engine compiles both lowerings and lets the
    // cost model pick per shape — it should track the per-case best.
    let engine = Engine::from_compilers(
        gpu.clone(),
        h.compiler(&gpu, TemplateKind::Gemm),
        h.compiler(&gpu, TemplateKind::Conv),
    )
    .with_conv_algorithm(ConvAlgorithm::CostBased);
    let mut selection_vs_best = Vec::new();
    let mut picked_winograd = 0usize;
    for case in &cases {
        let direct = im2col
            .run(&Operator::conv2d(case.shape))
            .expect("conv runs")
            .report
            .time_ns;
        let wino = winograd
            .run(&Operator::conv2d_winograd(case.shape))
            .expect("winograd runs")
            .report
            .time_ns;
        let picked = engine.run_operator(&Operator::conv2d(case.shape));
        if picked.dispatched.kind() == "conv2d-winograd" {
            picked_winograd += 1;
        }
        selection_vs_best.push(direct.min(wino) / picked.run.report.time_ns);
    }
    report.headline(
        "cost-based selection vs per-case best (1.0 = always right)",
        mean(&selection_vs_best),
    );
    report.headline(
        "fraction of eligible convs dispatched to Winograd by the engine",
        picked_winograd as f64 / cases.len() as f64,
    );
    vec![report]
}
