//! Table 8: the four Llama2-13b projection GEMMs (TP = 4) across 52 test
//! cases with a dynamic token dimension, vs cuBLAS. Paper headlines: 1.09x
//! (qkv_proj), 1.24x (o_proj), 1.21x (ffn up), 1.08x (ffn down).

use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, MikPolyBackend, VendorLibrary};
use mikpoly_models::LlamaConfig;
use mikpoly_workloads::llama_sweep;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs Table 8.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let cublas = VendorLibrary::cublas(gpu.clone());
    let mik = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let cfg = LlamaConfig::llama2_13b_tp4();

    // The 52 unique cases: distinct token counts from the (batch, seq)
    // grid, per projection.
    let mut tokens: Vec<usize> = llama_sweep().into_iter().map(|(b, s)| b * s).collect();
    tokens.sort_unstable();
    tokens.dedup();

    let mut report = Report::new(
        "tab8",
        "Llama2-13b projection GEMMs vs cuBLAS (TP = 4)",
        &[
            "layer",
            "M",
            "N* range",
            "K",
            "mean speedup",
            "max speedup",
            "#cases",
        ],
    );
    for (idx, proto) in cfg.projection_ops(1).iter().enumerate() {
        let mut speedups = Vec::new();
        let (mut n_dim, mut k_dim) = (0usize, 0usize);
        for &t in &tokens {
            let op = cfg.projection_ops(t)[idx].operator;
            let s = op.gemm_view().shape;
            n_dim = s.n;
            k_dim = s.k;
            // Warmed-up per-run times, as in the operator suites.
            let base = cublas.run(&op).expect("vendor runs");
            let m = mik.run(&op).expect("mikpoly runs");
            speedups.push(base.report.time_ns / m.report.time_ns);
        }
        let paper = ["1.09", "1.24", "1.21", "1.08"][idx];
        report.push_row(vec![
            proto.name.clone(),
            n_dim.to_string(),
            format!("[1, {}]", tokens.last().copied().unwrap_or(0)),
            k_dim.to_string(),
            format!("{:.2}", mean(&speedups)),
            format!("{:.2}", crate::report::max(&speedups)),
            tokens.len().to_string(),
        ]);
        report.headline(
            format!("{} mean speedup (paper: {paper})", proto.name),
            mean(&speedups),
        );
    }
    report.headline("unique test cases (paper: 52)", (tokens.len() * 4) as f64);
    vec![report]
}
