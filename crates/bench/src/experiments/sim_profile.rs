//! Extension: simulator self-profiling — where the event loop's host
//! time goes.
//!
//! Every experiment in this suite is bottlenecked on `accel_sim`'s event
//! loop, so before optimizing it we need attribution: how much host time
//! the setup, admission, completion-pick, and advance phases each cost,
//! and how the loop's iteration count relates to the wave structure. The
//! profiled run uses a relayed lap timer (one clock read per phase
//! boundary), so the per-phase attribution sums to the run's wall time
//! by construction — the experiment asserts the two agree within 2% and
//! writes `results/sim-profile.json` as the optimization baseline.

use std::time::Instant;

use accel_sim::{simulate_profiled, Launch, TaskGroup, TaskShape, TaskSpec, TimingMode};

use crate::setup::Harness;
use crate::Report;

fn spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
    TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
}

/// Runs the simulator self-profiling study and writes
/// `results/sim-profile.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let m = h.gpu();
    let scale = if h.config.stride > 1 { 4 } else { 16 };
    let cases = vec![
        (
            "full-waves-plus-tail",
            Launch::grid(spec(256, 128, 32, 8, 64), scale * m.num_pes + 1),
        ),
        (
            "co-resident-small-tiles",
            Launch::grid(spec(64, 64, 64, 4, 32), 2 * scale * m.num_pes),
        ),
        (
            "mixed-groups",
            Launch::from_groups(vec![
                TaskGroup::new(spec(256, 128, 32, 8, 64), scale * 96),
                TaskGroup::new(spec(64, 64, 64, 4, 32), scale * 256),
            ]),
        ),
    ];

    let mut report = Report::new(
        "sim-profile",
        "accel-sim event-loop self-profile (extension)",
        &[
            "workload",
            "tasks",
            "iterations",
            "wave closes",
            "setup (%)",
            "admission (%)",
            "pick (%)",
            "advance (%)",
            "wall (us)",
        ],
    );

    let mut rows_json = Vec::new();
    let mut total_wall_ns = 0u64;
    let mut total_attributed_ns = 0u64;
    let mut total_tasks = 0usize;
    for (name, launch) in &cases {
        let wall = Instant::now();
        let (sim, profile) = simulate_profiled(&m, launch, TimingMode::Evaluate);
        let wall_ns = wall.elapsed().as_nanos() as u64;
        let attributed = profile.attributed_ns();
        total_wall_ns += wall_ns;
        total_attributed_ns += attributed;
        total_tasks += sim.grid_size;
        let pct = |ns: u64| 100.0 * ns as f64 / attributed.max(1) as f64;
        report.push_row(vec![
            (*name).to_string(),
            sim.grid_size.to_string(),
            profile.iterations.to_string(),
            profile.wave_closes.to_string(),
            format!("{:.1}", pct(profile.setup_ns)),
            format!("{:.1}", pct(profile.admission_ns)),
            format!("{:.1}", pct(profile.pick_ns)),
            format!("{:.1}", pct(profile.advance_ns)),
            format!("{:.1}", wall_ns as f64 / 1e3),
        ]);
        rows_json.push(serde_json::json!({
            "workload": *name,
            "tasks": sim.grid_size,
            "device_ns": sim.device_ns,
            "iterations": profile.iterations,
            "admissions": profile.admissions,
            "wave_closes": profile.wave_closes,
            "setup_ns": profile.setup_ns,
            "admission_ns": profile.admission_ns,
            "pick_ns": profile.pick_ns,
            "advance_ns": profile.advance_ns,
            "finalize_ns": profile.finalize_ns,
            "attributed_ns": attributed,
            "wall_ns": wall_ns,
        }));
    }

    // The lap timer is relayed, never reset, so the phase attribution
    // must account for the whole run: any larger gap means a phase of
    // the hot loop escaped instrumentation.
    let coverage = total_attributed_ns as f64 / total_wall_ns.max(1) as f64;
    assert!(
        (coverage - 1.0).abs() < 0.02,
        "per-phase attribution covers {:.1}% of wall time (must be within 2%)",
        coverage * 100.0
    );
    let tasks_per_sec = total_tasks as f64 / (total_wall_ns as f64 / 1e9);
    report.headline(
        "attribution coverage of wall time (gate 0.98..1.02)",
        coverage,
    );
    report.headline("simulated tasks per host second (baseline)", tasks_per_sec);

    let artifact = serde_json::json!({
        "machine": m.name,
        "attribution_coverage": coverage,
        "coverage_gate": 0.02,
        "tasks_per_host_second": tasks_per_sec,
        "cases": rows_json,
    });
    let path = h.config.results_dir.join("sim-profile.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }
    vec![report]
}
