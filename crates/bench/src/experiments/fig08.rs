//! Figure 8: end-to-end language-model inference on the GPU across 150
//! sentence lengths in [5, 500]. Paper headlines: 1.39x (BERT), 1.38x
//! (DistilBERT), 1.36x (RoBERTa), 1.37x (ALBERT) over cuBLAS, beating
//! CUTLASS throughout.

use mikpoly::TemplateKind;
use mikpoly_baselines::{CutlassLibrary, MikPolyBackend, VendorLibrary};
use mikpoly_models::TransformerConfig;
use mikpoly_workloads::sentence_lengths;

use crate::chart::BarChart;
use crate::report::mean;
use crate::runner::model_latency_ns;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 8.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let cublas = VendorLibrary::cublas(gpu.clone());
    let cutlass = CutlassLibrary::new(gpu.clone());
    let mik = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));

    let mut report = Report::new(
        "fig8",
        "End-to-end language models on GPU (speedup over cuBLAS baseline)",
        &[
            "model",
            "MikPoly mean",
            "CUTLASS mean",
            "MikPoly min",
            "MikPoly max",
        ],
    );
    let lengths: Vec<usize> = h.config.subsample(&sentence_lengths());

    let mut chart = BarChart::new("Fig. 8: e2e language models (speedup over cuBLAS)");
    for cfg in TransformerConfig::evaluation_set() {
        let mut mik_speedups = Vec::new();
        let mut cutlass_speedups = Vec::new();
        for &len in &lengths {
            let graph = cfg.graph(1, len);
            let base = model_latency_ns(&graph, &cublas, &cublas).expect("vendor runs");
            let m = model_latency_ns(&graph, &mik, &mik).expect("mikpoly runs");
            let c = model_latency_ns(&graph, &cutlass, &cutlass).expect("cutlass runs");
            mik_speedups.push(base / m);
            cutlass_speedups.push(base / c);
        }
        report.push_row(vec![
            cfg.name.clone(),
            format!("{:.2}", mean(&mik_speedups)),
            format!("{:.2}", mean(&cutlass_speedups)),
            format!(
                "{:.2}",
                mik_speedups.iter().copied().fold(f64::MAX, f64::min)
            ),
            format!("{:.2}", crate::report::max(&mik_speedups)),
        ]);
        let paper = match cfg.name.as_str() {
            "bert-base-uncased" => 1.39,
            "distilbert-base-uncased" => 1.38,
            "roberta-base" => 1.36,
            _ => 1.37,
        };
        report.headline(
            format!("{} mean speedup (paper: {paper})", cfg.name),
            mean(&mik_speedups),
        );
        chart = chart.with_bar(cfg.name.clone(), mean(&mik_speedups));
    }
    println!("{}", chart.render());
    vec![report]
}
