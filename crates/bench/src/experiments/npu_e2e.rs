//! Section 5.2.2 (NPU paragraph): end-to-end CNN inference on the NPU vs
//! CANN. Paper headlines: 1.30x (AlexNet), 1.19x (GoogLeNet), 1.32x
//! (ResNet), 1.38x (VGG).

use mikpoly::TemplateKind;
use mikpoly_baselines::{MikPolyBackend, VendorLibrary};
use mikpoly_models::CnnConfig;
use mikpoly_workloads::cnn_sweep;

use crate::report::mean;
use crate::runner::model_latency_ns;
use crate::setup::Harness;
use crate::Report;

/// Runs the NPU end-to-end experiment.
pub fn run(h: &Harness) -> Vec<Report> {
    let npu = h.npu();
    let cann = VendorLibrary::cann(npu.clone());
    let mik_gemm = MikPolyBackend::new(h.compiler(&npu, TemplateKind::Gemm));
    let mik_conv = MikPolyBackend::new(h.compiler(&npu, TemplateKind::Conv));

    let mut report = Report::new(
        "npu-e2e",
        "End-to-end CNNs on NPU (speedup over CANN)",
        &["model", "MikPoly mean", "MikPoly min", "MikPoly max"],
    );
    let sweep: Vec<(usize, usize)> = if h.config.stride > 1 {
        cnn_sweep().into_iter().step_by(8).collect()
    } else {
        cnn_sweep()
    };

    for cfg in CnnConfig::evaluation_set() {
        let mut speedups = Vec::new();
        for &(batch, resolution) in &sweep {
            let graph = cfg.graph(batch, resolution);
            let base = model_latency_ns(&graph, &cann, &cann).expect("cann runs");
            let m = model_latency_ns(&graph, &mik_gemm, &mik_conv).expect("mikpoly runs");
            speedups.push(base / m);
        }
        report.push_row(vec![
            cfg.name.clone(),
            format!("{:.2}", mean(&speedups)),
            format!("{:.2}", speedups.iter().copied().fold(f64::MAX, f64::min)),
            format!("{:.2}", crate::report::max(&speedups)),
        ]);
        let paper = match cfg.name.as_str() {
            "alexnet" => 1.30,
            "googlenet" => 1.19,
            "resnet18" => 1.32,
            _ => 1.38,
        };
        report.headline(
            format!("{} mean speedup (paper: {paper})", cfg.name),
            mean(&speedups),
        );
    }
    vec![report]
}
