//! Fault-tolerance extension: serving throughput under injected faults.
//!
//! Replays one fixed Poisson GEMM stream through the serving runtime
//! twice — fault-free and with a 1% transient device-fault rate — with
//! warmed program caches, so the two virtual timelines differ only in the
//! injected faults and their bounded retry backoff. The headline is the
//! goodput ratio (faulty / clean), the robustness gate's floor: retries
//! are paid in virtual backoff, never in dropped requests, so the ratio
//! must stay near 1. Emits `results/chaos-serving.json` with both runs'
//! disposition tables for the CI gate and future PRs to compare against.

use std::sync::Arc;

use accel_sim::{Cluster, FaultPlan, Interconnect};
use mikpoly::serving::poisson_arrivals;
use mikpoly::{Engine, Request, ServingRuntime, TemplateKind};
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

/// Seed of the arrival process and the fault schedule (fixed so the
/// artifact is comparable across commits).
const STREAM_SEED: u64 = 0x0C4A05;

/// The injected transient device-fault rate of the faulty run.
const FAULT_RATE: f64 = 0.01;

/// The shape population: a mix of aligned and ragged GEMMs so retries
/// land on heterogeneous device times.
fn shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(1111, 999, 512),
        GemmShape::new(64, 64, 64),
        GemmShape::new(320, 192, 128),
        GemmShape::new(511, 257, 96),
        GemmShape::new(900, 300, 300),
        GemmShape::new(128, 1024, 64),
    ]
}

/// Runs the fault-tolerance serving study and writes
/// `results/chaos-serving.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let n_requests = if h.config.stride > 1 { 40 } else { 120 };
    let shapes = shapes();
    let requests: Vec<Request> = poisson_arrivals(n_requests, 10_000.0, STREAM_SEED)
        .into_iter()
        .enumerate()
        .map(|(id, t)| Request::single(id, t, Operator::gemm(shapes[id % shapes.len()])))
        .collect();

    let serve = |device_fault_rate: f64| {
        let engine = Arc::new(Engine::from_compilers(
            gpu.clone(),
            h.compiler(&gpu, TemplateKind::Gemm),
            h.compiler(&gpu, TemplateKind::Conv),
        ));
        // Warm the program cache: the compared timelines are then
        // compile-free, isolating the injected faults' retry cost.
        for s in &shapes {
            engine.run_operator(&Operator::gemm(*s));
        }
        let cluster = Cluster::new(gpu.clone(), 2, Interconnect::nvlink3());
        let mut options = mikpoly::ServingOptions::default();
        if device_fault_rate > 0.0 {
            options.fault_plan = Some(Arc::new(FaultPlan {
                seed: STREAM_SEED,
                device_fault_rate,
                ..FaultPlan::none()
            }));
        }
        ServingRuntime::new(engine, cluster, 2)
            .with_options(options)
            .serve(&requests)
    };

    let clean = serve(0.0);
    let faulty = serve(FAULT_RATE);
    let ratio = faulty.goodput_rps() / clean.goodput_rps();
    let retried: u32 = faulty.records.iter().map(|r| r.retries).sum();

    let mut report = Report::new(
        "chaos-serving",
        "Serving goodput under a 1% transient device-fault rate (extension)",
        &[
            "run",
            "completed",
            "degraded",
            "shed",
            "failed",
            "retries",
            "goodput (req/s)",
        ],
    );
    for (name, r) in [("fault-free", &clean), ("1% device faults", &faulty)] {
        let c = r.dispositions();
        let run_retries: u32 = r.records.iter().map(|rec| rec.retries).sum();
        report.push_row(vec![
            name.to_string(),
            c.completed.to_string(),
            c.degraded.to_string(),
            c.shed.to_string(),
            c.failed.to_string(),
            run_retries.to_string(),
            format!("{:.0}", r.goodput_rps()),
        ]);
    }
    report.headline("goodput ratio, 1% faults / fault-free (floor 0.9)", ratio);
    report.headline("device retries absorbed", f64::from(retried));

    let disposition_json = |r: &mikpoly::ServingReport| {
        let c = r.dispositions();
        serde_json::json!({
            "completed": c.completed,
            "degraded": c.degraded,
            "shed": c.shed,
            "failed": c.failed,
            "retries": r.records.iter().map(|rec| rec.retries).sum::<u32>(),
            "goodput_rps": r.goodput_rps(),
            "throughput_rps": r.throughput_rps(),
        })
    };
    let artifact = serde_json::json!({
        "stream_seed": STREAM_SEED,
        "requests": n_requests,
        "fault_rate": FAULT_RATE,
        "goodput_ratio": ratio,
        "ratio_floor": 0.9,
        "clean": disposition_json(&clean),
        "faulty": disposition_json(&faulty),
    });
    let path = h.config.results_dir.join("chaos-serving.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }
    vec![report]
}
