//! Figure 13: hyper-parameter sensitivity. Sweeping `n_gen`, `n_syn` and
//! `n_mik` one at a time around the paper's operating point (32, 12, 40),
//! measuring the average GEMM speedup over cuBLAS. The paper observes
//! saturation at the chosen values.

use std::sync::Arc;

use mikpoly::{MikPoly, TemplateKind};
use mikpoly_baselines::{Backend, MikPolyBackend, VendorLibrary};
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

fn speedup_with(h: &Harness, options: &mikpoly::OfflineOptions, cases: &[Operator]) -> f64 {
    let gpu = h.gpu();
    // Bypass the harness cache (the sweep intentionally varies options).
    let lib = {
        let mut h2 = crate::setup::Harness::new(h.config.clone());
        h2.config.offline = options.clone();
        h2.library(&gpu, TemplateKind::Gemm)
    };
    let mik = MikPolyBackend::new(Arc::new(MikPoly::with_library(gpu.clone(), lib)));
    let cublas = VendorLibrary::cublas(gpu);
    let speedups: Vec<f64> = cases
        .iter()
        .map(|op| {
            // Warmed-up per-run times, as in the operator suites.
            cublas.run(op).expect("vendor runs").report.time_ns
                / mik.run(op).expect("mikpoly runs").report.time_ns
        })
        .collect();
    mean(&speedups)
}

/// Runs Figure 13.
pub fn run(h: &Harness) -> Vec<Report> {
    // Evaluation population: a strided sample of Table 3 (library
    // generation runs once per sweep point, so the population is kept
    // moderate even in full mode).
    let eval_stride = (h.config.stride * 16).clamp(16, 200);
    let cases: Vec<Operator> = mikpoly_workloads::gemm_suite()
        .into_iter()
        .step_by(eval_stride)
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let base = h.config.offline.clone();
    let mut report = Report::new(
        "fig13",
        "Hyper-parameter sensitivity (avg GEMM speedup over cuBLAS)",
        &["parameter", "value", "avg speedup"],
    );

    let mut record = |param: &str, value: usize, speedup: f64| {
        report.push_row(vec![
            param.to_string(),
            value.to_string(),
            format!("{speedup:.3}"),
        ]);
    };

    let mut at_default = 0.0;
    for &n_gen in &[4usize, 8, 16, 24, 32] {
        let mut o = base.clone();
        o.n_gen = n_gen;
        let s = speedup_with(h, &o, &cases);
        if n_gen == base.n_gen {
            at_default = s;
        }
        record("n_gen", n_gen, s);
    }
    for &n_syn in &[0u32, 2, 4, 8, 12] {
        let mut o = base.clone();
        o.n_syn = n_syn;
        record("n_syn", n_syn as usize, speedup_with(h, &o, &cases));
    }
    for &n_mik in &[1usize, 5, 10, 20, 40, 60] {
        let mut o = base.clone();
        o.n_mik = n_mik;
        record("n_mik", n_mik, speedup_with(h, &o, &cases));
    }
    report.headline(
        "avg speedup at the paper's operating point (32, 12, 40)",
        at_default,
    );
    vec![report]
}
