//! One module per table/figure of the paper's evaluation. Every module
//! exposes `run(&Harness) -> Vec<Report>`; the `experiments` binary
//! dispatches on experiment id.

pub mod abl_patterns;
pub mod abl_search;
pub mod batch_serving;
pub mod cache_bench;
pub mod case_study;
pub mod chaos_serving;
pub mod ext_colaunch;
pub mod ext_fusion;
pub mod ext_portability;
pub mod ext_serving;
pub mod ext_splitk;
pub mod ext_winograd;
pub mod fig01;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12a;
pub mod fig12b;
pub mod fig13;
pub mod npu_e2e;
pub mod oracle_gap;
pub mod oracle_gap_hard;
pub mod sim_profile;
pub mod sim_throughput;
pub mod tab05;
pub mod tab08;
pub mod tables;

use mikpoly_baselines::Backend;
use tensor_ir::Operator;

use crate::report::{geomean, max, mean};
use crate::setup::Harness;
use crate::Report;

/// An experiment entry point: takes the harness, returns its reports.
pub type ExperimentFn = fn(&Harness) -> Vec<Report>;

/// The registry of all experiments, in paper order.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", fig01::run as ExperimentFn),
        ("tables", tables::run),
        ("fig6", fig06::run),
        ("fig7", fig07::run),
        ("fig8", fig08::run),
        ("fig9", fig09::run),
        ("npu-e2e", npu_e2e::run),
        ("fig10", fig10::run),
        ("tab5", tab05::run),
        ("tab8", tab08::run),
        ("fig11", fig11::run),
        ("fig12a", fig12a::run),
        ("fig12b", fig12b::run),
        ("fig13", fig13::run),
        ("case-study", case_study::run),
        // Extensions and ablations beyond the paper's evaluation.
        ("ext-winograd", ext_winograd::run),
        ("ext-fusion", ext_fusion::run),
        ("ext-portability", ext_portability::run),
        ("ext-splitk", ext_splitk::run),
        ("ext-serving", ext_serving::run),
        ("batch-serving", batch_serving::run),
        ("chaos-serving", chaos_serving::run),
        ("cache-bench", cache_bench::run),
        ("sim-profile", sim_profile::run),
        ("sim-throughput", sim_throughput::run),
        ("ext-colaunch", ext_colaunch::run),
        ("abl-patterns", abl_patterns::run),
        ("abl-search", abl_search::run),
        // Conformance subsystem: the standing cost-model fidelity sweeps.
        ("oracle-gap", oracle_gap::run),
        ("oracle-gap-hard", oracle_gap_hard::run),
    ]
}

/// Per-case speedups of several systems over a baseline on an operator
/// population. Device time only: the paper warms up and averages 20 runs
/// per case, so one-time host work (MikPoly's polymerization, DietCode's
/// dispatch) is not in the per-run time. End-to-end experiments account
/// overhead explicitly, as the paper does.
pub(crate) struct SuiteComparison {
    /// System names, baseline first.
    pub names: Vec<String>,
    /// `speedups[s][c]` = baseline_time / system_s_time on case `c`
    /// (the baseline row is all ones).
    pub speedups: Vec<Vec<f64>>,
    /// Case FLOPs (the paper's x-axis).
    pub flops: Vec<f64>,
}

impl SuiteComparison {
    pub fn run(cases: &[Operator], baseline: &dyn Backend, others: &[&dyn Backend]) -> Self {
        let mut names = vec![baseline.name().to_string()];
        names.extend(others.iter().map(|b| b.name().to_string()));
        let mut speedups = vec![Vec::with_capacity(cases.len()); others.len() + 1];
        let mut flops = Vec::with_capacity(cases.len());
        for op in cases {
            let base = baseline
                .run(op)
                .unwrap_or_else(|e| panic!("baseline {} failed on {op}: {e}", baseline.name()));
            flops.push(op.flops());
            speedups[0].push(1.0);
            for (i, b) in others.iter().enumerate() {
                let run = b
                    .run(op)
                    .unwrap_or_else(|e| panic!("{} failed on {op}: {e}", b.name()));
                speedups[i + 1].push(base.report.time_ns / run.report.time_ns);
            }
        }
        Self {
            names,
            speedups,
            flops,
        }
    }

    /// Appends per-system mean/geomean/max rows to a report.
    pub fn summarize(&self, report: &mut Report, suite: &str) {
        for (name, sp) in self.names.iter().zip(&self.speedups) {
            report.push_row(vec![
                suite.to_string(),
                name.clone(),
                format!("{:.2}", mean(sp)),
                format!("{:.2}", geomean(sp)),
                format!("{:.2}", max(sp)),
            ]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Config;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment id");
        for id in ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "id {id} is not kebab-case"
            );
        }
    }

    #[test]
    fn library_free_experiments_run_in_tests() {
        // fig1 and the config tables need no micro-kernel library; they
        // must run quickly even in debug builds.
        let harness = Harness::new(Config::quick());
        for id in ["fig1", "tables"] {
            let (_, runner) = registry().into_iter().find(|(k, _)| *k == id).expect("id");
            let reports = runner(&harness);
            assert!(!reports.is_empty());
            for r in &reports {
                assert!(!r.columns.is_empty());
                assert!(!r.rows.is_empty(), "{} produced no rows", r.id);
            }
        }
    }

    #[test]
    fn suite_comparison_baseline_row_is_unity() {
        use accel_sim::MachineModel;
        use mikpoly_baselines::VendorLibrary;
        use tensor_ir::GemmShape;
        let vendor = VendorLibrary::cublas(MachineModel::a100());
        let cases = [
            Operator::gemm(GemmShape::new(64, 64, 64)),
            Operator::gemm(GemmShape::new(100, 300, 50)),
        ];
        let cmp = SuiteComparison::run(&cases, &vendor, &[&vendor]);
        assert!(cmp.speedups[0].iter().all(|&s| s == 1.0));
        // Comparing the baseline against itself is also unity.
        assert!(cmp.speedups[1].iter().all(|&s| (s - 1.0).abs() < 1e-9));
        assert_eq!(cmp.flops.len(), 2);
    }
}
