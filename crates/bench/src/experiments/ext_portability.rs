//! Extension (the paper's Section 7 Generality claim): "this generic
//! framework can be extended to support numerous other operators and
//! accelerators". The whole pipeline — offline tuning, performance models,
//! polymerization — retargets to an H100-class GPU by swapping the machine
//! description; nothing else changes. The selected micro-kernels differ
//! (more local memory, more bandwidth), and the speedup structure over the
//! vendor library carries over.

use accel_sim::MachineModel;
use mikpoly::TemplateKind;
use mikpoly_baselines::{MikPolyBackend, VendorLibrary};
use tensor_ir::Operator;

use crate::experiments::SuiteComparison;
use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs the portability study.
pub fn run(h: &Harness) -> Vec<Report> {
    let mut report = Report::new(
        "ext-portability",
        "Retargeting the pipeline to other machines (speedup over the vendor library)",
        &[
            "machine",
            "kernels",
            "largest tile",
            "GEMM mean",
            "geomean",
            "max",
        ],
    );
    let cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::gemm_suite())
        .into_iter()
        .map(|c| Operator::gemm(c.shape))
        .collect();

    for machine in [
        MachineModel::a100(),
        MachineModel::h100(),
        MachineModel::ascend910a(),
    ] {
        let compiler = h.compiler(&machine, TemplateKind::Gemm);
        let vendor = match machine.allocation {
            accel_sim::AllocationPolicy::DynamicHardware => VendorLibrary::cublas(machine.clone()),
            accel_sim::AllocationPolicy::StaticCompilerAssigned => {
                VendorLibrary::cann(machine.clone())
            }
        };
        let largest = compiler
            .library()
            .kernels
            .iter()
            .map(|t| (t.kernel.um * t.kernel.un, t.kernel))
            .max_by_key(|&(area, _)| area)
            .map(|(_, k)| format!("({}, {}, {})", k.um, k.un, k.uk))
            .unwrap_or_default();
        let mik = MikPolyBackend::new(compiler);
        let cmp = SuiteComparison::run(&cases, &vendor, &[&mik]);
        report.push_row(vec![
            machine.name.clone(),
            mik.compiler().library().kernels.len().to_string(),
            largest,
            format!("{:.2}", mean(&cmp.speedups[1])),
            format!("{:.2}", crate::report::geomean(&cmp.speedups[1])),
            format!("{:.2}", crate::report::max(&cmp.speedups[1])),
        ]);
        report.headline(
            format!("{} GEMM mean speedup over its vendor library", machine.name),
            mean(&cmp.speedups[1]),
        );
    }
    vec![report]
}
