//! Figure 11: Llama2-13b end-to-end generation vs FasterTransformer, over
//! input lengths `2^0..2^9` and batch sizes `2^0..2^3` with 512 output
//! tokens. MikPoly replaces the projection GEMMs inside the
//! FasterTransformer runtime (attention stays with the baseline), exactly
//! as the paper integrates it. Paper headlines: 1.05x / 1.04x / 1.02x /
//! 1.01x for batch sizes 1 / 2 / 4 / 8.

use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, FasterTransformer, MikPolyBackend};
use mikpoly_models::{LlamaConfig, ModelGraph};
use mikpoly_workloads::{llama_sweep, LLAMA_OUTPUT_TOKENS};
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Ring all-reduce cost over the paper's 4-A100 NVLink cluster. Paid after
/// `o_proj` and `ffn_down` in every layer — by *both* runtimes, which is
/// why the paper's end-to-end Llama wins are small (1.01–1.05x) even where
/// the GEMM-level wins are larger (Table 8).
fn allreduce_ns(bytes: f64) -> f64 {
    accel_sim::Cluster::a100_x4_nvlink().allreduce_ns(bytes)
}

fn generation_latency(
    graphs: &[ModelGraph],
    projections: &dyn Backend,
    attention: &dyn Backend,
) -> f64 {
    let mut total = 0.0;
    for g in graphs {
        for op in &g.ops {
            let backend = if op.name.starts_with("attn.") {
                attention
            } else {
                projections
            };
            let run = backend.run(&op.operator).expect("in-range GEMMs");
            total += run.report.time_ns * op.count as f64
                + run.overhead_ns / crate::runner::RUNS_AVERAGED;
            // Tensor parallelism: the row-parallel projections end in an
            // all-reduce of the full activations.
            if op.name == "o_proj" || op.name == "ffn_down" {
                let s = match op.operator {
                    Operator::Gemm { shape, .. } => shape,
                    _ => continue,
                };
                total += allreduce_ns((s.m * s.n * 2) as f64) * op.count as f64;
            }
        }
    }
    total
}

/// Runs Figure 11.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let ft = FasterTransformer::new(gpu.clone());
    let mik = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let cfg = LlamaConfig::llama2_13b_tp4();

    let mut report = Report::new(
        "fig11",
        "Llama2-13b end-to-end generation vs FasterTransformer (512 output tokens)",
        &["batch", "mean speedup", "min", "max"],
    );
    let sweep = if h.config.stride > 1 {
        llama_sweep().into_iter().step_by(3).collect()
    } else {
        llama_sweep()
    };

    let mut per_batch: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for (batch, seq_in) in sweep {
        let graphs = cfg.generation_graphs(batch, seq_in, LLAMA_OUTPUT_TOKENS);
        let base = generation_latency(&graphs, &ft, &ft);
        let with_mik = generation_latency(&graphs, &mik, &ft);
        per_batch.entry(batch).or_default().push(base / with_mik);
    }
    for (batch, speedups) in &per_batch {
        report.push_row(vec![
            batch.to_string(),
            format!("{:.3}", mean(speedups)),
            format!("{:.3}", speedups.iter().copied().fold(f64::MAX, f64::min)),
            format!("{:.3}", crate::report::max(speedups)),
        ]);
        let paper = match batch {
            1 => 1.05,
            2 => 1.04,
            4 => 1.02,
            _ => 1.01,
        };
        report.headline(
            format!("batch {batch} mean speedup (paper: {paper})"),
            mean(speedups),
        );
    }
    vec![report]
}
