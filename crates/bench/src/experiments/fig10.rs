//! Figure 10: MikPoly vs the dynamic-shape compilers DietCode and Nimble
//! (plus CUTLASS) on CUDA cores over all 1599 Table 3 cases, normalized to
//! DietCode. Paper headlines: MikPoly outperforms DietCode, Nimble and
//! CUTLASS by 2.94x, 7.54x, and 3.59x on average.
//!
//! Tensor Cores are excluded (DietCode and Nimble only target CUDA cores),
//! and both range-based compilers are given the full Table 3 envelope as
//! their declared dynamic ranges, exactly as in the paper.

use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, CutlassLibrary, DietCode, GemmRanges, MikPolyBackend, Nimble};
use mikpoly_workloads::table3_declared_ranges;
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 10.
pub fn run(h: &Harness) -> Vec<Report> {
    let cc = h.gpu_cuda_cores();
    let (m, n, k) = table3_declared_ranges();
    let ranges = GemmRanges { m, n, k };
    let dietcode = DietCode::compile(cc.clone(), ranges);
    let nimble = Nimble::compile(cc.clone(), ranges);
    let cutlass = CutlassLibrary::new(cc.clone());
    let mik = MikPolyBackend::new(h.compiler(&cc, TemplateKind::Gemm));

    let cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::gemm_suite())
        .into_iter()
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let mut flops = Vec::new();
    let mut vs_dietcode = Vec::new();
    let mut vs_nimble = Vec::new();
    let mut vs_cutlass = Vec::new();
    for op in &cases {
        flops.push(op.flops());
        // Warmed-up per-run times (see SuiteComparison's note). DietCode's
        // nearest-representative dispatch and Nimble's VM dispatch recur on
        // every run, so they stay in the per-run time; MikPoly's cached
        // program and CUTLASS's template pick do not.
        let mik_ns = mik
            .run(op)
            .expect("mikpoly handles any shape")
            .report
            .time_ns;
        let d = dietcode.run(op).expect("in declared range").total_ns();
        let nb = nimble.run(op).expect("in declared range").total_ns();
        let c = cutlass.run(op).expect("cutlass runs").report.time_ns;
        vs_dietcode.push(d / mik_ns);
        vs_nimble.push(nb / mik_ns);
        vs_cutlass.push(c / mik_ns);
    }

    // Fig. 10's scatter, normalized to DietCode: each system's speedup over
    // DietCode per case (MikPoly's is vs_dietcode; the others derive).
    let chart = crate::chart::ScatterChart::new(
        "Fig. 10: speedup over DietCode on CUDA cores",
        "workload FLOPs",
        "speedup vs DietCode",
    )
    .with_series(crate::chart::Series::new(
        "MikPoly",
        '*',
        flops
            .iter()
            .copied()
            .zip(vs_dietcode.iter().copied())
            .collect(),
    ))
    .with_series(crate::chart::Series::new(
        "CUTLASS",
        '.',
        flops
            .iter()
            .copied()
            .zip(vs_dietcode.iter().zip(&vs_cutlass).map(|(d, c)| d / c))
            .collect(),
    ))
    .with_series(crate::chart::Series::new(
        "Nimble",
        'n',
        flops
            .iter()
            .copied()
            .zip(vs_dietcode.iter().zip(&vs_nimble).map(|(d, n)| d / n))
            .collect(),
    ));
    println!("{}", chart.render());

    let mut report = Report::new(
        "fig10",
        "MikPoly vs dynamic-shape compilers on CUDA cores (speedup of MikPoly over each)",
        &["system", "mean", "geomean", "max"],
    );
    for (name, sp) in [
        ("DietCode", &vs_dietcode),
        ("Nimble", &vs_nimble),
        ("CUTLASS", &vs_cutlass),
    ] {
        report.push_row(vec![
            name.to_string(),
            format!("{:.2}", mean(sp)),
            format!("{:.2}", crate::report::geomean(sp)),
            format!("{:.2}", crate::report::max(sp)),
        ]);
    }
    report.headline(
        "mean speedup over DietCode (paper: 2.94)",
        mean(&vs_dietcode),
    );
    report.headline("mean speedup over Nimble (paper: 7.54)", mean(&vs_nimble));
    report.headline("mean speedup over CUTLASS (paper: 3.59)", mean(&vs_cutlass));
    vec![report]
}
