//! Extension: concurrent serving — tail latency and worker scaling.
//!
//! The paper motivates dynamic-shape compilation with serving scenarios
//! but evaluates isolated operators and single inferences. This study
//! drives the real concurrent path: K independent client streams issue
//! BERT forward passes with Poisson arrivals and random sentence lengths
//! into a shared [`mikpoly::Engine`], served by a worker-thread pool over
//! a simulated device pool. Three effects appear:
//!
//! * throughput improves with workers while the host is the bottleneck
//!   (the stream saturates a single worker), then flattens at the device
//!   pool's capacity;
//! * MikPoly's first-sight polymerization shows up as a compile component
//!   in the latency decomposition of early requests, then vanishes behind
//!   the program cache — and the sharded single-flight cache keeps the
//!   polymerization count at the number of *unique* shapes no matter how
//!   many workers race on the same cold length;
//! * queueing delay dominates the tail near saturation (M/G/m behaviour),
//!   so cache behaviour, not raw device speed, decides P99.

use std::collections::HashSet;
use std::sync::Arc;

use accel_sim::{Cluster, Interconnect};
use mikpoly::serving::poisson_arrivals;
use mikpoly::telemetry::Telemetry;
use mikpoly::{Engine, MikPoly, Request, ServingRuntime, TemplateKind};
use mikpoly_models::TransformerConfig;

use crate::setup::Harness;
use crate::Report;

/// Sentence lengths for one client, bucketed to 16 (the serving runtime's
/// shape-quantization granularity) so clients overlap on shapes.
fn client_lengths(count: usize, seed: u64) -> Vec<usize> {
    (0..count)
        .map(|i| {
            let u = accel_sim::hash_f64(seed, &[i as u64, 2]);
            16 * (1 + (u * 30.0) as usize)
        })
        .collect()
}

/// Merges K Poisson client streams into one arrival-stamped request list.
fn merged_stream(
    bert: &TransformerConfig,
    clients: usize,
    per_client: usize,
    mean_gap_ns: f64,
    seed: u64,
) -> Vec<Request> {
    let mut requests = Vec::new();
    for client in 0..clients {
        let client_seed = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let arrivals = poisson_arrivals(per_client, mean_gap_ns, client_seed);
        for (arrival_ns, len) in arrivals
            .into_iter()
            .zip(client_lengths(per_client, client_seed))
        {
            requests.push(Request {
                id: 0, // assigned after the merge sort
                arrival_ns,
                ops: bert
                    .graph(1, len)
                    .ops
                    .iter()
                    .map(|op| (op.operator, op.count))
                    .collect(),
                deadline_ns: None,
                tenant: 0,
            });
        }
    }
    requests.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
    for (id, request) in requests.iter_mut().enumerate() {
        request.id = id;
    }
    requests
}

/// Runs the concurrent serving study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let bert = TransformerConfig::bert_base();
    let devices = 8;
    let clients = 4;
    let per_client = if h.config.stride > 1 { 30 } else { 150 };

    // Calibrate arrivals so the pool at 8 workers sits near 80% load —
    // which leaves 1 worker heavily oversaturated. The same stream is
    // replayed at every worker count, so throughput differences are the
    // worker pool's doing alone.
    let probe_engine = Arc::new(Engine::from_compilers(
        gpu.clone(),
        h.compiler(&gpu, TemplateKind::Gemm),
        h.compiler(&gpu, TemplateKind::Conv),
    ));
    let probe = probe_engine
        .run_graph(
            bert.graph(1, 256)
                .ops
                .iter()
                .map(|op| (&op.operator, op.count)),
        )
        .device_ns;
    let total_rate = 0.8 * devices as f64 / probe; // requests per ns, pool-wide
    let mean_gap_ns = clients as f64 / total_rate;
    let requests = merged_stream(&bert, clients, per_client, mean_gap_ns, 0xBEEF);
    let unique_shapes: HashSet<_> = requests
        .iter()
        .flat_map(|r| r.ops.iter().map(|(op, _)| *op))
        .collect();

    let mut latency = Report::new(
        "ext-serving",
        "Concurrent BERT serving: tail latency vs worker count (extension)",
        &[
            "workers",
            "P50 (ms)",
            "P95 (ms)",
            "P99 (ms)",
            "mean queue (ms)",
            "mean compile (us)",
            "mean device (ms)",
            "throughput (req/s)",
        ],
    );
    let mut cache = Report::new(
        "ext-serving-cache",
        "Program-cache behaviour under concurrent serving (extension)",
        &[
            "workers",
            "polymerizations",
            "hits",
            "coalesced waits",
            "hit rate (%)",
        ],
    );

    let mut throughputs = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        // A fresh engine per worker count: every run starts cold, so the
        // compile component and the single-flight behaviour are comparable.
        let engine = Arc::new(Engine::from_compilers(
            gpu.clone(),
            h.compiler(&gpu, TemplateKind::Gemm),
            h.compiler(&gpu, TemplateKind::Conv),
        ));
        let cluster = Cluster::new(gpu.clone(), devices, Interconnect::nvlink3());
        let report = ServingRuntime::new(engine, cluster, workers).serve(&requests);
        let s = report.latency_summary();
        let rps = report.throughput_rps();
        throughputs.push((workers, rps));
        latency.push_row(vec![
            workers.to_string(),
            format!("{:.2}", s.total.p50_ns / 1e6),
            format!("{:.2}", s.total.p95_ns / 1e6),
            format!("{:.2}", s.total.p99_ns / 1e6),
            format!("{:.2}", s.queue.mean_ns / 1e6),
            format!("{:.1}", s.compile.mean_ns / 1e3),
            format!("{:.2}", s.device.mean_ns / 1e6),
            format!("{:.0}", rps),
        ]);
        let c = report.cache;
        cache.push_row(vec![
            workers.to_string(),
            c.computations.to_string(),
            c.hits.to_string(),
            c.coalesced_waits.to_string(),
            format!("{:.1}", c.hit_rate() * 100.0),
        ]);
        // Single flight: polymerizations never exceed the unique shapes in
        // the stream, no matter how many workers race on cold shapes.
        assert!(
            c.computations as usize <= unique_shapes.len(),
            "{} polymerizations for {} unique shapes with {workers} workers",
            c.computations,
            unique_shapes.len()
        );
    }

    let rps_at = |w: usize| {
        throughputs
            .iter()
            .find(|(workers, _)| *workers == w)
            .map(|(_, rps)| *rps)
            .expect("measured")
    };

    // Telemetered replay at 4 workers: the same stream with tracing and
    // the flight recorder on. The trace goes to results/ as a
    // Perfetto-loadable artifact, the registry must mirror the cache
    // report exactly, and the virtual-time throughput must match the
    // untraced run (telemetry observes the timeline; it must not shift
    // it).
    let telemetry = Telemetry::enabled();
    let traced_engine = Arc::new(Engine::from_compilers(
        gpu.clone(),
        Arc::new(
            MikPoly::with_library(gpu.clone(), h.library(&gpu, TemplateKind::Gemm))
                .with_telemetry(Arc::clone(&telemetry)),
        ),
        Arc::new(
            MikPoly::with_library(gpu.clone(), h.library(&gpu, TemplateKind::Conv))
                .with_telemetry(Arc::clone(&telemetry)),
        ),
    ));
    let cluster = Cluster::new(gpu.clone(), devices, Interconnect::nvlink3());
    let traced = ServingRuntime::new(traced_engine, cluster, 4).serve(&requests);
    let snap = telemetry.registry().snapshot();
    for (counter, expected) in [
        ("cache.hits", traced.cache.hits),
        ("cache.computations", traced.cache.computations),
        ("cache.coalesced_waits", traced.cache.coalesced_waits),
        ("serving.requests", requests.len() as u64),
    ] {
        assert_eq!(
            snap.counter(counter),
            Some(expected),
            "registry counter '{counter}' must equal the cache report"
        );
    }
    let traced_rps = traced.throughput_rps();
    // Recorder-overhead gate: with spans, metrics, and the flight
    // recorder all on, throughput must stay within 5% of the
    // telemetry-disabled run (it is virtual-time throughput, so any gap
    // means instrumentation leaked into the timeline).
    assert!(
        (traced_rps - rps_at(4)).abs() / rps_at(4) < 0.05,
        "telemetry shifted virtual-time throughput: {traced_rps:.0} vs {:.0} req/s",
        rps_at(4)
    );
    // Every histogram exemplar must resolve to a retained chain — the
    // recorder stamps exemplars only for chains it kept.
    let mut exemplar_count = 0usize;
    for (name, exemplars) in &snap.exemplars {
        for &(_, id) in exemplars {
            assert!(
                telemetry.recorder().find(id).is_some(),
                "exemplar id {id} on '{name}' does not resolve to a retained chain"
            );
            exemplar_count += 1;
        }
    }
    assert!(
        exemplar_count > 0,
        "serving histograms recorded no exemplars"
    );
    let _ = std::fs::create_dir_all(&h.config.results_dir);
    let trace_path = h.config.results_dir.join("ext-serving-trace.json");
    if let Err(e) = std::fs::write(&trace_path, telemetry.render_chrome_trace()) {
        eprintln!("ext-serving: cannot write {}: {e}", trace_path.display());
    }
    let metrics_path = h.config.results_dir.join("ext-serving-metrics.txt");
    if let Err(e) = std::fs::write(&metrics_path, telemetry.registry().render_prometheus()) {
        eprintln!("ext-serving: cannot write {}: {e}", metrics_path.display());
    }

    // Snapshot-while-serving gate: replay the same stream at 4 workers
    // with the background snapshotter persisting the warm caches at a
    // short interval. Snapshots read the lock-free published cache
    // snapshot and commit atomically on a separate thread, so the
    // virtual-time throughput must stay within 5% of the plain run — any
    // gap means snapshotting contended with the serving path.
    let snapshot_dir = h.config.results_dir.join("ext-serving-snapshots");
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let snap_engine = Arc::new(Engine::from_compilers(
        gpu.clone(),
        h.compiler(&gpu, TemplateKind::Gemm),
        h.compiler(&gpu, TemplateKind::Conv),
    ));
    let snapshotter = mikpoly::Snapshotter::start(
        Arc::clone(&snap_engine),
        snapshot_dir.clone(),
        std::time::Duration::from_millis(10),
    );
    let cluster = Cluster::new(gpu.clone(), devices, Interconnect::nvlink3());
    let snapshotted = ServingRuntime::new(snap_engine, cluster, 4).serve(&requests);
    let stats = snapshotter.stop();
    assert!(
        stats.snapshots >= 1 && stats.errors == 0,
        "snapshotter took {} snapshot(s) with {} error(s)",
        stats.snapshots,
        stats.errors
    );
    let snapshotted_rps = snapshotted.throughput_rps();
    assert!(
        (snapshotted_rps - rps_at(4)).abs() / rps_at(4) < 0.05,
        "live snapshotting shifted virtual-time throughput: {snapshotted_rps:.0} vs {:.0} req/s",
        rps_at(4)
    );
    // The committed generation must restore clean into a fresh engine
    // built on the same library.
    let restored_engine = Engine::from_compilers(
        gpu.clone(),
        h.compiler(&gpu, TemplateKind::Gemm),
        h.compiler(&gpu, TemplateKind::Conv),
    );
    let restore = restored_engine.restore_program_caches(&snapshot_dir);
    assert!(
        restore.clean() && restore.restored() > 0,
        "live snapshot did not restore clean: {restore}"
    );
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    latency.headline(
        "throughput ratio, snapshotting / plain at 4 workers (gate 0.95..1.05)",
        snapshotted_rps / rps_at(4),
    );
    latency.headline(
        "programs restored from the live snapshot",
        restore.restored() as f64,
    );
    latency.headline(
        "throughput ratio, recorder+traced / untraced at 4 workers (gate 0.95..1.05)",
        traced_rps / rps_at(4),
    );
    latency.headline(
        "histogram exemplars resolved to retained chains",
        exemplar_count as f64,
    );
    latency.headline(
        "flight-recorder chains retained",
        telemetry.recorder().retained() as f64,
    );

    latency.headline(
        "throughput scaling, 1 -> 4 workers (saturated stream)",
        rps_at(4) / rps_at(1),
    );
    latency.headline("P99 at 4 workers (ms)", {
        // Recompute from the stored row to avoid re-serving.
        let row = &latency.rows[2];
        row[3].parse::<f64>().expect("P99 column")
    });
    cache.headline("unique shapes in stream", unique_shapes.len() as f64);
    vec![latency, cache]
}
