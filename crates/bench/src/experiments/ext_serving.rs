//! Extension: tail latency under load.
//!
//! The paper motivates dynamic-shape compilation with serving scenarios but
//! evaluates isolated operators and single inferences. This study closes
//! the loop: a single-device FIFO server receives BERT requests with
//! Poisson arrivals and random sentence lengths, and we measure P50/P95/P99
//! latency per backend. Two effects beyond mean speedup appear:
//!
//! * faster service times shrink queueing delay nonlinearly near
//!   saturation (classic M/G/1 behaviour), so MikPoly's P99 advantage
//!   exceeds its mean operator speedup;
//! * MikPoly's first-sight polymerization cost shows up as cold-start
//!   latency on early requests, then vanishes behind the program cache.

use accel_sim::hash_f64;
use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, MikPolyBackend, VendorLibrary};
use mikpoly_models::TransformerConfig;

use crate::setup::Harness;
use crate::Report;

/// One simulated request stream: exponential inter-arrival gaps and
/// uniform sentence lengths, both deterministic under the seed.
fn requests(count: usize, mean_gap_ns: f64, seed: u64) -> Vec<(f64, usize)> {
    let mut t = 0.0;
    (0..count)
        .map(|i| {
            // Inverse-CDF exponential sampling from a uniform hash.
            let u = hash_f64(seed, &[i as u64, 1]).max(1e-12);
            t += -mean_gap_ns * u.ln();
            let len = 5 + (hash_f64(seed, &[i as u64, 2]) * 495.0) as usize;
            (t, len)
        })
        .collect()
}

/// Serves the stream FIFO on one device; returns per-request latencies
/// (queueing + service), ns. `service` maps a sentence length to the
/// device time of one forward pass, including any one-time compile cost on
/// first sight of a length.
fn serve(stream: &[(f64, usize)], mut service: impl FnMut(usize) -> f64) -> Vec<f64> {
    let mut free_at = 0.0f64;
    stream
        .iter()
        .map(|&(arrival, len)| {
            let start = free_at.max(arrival);
            let done = start + service(len);
            free_at = done;
            done - arrival
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs the serving study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let cublas = VendorLibrary::cublas(gpu.clone());
    let mik = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let bert = TransformerConfig::bert_base();

    // Per-length forward-pass device time; MikPoly pays compilation once
    // per new shape set (cold start), vendors pay selection per call.
    let latency = |backend: &dyn Backend, len: usize, include_overhead_once: bool| -> f64 {
        bert.graph(1, len)
            .ops
            .iter()
            .map(|op| {
                let run = backend.run(&op.operator).expect("in-range GEMMs");
                run.report.time_ns * op.count as f64
                    + if include_overhead_once { run.overhead_ns } else { 0.0 }
            })
            .sum()
    };

    let mut report = Report::new(
        "ext-serving",
        "Tail latency serving BERT under Poisson load (extension)",
        &["system", "load", "P50 (ms)", "P95 (ms)", "P99 (ms)", "mean (ms)"],
    );
    let n_requests = if h.config.stride > 1 { 300 } else { 2000 };

    // Calibrate load against MikPoly's mean service time.
    let probe: f64 = [64, 128, 256, 384]
        .iter()
        .map(|&l| latency(&mik, l, false))
        .sum::<f64>()
        / 4.0;

    for (label, utilization) in [("light (30%)", 0.3), ("heavy (80%)", 0.8)] {
        let stream = requests(n_requests, probe / utilization, 0xBEEF ^ n_requests as u64);
        for (name, backend) in [("cuBLAS", &cublas as &dyn Backend), ("MikPoly", &mik)] {
            let mut seen = std::collections::HashSet::new();
            let mut lats = serve(&stream, |len| {
                // First sight of a length pays the backend's one-time host
                // work (polymerization for MikPoly).
                let first = seen.insert(len);
                latency(backend, len, first)
            });
            lats.sort_by(f64::total_cmp);
            let mean = lats.iter().sum::<f64>() / lats.len() as f64;
            report.push_row(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.2}", percentile(&lats, 0.5) / 1e6),
                format!("{:.2}", percentile(&lats, 0.95) / 1e6),
                format!("{:.2}", percentile(&lats, 0.99) / 1e6),
                format!("{:.2}", mean / 1e6),
            ]);
            if name == "MikPoly" {
                report.headline(
                    format!("MikPoly P99 at {label} (ms)"),
                    percentile(&lats, 0.99) / 1e6,
                );
            }
        }
    }

    // Headline: the tail advantage at heavy load.
    let stream = requests(n_requests, probe / 0.8, 0xBEEF ^ n_requests as u64);
    let tail = |backend: &dyn Backend| -> f64 {
        let mut seen = std::collections::HashSet::new();
        let mut lats = serve(&stream, |len| {
            let first = seen.insert(len);
            latency(backend, len, first)
        });
        lats.sort_by(f64::total_cmp);
        percentile(&lats, 0.99)
    };
    report.headline(
        "P99 speedup over cuBLAS at 80% load (exceeds the mean operator speedup)",
        tail(&cublas) / tail(&mik),
    );
    vec![report]
}
