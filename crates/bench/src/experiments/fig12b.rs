//! Figure 12(b): cost-model ablation. MikPoly, MikPoly-Wave (waves only)
//! and MikPoly-Pipe (pipelined-task cost only) are normalized against
//! MikPoly-Oracle, which exhaustively *simulates* every strategy. Paper
//! headlines: 0.96x / 0.81x / 0.72x, with CUTLASS at 0.45x; Oracle takes
//! ~1.6 s per shape vs ~2 us for the cost model.

use std::sync::Arc;

use mikpoly::{CostModelKind, MikPoly, OnlineOptions, TemplateKind};
use mikpoly_baselines::{Backend, CutlassLibrary, MikPolyBackend};
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 12(b). The Oracle simulates every candidate strategy, so the
/// shape population is a strided sample of Table 3 even in full mode.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let library = h.library(&gpu, TemplateKind::Gemm);
    let variant = |kind: CostModelKind| -> Arc<MikPoly> {
        Arc::new(
            MikPoly::with_library(gpu.clone(), library.clone()).with_options(OnlineOptions {
                cost_model: kind,
                ..OnlineOptions::default()
            }),
        )
    };
    let full = variant(CostModelKind::Full);
    let wave = MikPolyBackend::named("MikPoly-Wave", variant(CostModelKind::WaveOnly));
    let pipe = MikPolyBackend::named("MikPoly-Pipe", variant(CostModelKind::PipeOnly));
    let full_backend = MikPolyBackend::new(Arc::clone(&full));
    let cutlass = CutlassLibrary::new(gpu.clone());

    // Oracle cost is ~seconds per shape; sample the suite accordingly.
    let oracle_stride = (h.config.stride * 64).clamp(64, 400);
    let cases: Vec<Operator> = mikpoly_workloads::gemm_suite()
        .into_iter()
        .step_by(oracle_stride)
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let mut rel = vec![Vec::new(); 4]; // full, wave, pipe, cutlass
    let mut oracle_secs = Vec::new();
    let mut model_us = Vec::new();
    for op in &cases {
        let oracle = full.compile_oracle(op);
        let oracle_ns = full.simulate(&oracle.program).time_ns;
        oracle_secs.push(oracle.search.as_secs_f64());
        let run = full.run(op);
        model_us.push(run.program.stats.search_ns as f64 / 1e3);
        for (i, backend) in [&full_backend, &wave, &pipe].into_iter().enumerate() {
            let ns = backend.run(op).expect("runs").report.time_ns;
            rel[i].push(oracle_ns / ns);
        }
        rel[3].push(oracle_ns / cutlass.run(op).expect("runs").report.time_ns);
    }

    let mut report = Report::new(
        "fig12b",
        "Cost-model ablation (performance relative to MikPoly-Oracle)",
        &["system", "mean rel. perf", "min", "max"],
    );
    for (name, series, paper) in [
        ("MikPoly", &rel[0], 0.96),
        ("MikPoly-Wave", &rel[1], 0.81),
        ("MikPoly-Pipe", &rel[2], 0.72),
        ("CUTLASS", &rel[3], 0.45),
    ] {
        report.push_row(vec![
            name.to_string(),
            format!("{:.2}", mean(series)),
            format!("{:.2}", series.iter().copied().fold(f64::MAX, f64::min)),
            format!("{:.2}", crate::report::max(series)),
        ]);
        report.headline(
            format!("{name} mean vs Oracle (paper: {paper})"),
            mean(series),
        );
    }
    report.headline(
        "oracle search seconds/shape (paper: ~1.6)",
        mean(&oracle_secs),
    );
    report.headline("cost-model search us/shape (paper: ~2)", mean(&model_us));
    report.headline("shapes evaluated", cases.len() as f64);
    vec![report]
}
