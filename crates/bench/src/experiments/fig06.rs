//! Figure 6: dynamic-shape GEMM and convolution on the GPU — MikPoly vs
//! cuBLAS/cuDNN (baseline) and CUTLASS.
//!
//! Paper headlines: GEMM 1.47x average / 4.82x peak over cuBLAS;
//! convolution 1.98x average / 5.38x peak over cuDNN; 3.02x / 1.72x over
//! CUTLASS.

use mikpoly::TemplateKind;
use mikpoly_baselines::{CutlassLibrary, MikPolyBackend, VendorLibrary};
use tensor_ir::Operator;

use crate::chart::{ScatterChart, Series};
use crate::experiments::SuiteComparison;
use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 6.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let mut report = Report::new(
        "fig6",
        "GPU dynamic-shape operators (speedups over cuBLAS/cuDNN)",
        &["suite", "system", "mean", "geomean", "max"],
    );
    let mut detail = Report::new(
        "fig6-cases",
        "GPU per-case speedups (CSV series of Fig. 6)",
        &["suite", "flops", "MikPoly", "CUTLASS"],
    );

    // GEMM over Table 3.
    let gemm_cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::gemm_suite())
        .into_iter()
        .map(|c| Operator::gemm(c.shape))
        .collect();
    let cublas = VendorLibrary::cublas(gpu.clone());
    let cutlass = CutlassLibrary::new(gpu.clone());
    let mik_gemm = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let gemm = SuiteComparison::run(&gemm_cases, &cublas, &[&mik_gemm, &cutlass]);
    gemm.summarize(&mut report, "GEMM");
    for i in 0..gemm.flops.len() {
        detail.push_row(vec![
            "GEMM".into(),
            format!("{:.3e}", gemm.flops[i]),
            format!("{:.3}", gemm.speedups[1][i]),
            format!("{:.3}", gemm.speedups[2][i]),
        ]);
    }

    // Convolution over Table 4.
    let conv_cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::conv_suite())
        .into_iter()
        .map(|c| Operator::conv2d(c.shape))
        .collect();
    let cudnn = VendorLibrary::cudnn(gpu.clone());
    let mik_conv = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Conv));
    let conv = SuiteComparison::run(&conv_cases, &cudnn, &[&mik_conv, &cutlass]);
    conv.summarize(&mut report, "conv");
    for i in 0..conv.flops.len() {
        detail.push_row(vec![
            "conv".into(),
            format!("{:.3e}", conv.flops[i]),
            format!("{:.3}", conv.speedups[1][i]),
            format!("{:.3}", conv.speedups[2][i]),
        ]);
    }

    // The Fig. 6 scatter: speedup vs FLOPs, log x.
    let scatter = |title: &str, cmp: &SuiteComparison| -> String {
        ScatterChart::new(title, "workload FLOPs", "speedup over vendor")
            .with_series(Series::new(
                "MikPoly",
                '*',
                cmp.flops
                    .iter()
                    .copied()
                    .zip(cmp.speedups[1].iter().copied())
                    .collect(),
            ))
            .with_series(Series::new(
                "CUTLASS",
                '.',
                cmp.flops
                    .iter()
                    .copied()
                    .zip(cmp.speedups[2].iter().copied())
                    .collect(),
            ))
            .render()
    };
    println!("{}", scatter("Fig. 6 (GEMM): speedup over cuBLAS", &gemm));
    println!("{}", scatter("Fig. 6 (conv): speedup over cuDNN", &conv));

    report.headline(
        "GEMM mean speedup vs cuBLAS (paper: 1.47)",
        mean(&gemm.speedups[1]),
    );
    report.headline(
        "GEMM max speedup vs cuBLAS (paper: 4.82)",
        crate::report::max(&gemm.speedups[1]),
    );
    report.headline(
        "conv mean speedup vs cuDNN (paper: 1.98)",
        mean(&conv.speedups[1]),
    );
    report.headline(
        "conv max speedup vs cuDNN (paper: 5.38)",
        crate::report::max(&conv.speedups[1]),
    );
    let vs = |mik: &[f64], cut: &[f64]| {
        let r: Vec<f64> = mik.iter().zip(cut).map(|(m, c)| m / c).collect();
        mean(&r)
    };
    report.headline(
        "GEMM mean speedup vs CUTLASS (paper: 3.02)",
        vs(&gemm.speedups[1], &gemm.speedups[2]),
    );
    report.headline(
        "conv mean speedup vs CUTLASS (paper: 1.72)",
        vs(&conv.speedups[1], &conv.speedups[2]),
    );
    vec![report, detail]
}
