//! Table 5: end-to-end language models vs DietCode and Nimble on CUDA
//! cores, with 150 random sentence lengths in [5, 500]. Paper headline:
//! MikPoly outperforms DietCode (the best existing method) by 1.55x on
//! average, and DietCode/Nimble produce numerous invalid runs while
//! MikPoly has zero.
//!
//! Range declaration: DietCode and Nimble need every dynamic dimension's
//! range up front. As a realistic deployment choice, the ranges here are
//! profiled from sentence lengths up to 256 (the BERT-family default
//! maximum); runtime sentences beyond that produce out-of-range shapes —
//! the invalid runs the paper reports.

use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, DietCode, GemmRanges, MikPolyBackend, Nimble};
use mikpoly_models::{ModelGraph, TransformerConfig};
use mikpoly_workloads::sentence_lengths;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Declared ranges profiled from lengths `5..=256`.
fn profiled_ranges(cfg: &TransformerConfig) -> GemmRanges {
    let mut m = (usize::MAX, 0usize);
    let mut n = (usize::MAX, 0usize);
    let mut k = (usize::MAX, 0usize);
    for len in [5usize, 64, 128, 192, 256] {
        for op in &cfg.graph(1, len).ops {
            let s = op.operator.gemm_view().shape;
            m = (m.0.min(s.m), m.1.max(s.m));
            n = (n.0.min(s.n), n.1.max(s.n));
            k = (k.0.min(s.k), k.1.max(s.k));
        }
    }
    GemmRanges { m, n, k }
}

/// End-to-end latency, or `None` if any operator is an invalid run.
fn latency(graph: &ModelGraph, backend: &dyn Backend) -> Option<f64> {
    let mut total = 0.0;
    for op in &graph.ops {
        match backend.run(&op.operator) {
            Ok(run) => {
                total += run.report.time_ns * op.count as f64
                    + run.overhead_ns / crate::runner::RUNS_AVERAGED
            }
            Err(_) => return None,
        }
    }
    Some(total)
}

/// Runs Table 5.
pub fn run(h: &Harness) -> Vec<Report> {
    let cc = h.gpu_cuda_cores();
    let mik = MikPolyBackend::new(h.compiler(&cc, TemplateKind::Gemm));
    let lengths: Vec<usize> = h.config.subsample(&sentence_lengths());

    let mut report = Report::new(
        "tab5",
        "End-to-end language models vs DietCode/Nimble on CUDA cores",
        &[
            "model",
            "MikPoly vs DietCode",
            "MikPoly vs Nimble",
            "DietCode invalid",
            "Nimble invalid",
            "MikPoly invalid",
        ],
    );

    let mut all_vs_dietcode = Vec::new();
    for cfg in TransformerConfig::evaluation_set() {
        let ranges = profiled_ranges(&cfg);
        let dietcode = DietCode::compile(cc.clone(), ranges);
        let nimble = Nimble::compile(cc.clone(), ranges);
        let mut vs_d = Vec::new();
        let mut vs_n = Vec::new();
        let (mut inv_d, mut inv_n, mut inv_m) = (0usize, 0usize, 0usize);
        for &len in &lengths {
            let graph = cfg.graph(1, len);
            let m_ns = latency(&graph, &mik).unwrap_or_else(|| {
                inv_m += 1;
                f64::NAN
            });
            match latency(&graph, &dietcode) {
                Some(d) => vs_d.push(d / m_ns),
                None => inv_d += 1,
            }
            match latency(&graph, &nimble) {
                Some(nb) => vs_n.push(nb / m_ns),
                None => inv_n += 1,
            }
        }
        all_vs_dietcode.extend(vs_d.iter().copied());
        report.push_row(vec![
            cfg.name.clone(),
            format!("{:.2}", mean(&vs_d)),
            format!("{:.2}", mean(&vs_n)),
            inv_d.to_string(),
            inv_n.to_string(),
            inv_m.to_string(),
        ]);
    }
    report.headline(
        "mean speedup over DietCode, valid runs (paper: 1.55)",
        mean(&all_vs_dietcode),
    );
    vec![report]
}
