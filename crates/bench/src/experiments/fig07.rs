//! Figure 7: dynamic-shape GEMM and convolution on the NPU — MikPoly vs
//! CANN. Paper headlines: 1.10x (GEMM) and 1.41x (convolution) on average.

use mikpoly::TemplateKind;
use mikpoly_baselines::{MikPolyBackend, VendorLibrary};
use tensor_ir::Operator;

use crate::experiments::SuiteComparison;
use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 7.
pub fn run(h: &Harness) -> Vec<Report> {
    let npu = h.npu();
    let mut report = Report::new(
        "fig7",
        "NPU dynamic-shape operators (speedups over CANN)",
        &["suite", "system", "mean", "geomean", "max"],
    );
    let cann = VendorLibrary::cann(npu.clone());

    let gemm_cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::gemm_suite())
        .into_iter()
        .map(|c| Operator::gemm(c.shape))
        .collect();
    let mik_gemm = MikPolyBackend::new(h.compiler(&npu, TemplateKind::Gemm));
    let gemm = SuiteComparison::run(&gemm_cases, &cann, &[&mik_gemm]);
    gemm.summarize(&mut report, "GEMM");

    let conv_cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::conv_suite())
        .into_iter()
        .map(|c| Operator::conv2d(c.shape))
        .collect();
    let mik_conv = MikPolyBackend::new(h.compiler(&npu, TemplateKind::Conv));
    let conv = SuiteComparison::run(&conv_cases, &cann, &[&mik_conv]);
    conv.summarize(&mut report, "conv");

    report.headline(
        "GEMM mean speedup vs CANN (paper: 1.10)",
        mean(&gemm.speedups[1]),
    );
    report.headline(
        "conv mean speedup vs CANN (paper: 1.41)",
        mean(&conv.speedups[1]),
    );
    report.headline(
        "GEMM max speedup vs CANN (paper: up to 11.05 'peak')",
        crate::report::max(&gemm.speedups[1]),
    );
    vec![report]
}
