//! Figure 9: end-to-end CNN inference on the GPU across batch sizes
//! `2^0..2^7` and resolutions `64..640`. Paper headlines: 1.34x (AlexNet),
//! 1.69x (GoogLeNet), 1.59x (ResNet), 1.22x (VGG) over cuDNN/cuBLAS.

use mikpoly::TemplateKind;
use mikpoly_baselines::{CutlassLibrary, MikPolyBackend, VendorLibrary};
use mikpoly_models::CnnConfig;
use mikpoly_workloads::cnn_sweep;

use crate::chart::BarChart;
use crate::report::mean;
use crate::runner::model_latency_ns;
use crate::setup::Harness;
use crate::Report;

/// Runs Figure 9.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let cublas = VendorLibrary::cublas(gpu.clone());
    let cudnn = VendorLibrary::cudnn(gpu.clone());
    let cutlass = CutlassLibrary::new(gpu.clone());
    let mik_gemm = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let mik_conv = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Conv));

    let mut report = Report::new(
        "fig9",
        "End-to-end CNNs on GPU (speedup over cuDNN/cuBLAS baseline)",
        &[
            "model",
            "MikPoly mean",
            "CUTLASS mean",
            "MikPoly min",
            "MikPoly max",
        ],
    );
    // Every 4th config in quick mode; the full 8x10 grid otherwise.
    let sweep: Vec<(usize, usize)> = if h.config.stride > 1 {
        cnn_sweep().into_iter().step_by(4).collect()
    } else {
        cnn_sweep()
    };

    let mut chart = BarChart::new("Fig. 9: e2e CNNs (speedup over cuDNN/cuBLAS)");
    for cfg in CnnConfig::evaluation_set() {
        let mut mik_speedups = Vec::new();
        let mut cutlass_speedups = Vec::new();
        for &(batch, resolution) in &sweep {
            let graph = cfg.graph(batch, resolution);
            let base = model_latency_ns(&graph, &cublas, &cudnn).expect("vendor runs");
            let m = model_latency_ns(&graph, &mik_gemm, &mik_conv).expect("mikpoly runs");
            let c = model_latency_ns(&graph, &cutlass, &cutlass).expect("cutlass runs");
            mik_speedups.push(base / m);
            cutlass_speedups.push(base / c);
        }
        report.push_row(vec![
            cfg.name.clone(),
            format!("{:.2}", mean(&mik_speedups)),
            format!("{:.2}", mean(&cutlass_speedups)),
            format!(
                "{:.2}",
                mik_speedups.iter().copied().fold(f64::MAX, f64::min)
            ),
            format!("{:.2}", crate::report::max(&mik_speedups)),
        ]);
        let paper = match cfg.name.as_str() {
            "alexnet" => 1.34,
            "googlenet" => 1.69,
            "resnet18" => 1.59,
            _ => 1.22,
        };
        report.headline(
            format!("{} mean speedup (paper: {paper})", cfg.name),
            mean(&mik_speedups),
        );
        chart = chart.with_bar(cfg.name.clone(), mean(&mik_speedups));
    }
    println!("{}", chart.render());
    vec![report]
}
