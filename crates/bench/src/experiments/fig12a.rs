//! Figure 12(a): MikPoly's execution breakdown — on-the-fly polymerization
//! cost vs final tensor-program execution time, against cuBLAS and CUTLASS.
//! The paper observes the polymerization cost is a small fraction that
//! shrinks as shapes grow, and quotes ~2 microseconds of search per shape
//! vs ~1.6 seconds for the exhaustive Oracle.

use std::sync::Arc;

use mikpoly::{MikPoly, OnlineOptions, TemplateKind};
use mikpoly_baselines::{Backend, CutlassLibrary, VendorLibrary};
use mikpoly_workloads::overhead_shapes;
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

/// Runs Figure 12(a).
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    // Caching disabled so every call pays (and reports) the true online
    // polymerization cost.
    let compiler: Arc<MikPoly> = Arc::new(
        MikPoly::with_library(gpu.clone(), h.library(&gpu, TemplateKind::Gemm)).with_options(
            OnlineOptions {
                cache: false,
                ..OnlineOptions::default()
            },
        ),
    );
    let cublas = VendorLibrary::cublas(gpu.clone());
    let cutlass = CutlassLibrary::new(gpu.clone());

    let mut report = Report::new(
        "fig12a",
        "Online polymerization overhead breakdown (normalized to cuBLAS)",
        &[
            "(M, N, K)",
            "poly (us)",
            "exec (us)",
            "poly share",
            "vs cuBLAS",
            "vs CUTLASS",
            "strategies",
            "pruned",
        ],
    );
    let mut shares = Vec::new();
    for (m, n, k) in overhead_shapes() {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let run = compiler.run(&op);
        let base = cublas.run(&op).expect("vendor runs").total_ns();
        let cut = cutlass.run(&op).expect("cutlass runs").total_ns();
        let poly_ns = run.compile_ns as f64;
        let share = poly_ns / run.total_ns();
        shares.push(share);
        report.push_row(vec![
            format!("({m}, {n}, {k})"),
            format!("{:.1}", poly_ns / 1e3),
            format!("{:.1}", run.report.time_ns / 1e3),
            format!("{:.4}", share),
            format!("{:.2}", base / run.total_ns()),
            format!("{:.2}", cut / run.total_ns()),
            run.program.stats.strategies_evaluated.to_string(),
            run.program.stats.strategies_pruned.to_string(),
        ]);
    }
    report.headline(
        "max polymerization share of total time (paper: 'a small fraction')",
        crate::report::max(&shares),
    );
    // The shares must shrink as shapes grow.
    report.headline(
        "share on largest shape / share on smallest shape (< 1 expected)",
        shares.last().copied().unwrap_or(0.0) / shares.first().copied().unwrap_or(1.0),
    );
    vec![report]
}
