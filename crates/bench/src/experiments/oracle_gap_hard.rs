//! Hard-tier oracle-gap measurement: the before/after evidence for the
//! staged, occupancy-refined polymerization search.
//!
//! Runs the pinned hard corpus (`tests/corpus/hard-shapes.json` — the
//! shapes whose gap sat at 1.2–1.5 under the legacy Eq. 2-only selection)
//! under both the legacy and the default [`SearchPolicy`], measuring the
//! oracle gap and the online search-latency distribution of each. Emits
//! `results/oracle-gap-hard.json`; the headline gaps land in
//! `results/summary.json` like every other experiment.

use std::sync::Arc;

use mikpoly::{MikPoly, OnlineOptions, SearchPolicy, TemplateKind};
use mikpoly_conformance::{
    gap_for, load_corpus, summarize, ConformanceEnv, FuzzCase, GateConfig, MachineKind,
};

use crate::setup::{workspace_root, Harness};
use crate::Report;

/// Search repetitions per shape for the latency distribution.
const LATENCY_REPS: usize = 16;

fn variant(h: &Harness, policy: SearchPolicy) -> Arc<MikPoly> {
    let gpu = h.gpu();
    Arc::new(
        MikPoly::with_library(gpu.clone(), h.library(&gpu, TemplateKind::Gemm)).with_options(
            OnlineOptions {
                cache: false,
                search: policy,
                ..OnlineOptions::default()
            },
        ),
    )
}

/// Nearest-rank percentile of an unsorted sample set, in microseconds.
fn percentile_us(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    if samples.is_empty() {
        return f64::NAN;
    }
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1] / 1e3
}

/// Runs the hard-tier before/after sweep and writes
/// `results/oracle-gap-hard.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let corpus_path = workspace_root().join("tests/corpus/hard-shapes.json");
    let corpus: Vec<FuzzCase> = load_corpus(&corpus_path).expect("hard corpus must parse");
    assert!(!corpus.is_empty(), "hard corpus is empty");
    let gate = GateConfig::default();
    // The corpus is small, so the oracle can afford a cap high enough to
    // never truncate: a truncated oracle is weaker than the full
    // enumeration and flatters the model's gap.
    let cap = 1_000_000;

    let before = variant(h, SearchPolicy::legacy());
    let after = variant(h, SearchPolicy::default());

    let mut report = Report::new(
        "oracle-gap-hard",
        "Hard-shape oracle gap: legacy vs staged (occupancy-refined) search",
        &[
            "shape",
            "gap legacy",
            "gap staged",
            "search us legacy",
            "search us staged",
        ],
    );

    let mut samples_before = Vec::new();
    let mut samples_after = Vec::new();
    let mut lat_before = Vec::new();
    let mut lat_after = Vec::new();
    for case in &corpus {
        let b = gap_for(&before, MachineKind::Gpu, &case.op, cap);
        let a = gap_for(&after, MachineKind::Gpu, &case.op, cap);
        let op = case.op.operator();
        let mut shape_b = Vec::with_capacity(LATENCY_REPS);
        let mut shape_a = Vec::with_capacity(LATENCY_REPS);
        for _ in 0..LATENCY_REPS {
            shape_b.push(before.compile(&op).stats.search_ns as f64);
            shape_a.push(after.compile(&op).stats.search_ns as f64);
        }
        report.push_row(vec![
            format!("{}", op),
            format!("{:.3}", b.gap),
            format!("{:.3}", a.gap),
            format!(
                "{:.1}",
                shape_b.iter().sum::<f64>() / (1e3 * LATENCY_REPS as f64)
            ),
            format!(
                "{:.1}",
                shape_a.iter().sum::<f64>() / (1e3 * LATENCY_REPS as f64)
            ),
        ]);
        samples_before.push(b);
        samples_after.push(a);
        lat_before.extend(shape_b);
        lat_after.extend(shape_a);
    }

    // The same corpus at the conformance gate's library scale
    // (`OfflineOptions::fast`), where the legacy selection left 20-50% on
    // the table — the regression this corpus was pinned to prevent. The
    // paper-scale library above partially masks the Eq. 2 ranking error
    // with sheer kernel coverage; the gate library does not.
    let gate_legacy = ConformanceEnv::standard().with_online_options(OnlineOptions {
        cache: false,
        search: SearchPolicy::legacy(),
        ..OnlineOptions::default()
    });
    let gate_staged = ConformanceEnv::standard().with_online_options(OnlineOptions {
        cache: false,
        ..OnlineOptions::default()
    });
    let mut gate_before = Vec::new();
    let mut gate_after = Vec::new();
    for case in &corpus {
        gate_before.push(gap_for(
            gate_legacy.compiler_for(case),
            MachineKind::Gpu,
            &case.op,
            cap,
        ));
        gate_after.push(gap_for(
            gate_staged.compiler_for(case),
            MachineKind::Gpu,
            &case.op,
            cap,
        ));
    }
    let gate_sum_before = summarize(&gate_before);
    let gate_sum_after = summarize(&gate_after);

    let sum_before = summarize(&samples_before);
    let sum_after = summarize(&samples_after);
    let lat = |v: &mut Vec<f64>| (percentile_us(v, 0.50), percentile_us(v, 0.95));
    let (b_p50, b_p95) = lat(&mut lat_before);
    let (a_p50, a_p95) = lat(&mut lat_after);

    report.headline("hard-corpus gap p95, legacy search", sum_before.p95);
    report.headline(
        format!(
            "hard-corpus gap p95, staged search (gate: <= {:.2})",
            gate.threshold_p95
        ),
        sum_after.p95,
    );
    report.headline("hard-corpus gap max, staged search", sum_after.max);
    report.headline(
        "hard-corpus gap p95, legacy search, gate library",
        gate_sum_before.p95,
    );
    report.headline(
        "hard-corpus gap p95, staged search, gate library",
        gate_sum_after.p95,
    );
    report.headline("search latency p95 us, staged search", a_p95);
    report.headline(
        "search latency p95 ratio, staged vs legacy (accept: <= 2.0)",
        a_p95 / b_p95.max(1e-9),
    );

    let artifact = serde_json::json!({
        "machine": "gpu",
        "corpus": "tests/corpus/hard-shapes.json",
        "candidate_cap": cap,
        "threshold_p95": gate.threshold_p95,
        "before": {
            "policy": "legacy",
            "summary": serde_json::to_value(&sum_before).expect("summary json"),
            "samples": serde_json::to_value(&samples_before).expect("samples json"),
            "search_latency_us": { "p50": b_p50, "p95": b_p95 },
        },
        "after": {
            "policy": "default (staged, occupancy-refined)",
            "summary": serde_json::to_value(&sum_after).expect("summary json"),
            "samples": serde_json::to_value(&samples_after).expect("samples json"),
            "search_latency_us": { "p50": a_p50, "p95": a_p95 },
        },
        "gate_library": {
            "offline": "fast (ConformanceEnv::standard)",
            "before": {
                "policy": "legacy",
                "summary": serde_json::to_value(&gate_sum_before).expect("summary json"),
                "samples": serde_json::to_value(&gate_before).expect("samples json"),
            },
            "after": {
                "policy": "default (staged, occupancy-refined)",
                "summary": serde_json::to_value(&gate_sum_after).expect("summary json"),
                "samples": serde_json::to_value(&gate_after).expect("samples json"),
            },
        },
    });
    let path = h.config.results_dir.join("oracle-gap-hard.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }
    vec![report]
}
