//! Ablation: the pattern-set choice of Section 4. The paper restricts GPUs
//! to Patterns I–II "based on their optimal balance of runtime overhead and
//! operator performance" and uses all nine on NPUs. This experiment
//! measures both halves of that trade-off on both machines: device-time
//! quality and polymerization latency per pattern set.

use std::sync::Arc;

use accel_sim::MachineModel;
use mikpoly::{all_patterns, MikPoly, OnlineOptions, TemplateKind};
use tensor_ir::Operator;

use crate::report::{geomean, max, mean};
use crate::setup::Harness;
use crate::Report;

fn variant(h: &Harness, machine: &MachineModel, patterns: usize, n_mik: usize) -> Arc<MikPoly> {
    let mut lean = crate::setup::Harness::new(h.config.clone());
    lean.config.offline.n_mik = n_mik;
    Arc::new(
        MikPoly::with_library(machine.clone(), lean.library(machine, TemplateKind::Gemm))
            .with_options(OnlineOptions {
                patterns: Some(all_patterns().into_iter().take(patterns).collect()),
                cache: false,
                ..OnlineOptions::default()
            }),
    )
}

/// Runs the pattern-set ablation.
pub fn run(h: &Harness) -> Vec<Report> {
    let stride = (h.config.stride * 8).clamp(8, 100);
    let mut cases: Vec<Operator> = mikpoly_workloads::gemm_suite()
        .into_iter()
        .step_by(stride)
        .map(|c| Operator::gemm(c.shape))
        .collect();
    // Split-friendly shapes (tail waves just past a wave boundary), where
    // polymerization has the most to offer — the Fig. 15 regime.
    for m in [3584usize, 4096, 2304, 6400] {
        cases.push(Operator::gemm(tensor_ir::GemmShape::new(m, 1024, 4096)));
    }

    let mut report = Report::new(
        "abl-patterns",
        "Pattern-set ablation: device-time quality vs polymerization latency",
        &[
            "machine",
            "n_mik",
            "patterns",
            "rel. perf vs I only",
            "geomean",
            "max gain",
            "search us (mean)",
        ],
    );
    // Two library sizes: the paper's 40-kernel coverage library (where
    // Pattern I with the right kernel already captures most wins) and a
    // lean 4-kernel library (where multi-kernel polymerization must make up
    // for missing tile sizes — the regime the Fig. 3/15 examples live in).
    for (machine, n_mik) in [
        (h.gpu(), h.config.offline.n_mik),
        (h.npu(), h.config.offline.n_mik),
        (h.gpu(), 4),
        (h.npu(), 4),
    ] {
        // Baseline: Pattern I only.
        let base = variant(h, &machine, 1, n_mik);
        let base_ns: Vec<f64> = cases.iter().map(|op| base.run(op).report.time_ns).collect();
        for patterns in [1usize, 2, 5, 9] {
            let compiler = variant(h, &machine, patterns, n_mik);
            let mut rel = Vec::new();
            let mut search_us = Vec::new();
            for (op, &b) in cases.iter().zip(&base_ns) {
                let run = compiler.run(op);
                rel.push(b / run.report.time_ns);
                search_us.push(run.program.stats.search_ns as f64 / 1e3);
            }
            report.push_row(vec![
                machine.name.clone(),
                n_mik.to_string(),
                format!("I..{patterns}"),
                format!("{:.3}", mean(&rel)),
                format!("{:.3}", geomean(&rel)),
                format!("{:.2}", max(&rel)),
                format!("{:.1}", mean(&search_us)),
            ]);
            if patterns == 2 && machine.allocation == accel_sim::AllocationPolicy::DynamicHardware {
                report.headline(
                    format!("GPU gain of Pattern II over I alone (n_mik {n_mik})"),
                    mean(&rel),
                );
            }
            if patterns == 9
                && machine.allocation == accel_sim::AllocationPolicy::StaticCompilerAssigned
            {
                report.headline(
                    format!("NPU gain of Patterns I-IX over I alone (n_mik {n_mik})"),
                    mean(&rel),
                );
            }
        }
    }
    vec![report]
}
