//! Ablation: the online search heuristics (Algorithm 1's narrowing).
//! Compares the heuristic branch-and-bound search against exhaustive
//! cost-model enumeration (pruning off) on both quality (selected-program
//! device time) and search latency — quantifying what the pruning margin,
//! kernel shortlist and descent budget give up, which DESIGN.md bounds at a
//! few percent.

use std::sync::Arc;

use accel_sim::MachineModel;
use mikpoly::telemetry::Telemetry;
use mikpoly::{MikPoly, OnlineOptions, TemplateKind};
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

fn variant(
    h: &Harness,
    machine: &MachineModel,
    prune: bool,
    telemetry: &Arc<Telemetry>,
) -> Arc<MikPoly> {
    Arc::new(
        MikPoly::with_library(machine.clone(), h.library(machine, TemplateKind::Gemm))
            .with_options(OnlineOptions {
                prune,
                cache: false,
                ..OnlineOptions::default()
            })
            .with_telemetry(Arc::clone(telemetry)),
    )
}

/// Runs the search-heuristics ablation.
pub fn run(h: &Harness) -> Vec<Report> {
    let stride = (h.config.stride * 8).clamp(8, 100);
    let cases: Vec<Operator> = mikpoly_workloads::gemm_suite()
        .into_iter()
        .step_by(stride)
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let mut report = Report::new(
        "abl-search",
        "Search-heuristics ablation: heuristic B&B vs exhaustive cost-model enumeration",
        &[
            "machine",
            "quality vs exhaustive (mean)",
            "quality (worst case)",
            "search us heuristic",
            "search us exhaustive",
            "strategies heuristic",
            "strategies exhaustive",
        ],
    );
    for machine in [h.gpu(), h.npu()] {
        // Each variant reports into its own telemetry registry: the
        // compiler's search path records `search.*` counters and the
        // `online.search_ns` histogram as it runs, so the ablation reads
        // search efficiency off the registry instead of re-summing
        // per-program `SearchStats` by hand.
        let h_tel = Telemetry::enabled();
        let e_tel = Telemetry::enabled();
        let heuristic = variant(h, &machine, true, &h_tel);
        let exhaustive = variant(h, &machine, false, &e_tel);
        let mut quality = Vec::new();
        for op in &cases {
            let a = heuristic.run(op);
            let b = exhaustive.run(op);
            quality.push(b.report.time_ns / a.report.time_ns);
        }
        let h_snap = h_tel.registry().snapshot();
        let e_snap = e_tel.registry().snapshot();
        // Caching is off, so every request polymerizes: the registry must
        // have seen exactly one search per case.
        assert_eq!(
            h_snap.counter("search.shapes"),
            Some(cases.len() as u64),
            "one recorded search per case with the cache disabled"
        );
        // The staged-search stage counters must be present (zero is fine —
        // the default budget rarely exhausts on this suite) and coherent:
        // escalations only happen on budget-exhausted rounds, and the
        // exhaustive variant (pruning off, unlimited budget) never
        // escalates.
        let h_exhausted = h_snap.counter("search.budget_exhausted").unwrap_or(0);
        let h_escalations = h_snap.counter("search.escalations").unwrap_or(0);
        assert!(
            h_escalations <= h_exhausted,
            "escalations ({h_escalations}) without budget exhaustion ({h_exhausted})"
        );
        assert_eq!(
            e_snap.counter("search.escalations").unwrap_or(0),
            0,
            "the exhaustive variant has no budget to escalate"
        );
        // Refinement changes at most one pick per searched shape, and
        // shortlist truncation only arises on deep (3+ region) patterns.
        let h_refined = h_snap.counter("search.refined").unwrap_or(0);
        assert!(h_refined <= cases.len() as u64);
        let h_truncated = h_snap.counter("search.shortlist_truncated").unwrap_or(0);
        if machine.name.contains("a100") {
            assert_eq!(h_truncated, 0, "GPU patterns I-II never cut the shortlist");
        }
        let mean_search_us = |snap: &mikpoly::telemetry::MetricsSnapshot| {
            snap.histogram("online.search_ns")
                .map(|s| s.mean_ns / 1e3)
                .unwrap_or(0.0)
        };
        let (h_us, e_us) = (mean_search_us(&h_snap), mean_search_us(&e_snap));
        let h_strats = h_snap.counter("search.strategies_evaluated").unwrap_or(0);
        let e_strats = e_snap.counter("search.strategies_evaluated").unwrap_or(0);
        let worst = quality.iter().copied().fold(f64::MAX, f64::min);
        report.push_row(vec![
            machine.name.clone(),
            format!("{:.3}", mean(&quality)),
            format!("{:.3}", worst),
            format!("{:.1}", h_us),
            format!("{:.1}", e_us),
            h_strats.to_string(),
            e_strats.to_string(),
        ]);
        report.headline(
            format!(
                "{}: mean quality of heuristic vs exhaustive (1.0 = equal)",
                machine.name
            ),
            mean(&quality),
        );
        report.headline(
            format!("{}: search speedup from the heuristics", machine.name),
            e_us / h_us.max(1e-9),
        );
    }
    vec![report]
}
