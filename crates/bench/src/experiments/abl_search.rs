//! Ablation: the online search heuristics (Algorithm 1's narrowing).
//! Compares the heuristic branch-and-bound search against exhaustive
//! cost-model enumeration (pruning off) on both quality (selected-program
//! device time) and search latency — quantifying what the pruning margin,
//! kernel shortlist and descent budget give up, which DESIGN.md bounds at a
//! few percent.

use std::sync::Arc;

use accel_sim::MachineModel;
use mikpoly::{MikPoly, OnlineOptions, TemplateKind};
use tensor_ir::Operator;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

fn variant(h: &Harness, machine: &MachineModel, prune: bool) -> Arc<MikPoly> {
    Arc::new(
        MikPoly::with_library(machine.clone(), h.library(machine, TemplateKind::Gemm))
            .with_options(OnlineOptions {
                prune,
                cache: false,
                ..OnlineOptions::default()
            }),
    )
}

/// Runs the search-heuristics ablation.
pub fn run(h: &Harness) -> Vec<Report> {
    let stride = (h.config.stride * 8).clamp(8, 100);
    let cases: Vec<Operator> = mikpoly_workloads::gemm_suite()
        .into_iter()
        .step_by(stride)
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let mut report = Report::new(
        "abl-search",
        "Search-heuristics ablation: heuristic B&B vs exhaustive cost-model enumeration",
        &[
            "machine",
            "quality vs exhaustive (mean)",
            "quality (worst case)",
            "search us heuristic",
            "search us exhaustive",
            "strategies heuristic",
            "strategies exhaustive",
        ],
    );
    for machine in [h.gpu(), h.npu()] {
        let heuristic = variant(h, &machine, true);
        let exhaustive = variant(h, &machine, false);
        let mut quality = Vec::new();
        let (mut h_us, mut e_us) = (Vec::new(), Vec::new());
        let (mut h_strats, mut e_strats) = (0usize, 0usize);
        for op in &cases {
            let a = heuristic.run(op);
            let b = exhaustive.run(op);
            quality.push(b.report.time_ns / a.report.time_ns);
            h_us.push(a.program.stats.search_ns as f64 / 1e3);
            e_us.push(b.program.stats.search_ns as f64 / 1e3);
            h_strats += a.program.stats.strategies_evaluated;
            e_strats += b.program.stats.strategies_evaluated;
        }
        let worst = quality.iter().copied().fold(f64::MAX, f64::min);
        report.push_row(vec![
            machine.name.clone(),
            format!("{:.3}", mean(&quality)),
            format!("{:.3}", worst),
            format!("{:.1}", mean(&h_us)),
            format!("{:.1}", mean(&e_us)),
            h_strats.to_string(),
            e_strats.to_string(),
        ]);
        report.headline(
            format!(
                "{}: mean quality of heuristic vs exhaustive (1.0 = equal)",
                machine.name
            ),
            mean(&quality),
        );
        report.headline(
            format!("{}: search speedup from the heuristics", machine.name),
            mean(&e_us) / mean(&h_us).max(1e-9),
        );
    }
    vec![report]
}
