//! Program-cache benchmark: hit-path scaling, hit latency, and
//! restart-to-warm time.
//!
//! Map-bench style (fixed workloads, several implementations): drives
//! two Zipfian workloads — a steady-state **hit-path** phase where every
//! key is resident and every timed operation is a pure read, and a
//! **churn** phase whose cold tail keeps the capacity bound evicting —
//! through two cache implementations:
//!
//! * **lock-free** — `mikpoly::ShardedCache`: generation-swapped read
//!   maps with thread-local snapshots (a steady-state hit takes no lock),
//!   single-flight fills, segmented-LRU eviction;
//! * **locked-fifo** — the pre-PR-6 design, reconstructed here as the
//!   baseline: sharded `RwLock<HashMap>` hits, a global `Mutex` FIFO
//!   order list, and an eviction loop that rescans every shard per
//!   iteration.
//!
//! Reported per thread count: aggregate throughput, scaling vs. one
//! thread, and the lock-free/locked ratio. **Honesty note**: wall-clock
//! thread scaling is bounded by the host's core count, which this
//! container pins at 1 — the artifact records `host_cpus` so the scaling
//! numbers are read against the machine that produced them (on a 1-CPU
//! host the lock-free ceiling is ~1.0x; the implementation comparison
//! and the single-thread hit cost are the meaningful signals there).
//! Also measured: per-hit latency percentiles on a fully warmed cache,
//! and restart-to-warm time for a 10k-program cache through the binary
//! bundle format (budget: 100 ms) vs. the legacy JSON format. Emits
//! `results/cache-bench.json`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mikpoly::{
    encode_bundle, CompiledProgram, MikPoly, PatternId, Region, ShardedCache, TemplateKind,
};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

const SEED: u64 = 0xCAC4E;

/// Zipfian sampler over ranks `0..n` (probability ∝ `1/(r+1)^theta`).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }
}

/// The workload's view of a cache: one get-or-fill operation.
trait BenchCache: Send + Sync {
    fn get_or_fill(&self, key: u64) -> u64;
}

impl BenchCache for ShardedCache<u64, u64> {
    fn get_or_fill(&self, key: u64) -> u64 {
        *self.get_or_compute(&key, || key.wrapping_mul(2)).0
    }
}

/// The pre-lock-free design, reconstructed faithfully as the measurement
/// baseline: `Arc`-held values behind sharded `RwLock<HashMap>`s, every
/// hit taking a shard read lock plus a `fetch_add` on a *shared*
/// (unstriped) hit counter; a capacity bound kept by a global `Mutex`
/// FIFO order list whose eviction loop re-scans every shard per
/// iteration — exactly the costs the rewrite removed. (The old design's
/// single-flight machinery is elided: both designs share it unchanged,
/// and with an inline fill closure it never engages single-threaded.)
struct LockedFifoCache {
    shards: Vec<RwLock<HashMap<u64, std::sync::Arc<u64>>>>,
    order: Mutex<VecDeque<u64>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LockedFifoCache {
    fn new(capacity: usize) -> Self {
        Self {
            shards: (0..16).map(|_| RwLock::new(HashMap::new())).collect(),
            order: Mutex::new(VecDeque::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, std::sync::Arc<u64>>> {
        // The old design selected shards by hashing the key with
        // `DefaultHasher`, same as the new one — keep that cost in.
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

impl BenchCache for LockedFifoCache {
    fn get_or_fill(&self, key: u64) -> u64 {
        if let Some(v) = self.shard(key).read().get(&key) {
            let v = std::sync::Arc::clone(v);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = key.wrapping_mul(2);
        self.shard(key)
            .write()
            .insert(key, std::sync::Arc::new(value));
        let mut order = self.order.lock();
        order.push_back(key);
        // The old enforce_capacity: a full 16-shard scan per loop
        // iteration, all under the order lock.
        while self.len() > self.capacity {
            let Some(victim) = order.pop_front() else {
                break;
            };
            self.shard(victim).write().remove(&victim);
        }
        value
    }
}

/// Aggregate Zipfian throughput (ops/s) of `threads` threads over `ops`
/// total operations. `prewarm` keys are filled (single-threaded, outside
/// the timed region) before the clock starts; with the sampled key space
/// inside `prewarm` the timed run is a pure steady-state hit workload.
fn throughput(
    cache: &dyn BenchCache,
    zipf: &Zipf,
    threads: usize,
    ops: usize,
    prewarm: usize,
) -> f64 {
    for k in 0..prewarm as u64 {
        cache.get_or_fill(k);
    }
    let per_thread = ops / threads;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E37_79B9));
                for _ in 0..per_thread {
                    let k = zipf.sample(&mut rng) as u64;
                    assert_eq!(cache.get_or_fill(k), k.wrapping_mul(2));
                }
            });
        }
    });
    (per_thread * threads) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Single-thread per-hit latency samples (ns) on a fully warmed cache:
/// every key is resident, so each sample is a pure hit-path traversal.
fn hit_latency_ns(cache: &dyn BenchCache, hot_keys: usize, samples: usize) -> Vec<f64> {
    for k in 0..hot_keys as u64 {
        cache.get_or_fill(k);
    }
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let k = rng.gen_range(0..hot_keys as u64);
        let t0 = Instant::now();
        let v = cache.get_or_fill(k);
        out.push(t0.elapsed().as_nanos() as f64);
        assert_eq!(v, k.wrapping_mul(2));
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Synthesizes `n` distinct single-region programs from a real library —
/// a production-sized warm-restart payload without `n` searches.
fn synthetic_programs(compiler: &MikPoly, n: usize) -> Vec<CompiledProgram> {
    let kernels: Vec<_> = compiler
        .library()
        .kernels
        .iter()
        .map(|t| t.kernel)
        .collect();
    (0..n)
        .map(|i| {
            let shape = GemmShape::new(8 + i, 64 + (i % 64), 32 + (i % 32));
            let operator = Operator::gemm(shape);
            CompiledProgram {
                operator,
                view: operator.gemm_view(),
                pattern: PatternId(1),
                regions: vec![Region::new(
                    0,
                    shape.m,
                    0,
                    shape.n,
                    kernels[i % kernels.len()],
                )],
                split_k: 1,
                predicted_ns: 1_000.0 + i as f64,
                stats: Default::default(),
            }
        })
        .collect()
}

/// Runs the cache study and writes `results/cache-bench.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let quick = h.config.stride > 1;
    let keys = if quick { 1024 } else { 4096 };
    let capacity = keys / 4;
    let ops = if quick { 40_000 } else { 400_000 };
    let latency_samples = if quick { 20_000 } else { 100_000 };
    let restart_entries = if quick { 2_000 } else { 10_000 };
    let legacy_entries = if quick { 100 } else { 500 };
    let thread_counts = [1usize, 2, 4, 8];
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Phase 1 — steady-state hit path (the tentpole's target): the cache
    // is pre-warmed with a resident set inside capacity and every timed
    // operation is a hit, so the sweep isolates pure read-path cost.
    // Phase 2 — churn: Zipfian traffic over 4x capacity, so the tail
    // keeps the fill and eviction paths busy. A fresh cache per
    // (implementation, thread count, phase) keeps runs independent.
    let hot_zipf = Zipf::new(capacity, 1.05);
    let churn_zipf = Zipf::new(keys, 1.05);
    let mut hit_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut churn_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut churn_hit_rate = 0.0;
    for &threads in &thread_counts {
        let lock_free: ShardedCache<u64, u64> = ShardedCache::bounded(capacity);
        let lf = throughput(&lock_free, &hot_zipf, threads, ops, capacity);
        let locked = LockedFifoCache::new(capacity);
        let lk = throughput(&locked, &hot_zipf, threads, ops, capacity);
        hit_rows.push((threads, lf, lk));

        let lock_free: ShardedCache<u64, u64> = ShardedCache::bounded(capacity);
        let lf = throughput(&lock_free, &churn_zipf, threads, ops, 0);
        lock_free
            .check_invariants()
            .unwrap_or_else(|e| panic!("cache invariant violated at {threads} threads: {e}"));
        churn_hit_rate = lock_free.stats().hit_rate();
        let locked = LockedFifoCache::new(capacity);
        let lk = throughput(&locked, &churn_zipf, threads, ops, 0);
        churn_rows.push((threads, lf, lk));
    }
    let base_lf = hit_rows[0].1;
    let last = hit_rows[hit_rows.len() - 1];
    let scaling_8t = last.1 / base_lf;
    let vs_locked_8t = last.1 / last.2;

    // Hit-latency percentiles on warmed caches (hot set within capacity,
    // so every sampled op is a hit).
    let hot = capacity / 2;
    let lf_cache: ShardedCache<u64, u64> = ShardedCache::bounded(capacity);
    let mut lf_lat = hit_latency_ns(&lf_cache, hot, latency_samples);
    lf_lat.sort_by(|a, b| a.total_cmp(b));
    let lk_cache = LockedFifoCache::new(capacity);
    let mut lk_lat = hit_latency_ns(&lk_cache, hot, latency_samples);
    lk_lat.sort_by(|a, b| a.total_cmp(b));
    let lf_p50 = percentile(&lf_lat, 50.0);
    let lf_p99 = percentile(&lf_lat, 99.0);
    let lk_p99 = percentile(&lk_lat, 99.0);

    // Restart-to-warm: a synthetic production-sized cache through the
    // binary bundle, and the legacy JSON format on a smaller bundle (the
    // vendored JSON parser is superlinear — which is the point of the
    // binary format).
    let gpu = h.gpu();
    let warm_src = h.compiler(&gpu, TemplateKind::Gemm);
    let programs = synthetic_programs(&warm_src, restart_entries);
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let bin_path = dir.join(format!("mikpoly-bench-cache-{tag}.mpac"));
    let json_path = dir.join(format!("mikpoly-bench-cache-{tag}.json"));
    std::fs::write(&bin_path, encode_bundle(programs.iter())).expect("write bundle");
    let loader = MikPoly::with_library(gpu.clone(), warm_src.library().clone());
    let t0 = Instant::now();
    let restored = loader.load_program_cache(&bin_path).expect("binary load");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(restored, restart_entries, "binary bundle lost programs");

    let legacy_src = MikPoly::with_library(gpu.clone(), warm_src.library().clone());
    std::fs::write(
        &bin_path,
        encode_bundle(programs.iter().take(legacy_entries)),
    )
    .expect("write subset");
    legacy_src
        .load_program_cache(&bin_path)
        .expect("subset load");
    legacy_src
        .save_program_cache_json(&json_path)
        .expect("legacy save");
    let legacy_loader = MikPoly::with_library(gpu, warm_src.library().clone());
    let t0 = Instant::now();
    let legacy_restored = legacy_loader
        .load_program_cache(&json_path)
        .expect("legacy load");
    let legacy_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        legacy_restored, legacy_entries,
        "legacy bundle lost programs"
    );
    let legacy_ms_per_program = legacy_ms / legacy_entries as f64;
    let _ = std::fs::remove_file(&bin_path);
    let _ = std::fs::remove_file(&json_path);

    let mut report = Report::new(
        "cache-bench",
        "Program-cache: lock-free vs. locked-FIFO, Zipfian hit path and churn (extension)",
        &[
            "workload",
            "threads",
            "lock-free (ops/s)",
            "locked-fifo (ops/s)",
            "lock-free scaling",
            "vs locked",
        ],
    );
    for (label, rows) in [("hit-path", &hit_rows), ("churn", &churn_rows)] {
        let base = rows[0].1;
        for &(threads, lf, lk) in rows.iter() {
            report.push_row(vec![
                label.to_string(),
                threads.to_string(),
                format!("{lf:.0}"),
                format!("{lk:.0}"),
                format!("{:.2}x", lf / base),
                format!("{:.2}x", lf / lk),
            ]);
        }
    }
    report.headline(
        format!("hit-path 8-thread scaling ({host_cpus}-cpu host)"),
        scaling_8t,
    );
    report.headline(
        "hit-path lock-free / locked-fifo throughput at 8 threads",
        vs_locked_8t,
    );
    report.headline("hit p99, lock-free (ns)", lf_p99);
    report.headline(
        format!("restart-to-warm, {restart_entries} programs, binary (ms)"),
        warm_ms,
    );

    let artifact = serde_json::json!({
        "seed": SEED,
        "host_cpus": host_cpus,
        "workload": {
            "keys": keys,
            "capacity": capacity,
            "zipf_theta": 1.05,
            "ops_per_run": ops,
            "churn_hit_rate": churn_hit_rate,
        },
        "hit_path_throughput": hit_rows.iter().map(|(threads, lf, lk)| serde_json::json!({
            "threads": threads,
            "lock_free_ops_per_s": lf,
            "locked_fifo_ops_per_s": lk,
            "lock_free_scaling_vs_1t": lf / base_lf,
            "lock_free_vs_locked": lf / lk,
        })).collect::<Vec<_>>(),
        "churn_throughput": churn_rows.iter().map(|(threads, lf, lk)| serde_json::json!({
            "threads": threads,
            "lock_free_ops_per_s": lf,
            "locked_fifo_ops_per_s": lk,
            "lock_free_scaling_vs_1t": lf / churn_rows[0].1,
            "lock_free_vs_locked": lf / lk,
        })).collect::<Vec<_>>(),
        // Wall-clock scaling cannot exceed the host's parallelism; on the
        // 1-CPU container that produces this artifact the ceiling is
        // ~1.0x, and the cross-implementation ratio plus single-thread
        // hit cost carry the comparison instead. Churn fills publish a
        // copy-on-write shard snapshot per mutation — costlier per fill
        // than the old in-place insert by design; a production fill is a
        // full compile (milliseconds), so fill-path constant cost is
        // noise there while every hit saves a lock acquisition.
        "scaling_note": format!(
            "host has {host_cpus} cpu(s); ideal 8-thread scaling there is {:.1}x",
            (host_cpus.min(8)) as f64
        ),
        "hit_latency_ns": {
            "lock_free_p50": lf_p50,
            "lock_free_p99": lf_p99,
            "locked_fifo_p50": percentile(&lk_lat, 50.0),
            "locked_fifo_p99": lk_p99,
            "samples": latency_samples,
        },
        "restart_to_warm": {
            "binary_programs": restart_entries,
            "binary_ms": warm_ms,
            "binary_budget_ms": 100.0,
            "legacy_json_programs": legacy_entries,
            "legacy_json_ms": legacy_ms,
            "legacy_json_ms_per_program": legacy_ms_per_program,
        },
    });
    let path = h.config.results_dir.join("cache-bench.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }
    vec![report]
}
