//! Extension: simulator throughput gate — the event-driven core against
//! the frozen reference loop.
//!
//! PR 8 rebuilt the scheduler's hot loop around indexed admission and
//! cached completion events, with the old loop kept (behind the
//! `reference-sim` feature) as the bit-identity oracle. This experiment
//! is the standing performance gate for that rebuild: it times both
//! cores on the same workloads, writes `results/sim-throughput.json`,
//! and fails the run if the fast core's throughput falls below either
//!
//! * the **relative gate** — at least [`MIN_SPEEDUP`]x the reference
//!   loop measured in the same process, or
//! * the **absolute floor** — [`MIN_TASKS_PER_SEC`] simulated tasks per
//!   host second, 10x the pre-rebuild committed baseline of ~1.4M
//!   tasks/s recorded in `results/sim-profile.json` before the rebuild.
//!
//! Both gates apply only to full-fidelity runs (`stride == 1`): quick
//! runs shrink the workloads below the regime where fixed per-launch
//! costs amortize, so they report but do not gate.

use std::time::Instant;

use accel_sim::{
    simulate, simulate_reference, Launch, MachineModel, TaskGroup, TaskShape, TaskSpec, TimingMode,
};

use crate::setup::Harness;
use crate::Report;

/// Relative gate: fast core vs the reference loop, same process, same
/// workloads, best-of-N for both.
const MIN_SPEEDUP: f64 = 10.0;

/// Absolute floor in simulated tasks per host second — 10x the
/// pre-rebuild scan-loop baseline (~1.4M tasks/s).
const MIN_TASKS_PER_SEC: f64 = 14_000_000.0;

fn spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
    TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
}

fn workloads(m: &MachineModel, scale: usize) -> Vec<(&'static str, Launch)> {
    // The sim-profile cases at a larger grid, so per-launch fixed costs
    // amortize and the measurement reflects steady-state task flow.
    vec![
        (
            "full-waves-plus-tail",
            Launch::grid(spec(256, 128, 32, 8, 64), scale * m.num_pes + 1),
        ),
        (
            "co-resident-small-tiles",
            Launch::grid(spec(64, 64, 64, 4, 32), 2 * scale * m.num_pes),
        ),
        (
            "mixed-groups",
            Launch::from_groups(vec![
                TaskGroup::new(spec(256, 128, 32, 8, 64), scale * 96),
                TaskGroup::new(spec(64, 64, 64, 4, 32), scale * 256),
            ]),
        ),
    ]
}

/// Best-of-N wall time (ns) for one closure; N - warmups timed runs,
/// minimum taken, so a stray scheduler preemption cannot fail the gate.
fn best_of(reps: usize, warmups: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for i in 0..reps {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as u64;
        if i >= warmups {
            best = best.min(ns);
        }
    }
    best.max(1)
}

/// Runs the throughput gate and writes `results/sim-throughput.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let m = h.gpu();
    let full = h.config.stride == 1;
    let scale = if full { 64 } else { 8 };
    let reps = if full { 7 } else { 3 };
    let warmups = if full { 2 } else { 1 };
    let cases = workloads(&m, scale);

    let mut report = Report::new(
        "sim-throughput",
        "event core vs reference loop throughput (extension)",
        &[
            "workload",
            "tasks",
            "fast (us)",
            "reference (us)",
            "fast (Mtasks/s)",
            "speedup",
        ],
    );

    let mut rows_json = Vec::new();
    let mut total_tasks = 0u64;
    let mut fast_total_ns = 0u64;
    let mut ref_total_ns = 0u64;
    for (name, launch) in &cases {
        // Identical results are the equivalence suite's job; here the
        // reports are consumed only to keep the calls from being
        // optimized away.
        let fast_ns = best_of(reps, warmups, || {
            std::hint::black_box(simulate(&m, launch, TimingMode::Evaluate));
        });
        let ref_ns = best_of(reps, warmups, || {
            std::hint::black_box(simulate_reference(&m, launch, TimingMode::Evaluate));
        });
        let tasks = launch.grid_size() as u64;
        total_tasks += tasks;
        fast_total_ns += fast_ns;
        ref_total_ns += ref_ns;
        let fast_tps = tasks as f64 / (fast_ns as f64 / 1e9);
        report.push_row(vec![
            (*name).to_string(),
            tasks.to_string(),
            format!("{:.1}", fast_ns as f64 / 1e3),
            format!("{:.1}", ref_ns as f64 / 1e3),
            format!("{:.2}", fast_tps / 1e6),
            format!("{:.1}x", ref_ns as f64 / fast_ns as f64),
        ]);
        rows_json.push(serde_json::json!({
            "workload": *name,
            "tasks": tasks,
            "fast_ns": fast_ns,
            "reference_ns": ref_ns,
            "fast_tasks_per_sec": fast_tps,
            "speedup": ref_ns as f64 / fast_ns as f64,
        }));
    }

    let fast_tps = total_tasks as f64 / (fast_total_ns as f64 / 1e9);
    let ref_tps = total_tasks as f64 / (ref_total_ns as f64 / 1e9);
    let speedup = ref_total_ns as f64 / fast_total_ns as f64;
    report.headline("fast core, simulated tasks per host second", fast_tps);
    report.headline("reference loop, simulated tasks per host second", ref_tps);
    report.headline(
        format!("speedup over reference (gate >= {MIN_SPEEDUP}x on full runs)").as_str(),
        speedup,
    );

    let artifact = serde_json::json!({
        "machine": m.name,
        "gated": full,
        "min_speedup": MIN_SPEEDUP,
        "min_tasks_per_sec": MIN_TASKS_PER_SEC,
        "tasks": total_tasks,
        "fast_tasks_per_sec": fast_tps,
        "reference_tasks_per_sec": ref_tps,
        "speedup": speedup,
        "cases": rows_json,
    });
    let path = h.config.results_dir.join("sim-throughput.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }

    if full {
        assert!(
            speedup >= MIN_SPEEDUP,
            "fast core is only {speedup:.1}x the reference loop (gate {MIN_SPEEDUP}x)"
        );
        assert!(
            fast_tps >= MIN_TASKS_PER_SEC,
            "fast core throughput {fast_tps:.0} tasks/s is below the committed floor {MIN_TASKS_PER_SEC:.0}"
        );
    }
    vec![report]
}
