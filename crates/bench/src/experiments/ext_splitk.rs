//! Extension: split-K polymerization ("Pattern X", beyond the paper's
//! output-space-only skeleton).
//!
//! The paper's nine patterns partition the output, so a shape whose best
//! task grid has fewer tasks than PEs — small `M x N`, enormous `K`, common
//! in DeepBench's RNN/speech GEMMs — cannot fill the machine no matter
//! which kernels are polymerized. Splitting the reduction dimension across
//! replicated tasks (with a memory-bound pass combining the partial
//! outputs) multiplies the exploitable parallelism.

use std::sync::Arc;

use mikpoly::{MikPoly, OnlineOptions, TemplateKind};
use tensor_ir::Operator;

use crate::report::{geomean, max, mean};
use crate::setup::Harness;
use crate::Report;

/// Runs the split-K extension study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let library = h.library(&gpu, TemplateKind::Gemm);
    let base = Arc::new(MikPoly::with_library(gpu.clone(), library.clone()));
    let split = Arc::new(
        MikPoly::with_library(gpu.clone(), library).with_options(OnlineOptions {
            split_k: true,
            ..OnlineOptions::default()
        }),
    );

    let cases: Vec<Operator> = h
        .config
        .subsample(&mikpoly_workloads::gemm_suite())
        .into_iter()
        .map(|c| Operator::gemm(c.shape))
        .collect();

    let mut report = Report::new(
        "ext-splitk",
        "Split-K polymerization (extension): speedup over pattern-I..II MikPoly",
        &[
            "population",
            "cases",
            "fired",
            "mean speedup",
            "geomean",
            "max",
        ],
    );
    let mut all = Vec::new();
    let mut starved = Vec::new();
    let mut fired_all = 0usize;
    let mut fired_starved = 0usize;
    for op in &cases {
        let plain = base.run(op).report.time_ns;
        let with_split = split.run(op);
        let speedup = plain / with_split.report.time_ns;
        let fired = with_split.program.split_k > 1;
        fired_all += fired as usize;
        all.push(speedup);
        // The starved population: best plain grid smaller than the machine.
        if base.run(op).program.grid_size() < gpu.num_pes {
            starved.push(speedup);
            fired_starved += fired as usize;
        }
    }
    for (label, series, fired) in [
        ("all Table 3", &all, fired_all),
        ("grids smaller than |P_multi|", &starved, fired_starved),
    ] {
        if series.is_empty() {
            continue;
        }
        report.push_row(vec![
            label.to_string(),
            series.len().to_string(),
            fired.to_string(),
            format!("{:.2}", mean(series)),
            format!("{:.2}", geomean(series)),
            format!("{:.2}", max(series)),
        ]);
    }
    report.headline(
        "mean split-K speedup on machine-starved grids",
        mean(&starved),
    );
    report.headline("max split-K speedup", max(&all));
    report.headline(
        "fraction of all cases where split-K fired",
        fired_all as f64 / all.len() as f64,
    );
    vec![report]
}
