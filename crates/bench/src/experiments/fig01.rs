//! Figure 1: cuBLAS GEMM throughput varies wildly with shape.

use mikpoly_baselines::{Backend, VendorLibrary};
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

/// The figure's shape sweep: the two shapes called out in the text plus a
/// spread of compute-bound shapes of similar FLOP magnitude.
fn shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(4096, 4096, 4096),
        GemmShape::new(105, 1024, 12544),
        GemmShape::new(2048, 2048, 2048),
        GemmShape::new(8192, 1024, 4096),
        GemmShape::new(1024, 8192, 4096),
        GemmShape::new(512, 512, 65536),
        GemmShape::new(4000, 4000, 4000),
        GemmShape::new(4100, 4100, 4100),
        GemmShape::new(100, 10000, 10000),
        GemmShape::new(10000, 100, 10000),
        GemmShape::new(33, 3333, 33333),
        GemmShape::new(7000, 7000, 333),
    ]
}

/// Runs Figure 1.
pub fn run(h: &Harness) -> Vec<Report> {
    let cublas = VendorLibrary::cublas(h.gpu());
    let mut report = Report::new(
        "fig1",
        "cuBLAS GEMM throughput across shapes (paper: 262.2 vs 22.3 TFLOPS)",
        &["(M, N, K)", "GFLOPs", "time (us)", "TFLOPS"],
    );
    let mut best: f64 = 0.0;
    let mut worst = f64::INFINITY;
    for s in shapes() {
        let op = Operator::gemm(s);
        let run = cublas.run(&op).expect("vendor library always runs");
        // Throughput over *useful* FLOPs, as the paper reports it.
        let tflops = op.flops() / run.total_ns() / 1e3;
        best = best.max(tflops);
        worst = worst.min(tflops);
        report.push_row(vec![
            s.to_string(),
            format!("{:.1}", op.flops() / 1e9),
            format!("{:.1}", run.total_ns() / 1e3),
            format!("{tflops:.1}"),
        ]);
    }
    report.headline("best TFLOPS (paper: 262.2)", best);
    report.headline("worst TFLOPS (paper: 22.3)", worst);
    report.headline("best/worst ratio (paper: 11.8)", best / worst);
    vec![report]
}
