//! Section 6 case study (Figs. 14/15, Table 9): how polymerizing two
//! micro-kernels fixes GEMM-A's load imbalance on
//! `(M, N, K) = (4096, 1024, 4096)`.
//!
//! * `GEMM-A`: one kernel, `A = (256, 128, 32)` at 8 warps — 128 tasks on
//!   108 SMs, a nearly-idle second wave;
//! * `GEMM-B`: one kernel, `B = (64, 64, 64)` at 4 warps;
//! * `GEMM-AB` (Pattern II): `A` on the top 3072 rows (96 tasks, one full
//!   wave), `B` on the bottom 1024 rows.
//!
//! Paper: sm_efficiency drops from 86.67% (M=3072) to 58.90% (M=4096) for
//! GEMM-A while elapsed_cycles_sm grows 1.96x; GEMM-AB recovers the
//! efficiency and is 1.21x faster than GEMM-A on the GPU; on the NPU the
//! chosen program uses four micro-kernels for 1.12x.

use accel_sim::{simulate, simulate_traced, SimReport, TimingMode, TraceEvent};
use mikpoly::{
    pattern::PatternId, CompiledProgram, MicroKernel, MicroKernelId, Region, SearchStats,
    TemplateKind,
};
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

fn kernel_a() -> MicroKernel {
    MicroKernel::new(MicroKernelId(1000), 256, 128, 32, 8)
}

fn kernel_b() -> MicroKernel {
    MicroKernel::new(MicroKernelId(1001), 64, 64, 64, 4)
}

fn program(shape: GemmShape, regions: Vec<Region>) -> CompiledProgram {
    let operator = Operator::gemm(shape);
    CompiledProgram {
        operator,
        view: operator.gemm_view(),
        pattern: if regions.len() == 1 {
            PatternId(1)
        } else {
            PatternId(2)
        },
        regions,
        split_k: 1,
        predicted_ns: f64::NAN,
        stats: SearchStats::default(),
    }
}

fn gemm_a(shape: GemmShape) -> CompiledProgram {
    program(shape, vec![Region::new(0, shape.m, 0, shape.n, kernel_a())])
}

fn gemm_b(shape: GemmShape) -> CompiledProgram {
    program(shape, vec![Region::new(0, shape.m, 0, shape.n, kernel_b())])
}

fn gemm_ab(shape: GemmShape, split: usize) -> CompiledProgram {
    program(
        shape,
        vec![
            Region::new(0, split, 0, shape.n, kernel_a()),
            Region::new(split, shape.m, 0, shape.n, kernel_b()),
        ],
    )
}

fn sim(h: &Harness, p: &CompiledProgram) -> SimReport {
    simulate(&h.gpu(), &p.launch_dynamic(), TimingMode::Evaluate)
}

/// Runs the case study.
pub fn run(h: &Harness) -> Vec<Report> {
    // Fig. 15(a): execution time of GEMM-A and GEMM-B as M sweeps
    // [1024, 4096] with stride 256 (N = 1024, K = 4096).
    let mut fig15 = Report::new(
        "fig15a",
        "GEMM-A vs GEMM-B vs GEMM-AB across M (N=1024, K=4096)",
        &[
            "M",
            "GEMM-A (ms)",
            "GEMM-B (ms)",
            "GEMM-AB (ms)",
            "MikPoly (ms)",
        ],
    );
    let compiler = h.compiler(&h.gpu(), TemplateKind::Gemm);
    for m in (1024..=4096).step_by(256) {
        let shape = GemmShape::new(m, 1024, 4096);
        let a = sim(h, &gemm_a(shape)).time_ms();
        let b = sim(h, &gemm_b(shape)).time_ms();
        let split = (m / 256) * 256;
        let ab = if split > 0 && split < m {
            sim(h, &gemm_ab(shape, split)).time_ms()
        } else {
            // M is a multiple of 256: fall back to the 3/4 split the paper
            // case study uses at M = 4096.
            sim(h, &gemm_ab(shape, m - m / 4)).time_ms()
        };
        let mik = compiler.run(&Operator::gemm(shape)).report.time_ms();
        fig15.push_row(vec![
            m.to_string(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{ab:.3}"),
            format!("{mik:.3}"),
        ]);
    }

    // Table 9: profiling counters.
    let mut tab9 = Report::new(
        "tab9",
        "Profiling counters (paper: sm_eff 86.67% -> 58.90%, cycles x1.96, grid 96 -> 128)",
        &[
            "program",
            "M",
            "grid_size",
            "sm_efficiency",
            "elapsed_cycles_sm (rel)",
            "time (ms)",
        ],
    );
    let a3072 = sim(h, &gemm_a(GemmShape::new(3072, 1024, 4096)));
    let a4096 = sim(h, &gemm_a(GemmShape::new(4096, 1024, 4096)));
    let ab4096 = sim(h, &gemm_ab(GemmShape::new(4096, 1024, 4096), 3072));
    for (name, m, r) in [
        ("GEMM-A", 3072usize, &a3072),
        ("GEMM-A", 4096, &a4096),
        ("GEMM-AB", 4096, &ab4096),
    ] {
        tab9.push_row(vec![
            name.to_string(),
            m.to_string(),
            r.grid_size.to_string(),
            format!("{:.2}%", r.sm_efficiency * 100.0),
            format!("{:.2}", r.elapsed_cycles_sm / a3072.elapsed_cycles_sm),
            format!("{:.3}", r.time_ms()),
        ]);
    }
    tab9.headline(
        "GEMM-A sm_efficiency at M=3072 (paper: 0.8667)",
        a3072.sm_efficiency,
    );
    tab9.headline(
        "GEMM-A sm_efficiency at M=4096 (paper: 0.5890)",
        a4096.sm_efficiency,
    );
    tab9.headline(
        "GEMM-A elapsed_cycles_sm growth 3072->4096 (paper: 1.96)",
        a4096.elapsed_cycles_sm / a3072.elapsed_cycles_sm,
    );
    tab9.headline(
        "GEMM-AB speedup over GEMM-A at M=4096 (paper: 1.21)",
        a4096.time_ns / ab4096.time_ns,
    );

    // Fig. 15(b)/(c): active warps over time — the tail wave of GEMM-A vs
    // the overlapped mixed-kernel tail of GEMM-AB.
    let occupancy_ascii = |title: &str, trace: &[TraceEvent], makespan: f64| -> String {
        let machine = h.gpu();
        let cap = (machine.num_pes * machine.warp_cap_per_pe) as f64;
        let cols = 64usize;
        let mut rows = String::new();
        rows.push_str(&format!(
            "{title} (each column = {:.0} us; # = active warp share)\n",
            makespan / cols as f64 / 1e3
        ));
        for level in (1..=4).rev() {
            let threshold = level as f64 / 4.0;
            rows.push_str(&format!("{:>4.0}% |", threshold * 100.0));
            for c in 0..cols {
                let t = (c as f64 + 0.5) / cols as f64 * makespan;
                let active: f64 = trace
                    .iter()
                    .filter(|e| e.start_ns <= t && t < e.end_ns)
                    .map(|e| e.warps as f64)
                    .sum();
                rows.push(if active / cap >= threshold - 1e-9 {
                    '#'
                } else {
                    ' '
                });
            }
            rows.push('\n');
        }
        rows
    };
    let shape = GemmShape::new(4096, 1024, 4096);
    let (ra, trace_a) = simulate_traced(
        &h.gpu(),
        &gemm_a(shape).launch_dynamic(),
        TimingMode::Evaluate,
    );
    let (rab, trace_ab) = simulate_traced(
        &h.gpu(),
        &gemm_ab(shape, 3072).launch_dynamic(),
        TimingMode::Evaluate,
    );
    println!(
        "{}",
        occupancy_ascii(
            "Fig. 15(b): GEMM-A active warps over time",
            &trace_a,
            ra.device_ns
        )
    );
    println!(
        "{}",
        occupancy_ascii(
            "Fig. 15(c): GEMM-AB active warps over time",
            &trace_ab,
            rab.device_ns
        )
    );

    // Fig. 14 (NPU side): MikPoly's chosen polymerization on the NPU.
    let mut fig14 = Report::new(
        "fig14",
        "Polymerization strategies chosen for (4096, 1024, 4096)",
        &[
            "machine",
            "pattern",
            "region",
            "rows",
            "cols",
            "micro-kernel",
        ],
    );
    for machine in [h.gpu(), h.npu()] {
        let compiler = h.compiler(&machine, TemplateKind::Gemm);
        let run = compiler.run(&Operator::gemm(GemmShape::new(4096, 1024, 4096)));
        for (i, r) in run.program.regions.iter().enumerate() {
            fig14.push_row(vec![
                machine.name.clone(),
                run.program.pattern.to_string(),
                format!("R{}", i + 1),
                format!("[{}, {})", r.row0, r.row1),
                format!("[{}, {})", r.col0, r.col1),
                format!("({}, {}, {})", r.kernel.um, r.kernel.un, r.kernel.uk),
            ]);
        }
    }
    // NPU: polymerized vs best single-kernel (Pattern I only) program.
    let npu_compiler = h.compiler(&h.npu(), TemplateKind::Gemm);
    let op = Operator::gemm(GemmShape::new(4096, 1024, 4096));
    let poly = npu_compiler.run(&op);
    let single_compiler = std::sync::Arc::new(
        mikpoly::MikPoly::with_library(h.npu(), h.library(&h.npu(), TemplateKind::Gemm))
            .with_options(mikpoly::OnlineOptions {
                patterns: Some(mikpoly::all_patterns().into_iter().take(1).collect()),
                ..mikpoly::OnlineOptions::default()
            }),
    );
    let single = single_compiler.run(&op);
    fig14.headline(
        "NPU polymerized speedup over single micro-kernel (paper: 1.12)",
        single.report.time_ns / poly.report.time_ns,
    );
    fig14.headline(
        "GPU GEMM-AB speedup over GEMM-A (paper: 1.21)",
        a4096.time_ns / ab4096.time_ns,
    );

    vec![fig15, tab9, fig14]
}
