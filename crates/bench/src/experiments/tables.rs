//! Tables 1–4: the modeled platforms and benchmark populations.

use mikpoly_workloads::{conv_suite_rows, gemm_suite_rows};

use crate::setup::Harness;
use crate::Report;

/// Renders Tables 1–4.
pub fn run(h: &Harness) -> Vec<Report> {
    let mut tab1 = Report::new(
        "tab1",
        "Accelerator abstraction H = (P_multi, M_local, M_global)",
        &[
            "machine",
            "|P_multi|",
            "M_local (KiB)",
            "M_global bw (GB/s)",
            "peak TFLOPS",
        ],
    );
    for m in [h.gpu(), h.npu(), h.gpu_cuda_cores()] {
        tab1.push_row(vec![
            m.name.clone(),
            m.num_pes.to_string(),
            (m.local_mem_bytes / 1024).to_string(),
            format!("{:.0}", m.global_bandwidth_gbps),
            format!("{:.0}", m.peak_flops() / 1e12),
        ]);
    }

    let mut tab2 = Report::new(
        "tab2",
        "Hardware/software platform (simulated substitute)",
        &["paper component", "this reproduction"],
    );
    for (a, b) in [
        ("NVIDIA A100 + CUDA 11.5", "accel-sim MachineModel::a100()"),
        (
            "Ascend 910 + CANN 5.1.1",
            "accel-sim MachineModel::ascend910a()",
        ),
        (
            "cuBLAS / cuDNN / CANN kernels",
            "mikpoly-baselines VendorLibrary",
        ),
        ("CUTLASS v2.9", "mikpoly-baselines CutlassLibrary"),
        (
            "PyTorch / TurboTransformers / MindSpore",
            "mikpoly-models operator graphs",
        ),
        (
            "TVM auto-scheduler",
            "mikpoly offline stage on simulator measurements",
        ),
    ] {
        tab2.push_row(vec![a.to_string(), b.to_string()]);
    }

    let mut tab3 = Report::new(
        "tab3",
        "Benchmarked GEMMs with dynamic shapes (1599 cases)",
        &[
            "category", "source", "M range", "N range", "K range", "#cases",
        ],
    );
    let mut total3 = 0usize;
    for r in gemm_suite_rows() {
        total3 += r.cases;
        tab3.push_row(vec![
            r.category.to_string(),
            r.source.to_string(),
            format!("[{}, {}]", r.m.0, r.m.1),
            format!("[{}, {}]", r.n.0, r.n.1),
            format!("[{}, {}]", r.k.0, r.k.1),
            r.cases.to_string(),
        ]);
    }
    tab3.headline("total cases (paper: 1599)", total3 as f64);

    let mut tab4 = Report::new(
        "tab4",
        "Benchmarked convolutions with dynamic shapes (5485 cases)",
        &[
            "model",
            "filter",
            "stride",
            "resolution",
            "channels",
            "#cases",
        ],
    );
    let mut total4 = 0usize;
    for r in conv_suite_rows() {
        total4 += r.cases;
        let filters = r
            .kernels
            .iter()
            .map(|k| format!("{k}x{k}"))
            .collect::<Vec<_>>()
            .join("/");
        tab4.push_row(vec![
            r.model.to_string(),
            filters,
            r.stride.to_string(),
            r.resolution.to_string(),
            format!("[{}, {}]", r.channels.0, r.channels.1),
            r.cases.to_string(),
        ]);
    }
    tab4.headline("total cases (paper: 5485)", total4 as f64);

    vec![tab1, tab2, tab3, tab4]
}
