//! Oracle-gap fidelity sweep (conformance subsystem).
//!
//! Where `fig12b` reproduces the paper's ablation figure, this experiment
//! is the standing fidelity measurement the CI gate consumes: the oracle
//! gap (cost-model pick latency / capped-exhaustive-oracle pick latency)
//! over ≥ 200 deterministic fuzzed GEMM-family shapes on the GPU model.
//! Emits `results/oracle-gap.json` with the full per-shape sample set so
//! threshold regressions are diagnosable shape by shape.

use mikpoly::TemplateKind;
use mikpoly_conformance::{gap_for, sample_shapes, summarize, GateConfig, MachineKind};

use crate::setup::Harness;
use crate::Report;

/// Shapes measured; the acceptance floor for the fidelity artifact.
const SHAPES: usize = 200;

/// Seed of the pinned shape population (changing it invalidates gap
/// comparisons across commits — bump deliberately, never casually).
const SHAPE_SEED: u64 = 0xC0FFEE;

/// Runs the oracle-gap sweep and writes `results/oracle-gap.json`.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let compiler = h.compiler(&gpu, TemplateKind::Gemm);
    let gate = GateConfig::default();

    let shapes = sample_shapes(SHAPE_SEED, SHAPES);
    let samples: Vec<_> = shapes
        .iter()
        .map(|s| gap_for(&compiler, MachineKind::Gpu, s, gate.candidate_cap))
        .collect();
    let summary = summarize(&samples);

    let mut report = Report::new(
        "oracle-gap",
        "Cost-model fidelity: oracle gap over fuzzed shapes (GPU)",
        &["metric", "value"],
    );
    for (metric, value) in [
        ("shapes", summary.count as f64),
        ("mean gap", summary.mean),
        ("p50 gap", summary.p50),
        ("p95 gap", summary.p95),
        ("max gap", summary.max),
        ("truncated searches", summary.truncated as f64),
        ("threshold p95", gate.threshold_p95),
    ] {
        report.push_row(vec![metric.to_string(), format!("{value:.4}")]);
    }
    report.headline("oracle gap p50", summary.p50);
    report.headline(
        format!("oracle gap p95 (gate: <= {:.2})", gate.threshold_p95),
        summary.p95,
    );
    report.headline("shapes evaluated", summary.count as f64);

    // The machine-readable artifact the fidelity gate and future PRs
    // compare against.
    let artifact = serde_json::json!({
        "machine": "gpu",
        "shape_seed": SHAPE_SEED,
        "candidate_cap": gate.candidate_cap,
        "threshold_p95": gate.threshold_p95,
        "summary": serde_json::to_value(&summary).expect("summary json"),
        "samples": serde_json::to_value(&samples).expect("samples json"),
    });
    let path = h.config.results_dir.join("oracle-gap.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }
    vec![report]
}
