//! Extension: batched serving — shape-bucketed continuous batching and
//! co-launch waves against solo dispatch, plus the multi-tenant
//! isolation gate.
//!
//! The `ext-serving` study drives the solo dispatcher near its
//! calibrated saturation point. This study overdrives it: small
//! transformer-projection GEMMs — the dynamic-shape regime the paper's
//! co-launch observation targets, where one request's grid cannot fill
//! the machine — arrive in bursts at 10x and 100x that rate, and the
//! batched dispatcher (workers released at compile-done, ready requests
//! bucketed by shape under a bounded batch-forming delay, buckets packed
//! into co-launch waves that never oversubscribe the machine's warp
//! slots) is compared against solo dispatch of the identical stream on
//! the identical warm engine. Two standing gates (the run exits non-zero
//! on violation, so `scripts/ci.sh` wires it as a smoke):
//!
//! * **goodput** — at every overdriven rate, batched goodput must be at
//!   least solo goodput, and batched P99 latency at most solo P99:
//!   merging identically-shaped bursts into waves recovers idle PEs, so
//!   overload drains strictly faster;
//! * **isolation** — with a [`TenantPolicy`] in force, a tenant flooding
//!   the queue is throttled against *its own* waiting-slot quota and a
//!   sparse victim tenant is served in full, with zero sheds. The
//!   admission layer is shared by both dispatchers; the scenario runs on
//!   the solo path, where device-backed workers make the wait queue (and
//!   therefore the quota) bite deterministically.
//!
//! The measurement is written to `results/batch-serving.json`.

use std::sync::Arc;

use accel_sim::{Cluster, Interconnect};
use mikpoly::serving::{BatchingOptions, TenantPolicy, TenantQuota};
use mikpoly::{
    Engine, Request, ServingOptions, ServingReport, ServingRuntime, ShedReason, TemplateKind,
};
use mikpoly_workloads::{bursty_traffic, TrafficEvent, LENGTH_PALETTE};
use tensor_ir::{GemmShape, Operator};

use crate::setup::Harness;
use crate::Report;

/// Overdrive multipliers relative to the calibrated solo saturation gap.
const RATES: [f64; 2] = [10.0, 100.0];

/// One request = the attention projections of a thin decode step at the
/// event's sequence length: small grids that leave most PEs idle, so
/// co-launch has headroom to recover.
fn layer_ops(len: usize) -> Vec<(Operator, usize)> {
    vec![
        (Operator::gemm(GemmShape::new(len, 256, 256)), 1),
        (Operator::gemm(GemmShape::new(len, 512, 256)), 1),
    ]
}

/// Maps traffic events onto projection-block requests.
fn requests_from(events: &[TrafficEvent]) -> Vec<Request> {
    events
        .iter()
        .enumerate()
        .map(|(id, e)| Request {
            id,
            arrival_ns: e.arrival_ns,
            ops: layer_ops(e.seq_len),
            deadline_ns: None,
            tenant: e.tenant,
        })
        .collect()
}

fn p99_ms(report: &ServingReport) -> f64 {
    report.latency_summary().total.p99_ns / 1e6
}

/// Runs the batched-serving study and its gates.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let n = if h.config.stride > 1 { 80 } else { 200 };
    let workers = 4;
    let devices = 2;

    let engine = Arc::new(Engine::from_compilers(
        gpu.clone(),
        h.compiler(&gpu, TemplateKind::Gemm),
        h.compiler(&gpu, TemplateKind::Conv),
    ));
    // Warm every palette shape once: all serving runs below hit the
    // program cache, so the solo/batched comparison is pure dispatch
    // policy, not compile noise — and the probe doubles as the
    // calibration for the saturation gap.
    let mut probe = 0.0f64;
    for &len in &LENGTH_PALETTE {
        let ops = layer_ops(len);
        probe += engine
            .run_graph(ops.iter().map(|(op, c)| (op, *c)))
            .device_ns;
    }
    let mean_device_ns = probe / LENGTH_PALETTE.len() as f64;
    // The gap at which the device pool sits near full utilization under
    // solo dispatch; RATES overdrive it from there.
    let saturation_gap_ns = mean_device_ns / devices as f64;

    let mut table = Report::new(
        "batch-serving",
        "Continuous batching + co-launch waves vs solo dispatch under overload (extension)",
        &[
            "rate",
            "mode",
            "goodput (req/s)",
            "P50 (ms)",
            "P99 (ms)",
            "makespan (ms)",
            "mean batch",
        ],
    );
    let mut rates_json = Vec::new();
    let mut worst_goodput_ratio = f64::INFINITY;
    let mut worst_p99_ratio = 0.0f64;
    for rate in RATES {
        let events = bursty_traffic(n, saturation_gap_ns / rate, 8, 2, 0xBA7C);
        let requests = requests_from(&events);
        let cluster = || Cluster::new(gpu.clone(), devices, Interconnect::nvlink3());
        let solo = ServingRuntime::new(Arc::clone(&engine), cluster(), workers).serve(&requests);
        let batched = ServingRuntime::new(Arc::clone(&engine), cluster(), workers)
            .with_options(ServingOptions {
                batching: Some(BatchingOptions::default()),
                ..ServingOptions::default()
            })
            .serve(&requests);
        for (mode, report) in [("solo", &solo), ("batched", &batched)] {
            let s = report.latency_summary();
            table.push_row(vec![
                format!("{rate:.0}x"),
                mode.to_string(),
                format!("{:.0}", report.goodput_rps()),
                format!("{:.2}", s.total.p50_ns / 1e6),
                format!("{:.2}", s.total.p99_ns / 1e6),
                format!("{:.2}", report.makespan_ns / 1e6),
                format!("{:.2}", report.mean_batch_size()),
            ]);
        }
        let goodput_ratio = batched.goodput_rps() / solo.goodput_rps();
        let p99_ratio = p99_ms(&batched) / p99_ms(&solo);
        worst_goodput_ratio = worst_goodput_ratio.min(goodput_ratio);
        worst_p99_ratio = worst_p99_ratio.max(p99_ratio);
        rates_json.push(serde_json::json!({
            "rate": rate,
            "requests": n,
            "solo": {
                "goodput_rps": solo.goodput_rps(),
                "p99_ms": p99_ms(&solo),
                "makespan_ms": solo.makespan_ns / 1e6,
            },
            "batched": {
                "goodput_rps": batched.goodput_rps(),
                "p99_ms": p99_ms(&batched),
                "makespan_ms": batched.makespan_ns / 1e6,
                "mean_batch_size": batched.mean_batch_size(),
            },
            "goodput_ratio": goodput_ratio,
            "p99_ratio": p99_ratio,
        }));
    }

    // Isolation scenario: tenant 1 floods simultaneous bursts far beyond
    // its waiting-slot quota while tenant 2 trickles well-spaced
    // requests. The victim must ride its reserved headroom to a full
    // serve; the flood must be shed as tenant-throttled, not as global
    // queue overflow (which would have taken the victim down with it).
    // Solo dispatch on one worker: device-backed service makes the wait
    // queue — and therefore the per-tenant quota — bite deterministically.
    let flood_n = n / 2;
    let mut events: Vec<TrafficEvent> = bursty_traffic(flood_n, saturation_gap_ns / 50.0, 8, 1, 3)
        .into_iter()
        .map(|e| TrafficEvent { tenant: 1, ..e })
        .collect();
    let victim_gap = 8.0 * mean_device_ns;
    for i in 0..12 {
        events.push(TrafficEvent {
            arrival_ns: i as f64 * victim_gap,
            tenant: 2,
            seq_len: LENGTH_PALETTE[i % LENGTH_PALETTE.len()],
        });
    }
    events.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
    let requests = requests_from(&events);
    let isolated = ServingRuntime::new(
        Arc::clone(&engine),
        Cluster::new(gpu.clone(), 1, Interconnect::nvlink3()),
        1,
    )
    .with_options(ServingOptions {
        queue_capacity: Some(16),
        tenancy: Some(TenantPolicy::new(vec![
            TenantQuota::new(1, 4),
            TenantQuota::new(2, 16).with_weight(2.0),
        ])),
        ..ServingOptions::default()
    })
    .serve(&requests);
    let throttled = isolated
        .records
        .iter()
        .filter(|r| r.shed_reason == Some(ShedReason::TenantThrottled))
        .count();
    let tenants = isolated.tenant_stats();
    let victim = tenants
        .iter()
        .find(|t| t.tenant == 2)
        .expect("victim tenant appears in the stats");
    table.headline(
        "worst batched/solo goodput ratio (gate >= 1.0)",
        worst_goodput_ratio,
    );
    table.headline(
        "worst batched/solo P99 ratio (gate <= 1.0)",
        worst_p99_ratio,
    );
    table.headline("flood requests shed as tenant-throttled", throttled as f64);
    table.headline(
        "victim tenant sheds (gate = 0)",
        victim.dispositions.shed as f64,
    );

    let artifact = serde_json::json!({
        "machine": gpu.name,
        "workers": workers,
        "devices": devices,
        "saturation_gap_ns": saturation_gap_ns,
        "rates": rates_json,
        "isolation": {
            "flood_requests": flood_n,
            "victim_requests": 12,
            "flood_throttled": throttled,
            "victim_served": victim.dispositions.served(),
            "victim_shed": victim.dispositions.shed,
        },
    });
    let path = h.config.results_dir.join("batch-serving.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("json"),
    ) {
        Ok(()) => println!("   (artifact: {})", path.display()),
        Err(e) => eprintln!("   (artifact write failed: {e})"),
    }

    // The standing gates. Deterministic virtual timelines on a warm
    // cache, so these hold in quick mode too — CI runs this experiment
    // as a bounded smoke.
    assert!(
        worst_goodput_ratio >= 1.0,
        "batched goodput fell below solo under overload: ratio {worst_goodput_ratio:.3}"
    );
    assert!(
        worst_p99_ratio <= 1.0,
        "batched P99 exceeded solo under overload: ratio {worst_p99_ratio:.3}"
    );
    assert_eq!(
        victim.dispositions.shed, 0,
        "tenant isolation violated: the victim tenant was shed {} times",
        victim.dispositions.shed
    );
    assert_eq!(
        victim.dispositions.served(),
        12,
        "victim tenant not fully served: {:?}",
        victim.dispositions
    );
    assert!(
        throttled > 0,
        "the flood was never tenant-throttled — the quota did not engage"
    );
    vec![table]
}
