//! Extension (the paper's Section 7 future work): epilogue fusion.
//!
//! "We plan to explore the combination of MikPoly with graph-level
//! optimization techniques, such as operator fusion". In an unfused
//! runtime, every projection GEMM is followed by an elementwise pass
//! (bias + activation + residual) that re-reads and re-writes the whole
//! output through `M_global` behind its own kernel launch. Fusing the
//! epilogue into the micro-kernel's write-back stage eliminates that pass —
//! the polymerized program is unchanged (the epilogue costs a few
//! register-level ops before the store), so fusion composes freely with
//! micro-kernel polymerization.
//!
//! This experiment quantifies the opportunity across the language-model
//! sweep: end-to-end latency with per-GEMM elementwise passes vs with
//! fused epilogues.

use accel_sim::{simulate, Launch, MachineModel, TaskShape, TaskSpec, TimingMode};
use mikpoly::TemplateKind;
use mikpoly_baselines::{Backend, MikPolyBackend};
use mikpoly_models::TransformerConfig;
use mikpoly_workloads::sentence_lengths;

use crate::report::mean;
use crate::setup::Harness;
use crate::Report;

/// The standalone elementwise pass an unfused runtime launches after a
/// GEMM: reads and rewrites the `m x n` fp16 output with a handful of ops
/// per element (bias + activation). Purely memory-bound.
fn elementwise_launch(m: usize, n: usize) -> Launch {
    const TILE: usize = 128;
    // A TILE x TILE elementwise tile: `load_scale` is chosen so the generic
    // tile accounting charges exactly one read of the tile
    // (um * un elements) per instance; the store adds the write-back.
    let load_scale = (TILE * TILE) as f64 / (TILE + TILE) as f64;
    let shape = TaskShape {
        um: TILE,
        un: TILE,
        uk: 1,
        in_elem_bytes: 2,
        out_elem_bytes: 2,
        acc_elem_bytes: 2,
        load_scale,
        stages: 2,
        quality: 1.0,
    };
    let count = m.div_ceil(TILE) * n.div_ceil(TILE);
    Launch::grid(TaskSpec::new(shape, 4, 1), count)
}

/// End-to-end latency of a transformer forward pass, optionally paying an
/// elementwise epilogue launch after every (batched) GEMM.
fn latency_ns(
    machine: &MachineModel,
    backend: &dyn Backend,
    graph: &mikpoly_models::ModelGraph,
    fused: bool,
) -> f64 {
    let mut total = 0.0;
    for op in &graph.ops {
        let run = backend.run(&op.operator).expect("gemm runs");
        total += run.report.time_ns * op.count as f64;
        // Only projection GEMMs carry a bias/activation epilogue; the
        // attention score/context GEMMs are followed by softmax, which a
        // GEMM-epilogue fusion does not remove (it stays unfused in both
        // variants and is therefore excluded from the comparison).
        let has_epilogue =
            !op.name.starts_with("attn.scores") && !op.name.starts_with("attn.context");
        if !fused && has_epilogue {
            let s = op.operator.gemm_view().shape;
            let epilogue = simulate(machine, &elementwise_launch(s.m, s.n), TimingMode::Evaluate);
            total += epilogue.time_ns * op.count as f64;
        }
    }
    total
}

/// Runs the fusion extension study.
pub fn run(h: &Harness) -> Vec<Report> {
    let gpu = h.gpu();
    let mik = MikPolyBackend::new(h.compiler(&gpu, TemplateKind::Gemm));
    let lengths: Vec<usize> = h.config.subsample(&sentence_lengths());

    let mut report = Report::new(
        "ext-fusion",
        "Epilogue fusion on top of polymerization (extension): e2e speedup of fused epilogues",
        &["model", "mean speedup", "min", "max"],
    );
    for cfg in TransformerConfig::evaluation_set() {
        let mut speedups = Vec::new();
        for &len in &lengths {
            let graph = cfg.graph(1, len);
            let unfused = latency_ns(&gpu, &mik, &graph, false);
            let fused = latency_ns(&gpu, &mik, &graph, true);
            speedups.push(unfused / fused);
        }
        report.push_row(vec![
            cfg.name.clone(),
            format!("{:.3}", mean(&speedups)),
            format!("{:.3}", speedups.iter().copied().fold(f64::MAX, f64::min)),
            format!("{:.3}", crate::report::max(&speedups)),
        ]);
        report.headline(
            format!("{}: fused-epilogue e2e speedup on top of MikPoly", cfg.name),
            mean(&speedups),
        );
    }
    vec![report]
}
