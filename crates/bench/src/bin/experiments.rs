//! CLI entry point: `experiments [--quick | --stride N] [ids... | all]`.

use mikpoly_bench::experiments::registry;
use mikpoly_bench::{Config, Harness};

fn main() {
    let mut config = Config::full();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config = Config::quick(),
            "--stride" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--stride needs a positive integer"));
                config.stride = n;
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no experiment id given");
    }
    if ids.iter().any(|i| i == "check") {
        check(&config);
    }
    let known = registry();
    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        known.iter().map(|(id, _)| *id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let harness = Harness::new(config);
    let mut summary: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for id in selected {
        let Some((_, runner)) = known.iter().find(|(k, _)| *k == id) else {
            usage(&format!("unknown experiment '{id}'"));
        };
        let start = std::time::Instant::now();
        let reports = runner(&harness);
        for report in &reports {
            println!("{}", report.render());
            match report.write_csv(&harness.config.results_dir) {
                Ok(path) => println!("   (csv: {})", path.display()),
                Err(e) => eprintln!("   (csv write failed: {e})"),
            }
            println!();
            if !report.headlines.is_empty() {
                summary.push((report.id.clone(), report.headlines.clone()));
            }
        }
        eprintln!("[{id}] finished in {:.1?}\n", start.elapsed());
    }
    // Machine-readable headline summary for tooling (and EXPERIMENTS.md
    // regeneration). Merged into the existing file keyed by experiment id,
    // so running a subset does not drop the headlines of experiments that
    // were not part of this invocation.
    if !summary.is_empty() {
        let path = harness.config.results_dir.join("summary.json");
        let mut merged: serde_json::Map<String, serde_json::Value> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|raw| serde_json::from_str::<serde_json::Value>(&raw).ok())
            .and_then(|v| match v {
                serde_json::Value::Object(map) => Some(map),
                _ => None,
            })
            .unwrap_or_default();
        for (id, headlines) in &summary {
            merged.insert(
                id.clone(),
                serde_json::Value::from(
                    headlines
                        .iter()
                        .map(
                            |(label, value)| serde_json::json!({ "metric": label, "value": value }),
                        )
                        .collect::<Vec<_>>(),
                ),
            );
        }
        let json = serde_json::Value::from(merged);
        if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&json).expect("json")) {
            eprintln!("(summary write failed: {e})");
        } else {
            eprintln!("headline summary: {}", path.display());
        }
    }
}

/// Verifies results/summary.json against the paper-shape expectations.
fn check(config: &Config) -> ! {
    let path = config.results_dir.join("summary.json");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {}: {e}\nrun `experiments all` first",
            path.display()
        );
        std::process::exit(2);
    });
    let summary: serde_json::Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        std::process::exit(2);
    });
    let failures = mikpoly_bench::expectations::check_summary(&summary);
    let total = mikpoly_bench::expectations::expectations().len();
    if failures.is_empty() {
        println!("paper-shape guard: all {total} expectations hold");
        std::process::exit(0);
    }
    println!(
        "paper-shape guard: {} of {total} expectations FAILED:",
        failures.len()
    );
    for f in &failures {
        println!("  {f}");
    }
    std::process::exit(1);
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!("usage: experiments [--quick | --stride N] <id>... | all | check");
    eprintln!("experiments:");
    for (id, _) in registry() {
        eprintln!("  {id}");
    }
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
