//! The paper-shape guard: expected ranges for every experiment headline.
//!
//! Absolute agreement with the paper's testbed is not the bar — preserving
//! each result's *shape* is (who wins, roughly by how much, where cliffs
//! fall). The ranges below encode that bar; `experiments -- check` verifies
//! a `results/summary.json` produced by a full run against them, making the
//! reproduction CI-checkable.

/// One guarded headline: a substring that identifies the metric within an
/// experiment, and the inclusive range its measured value must fall in.
#[derive(Debug, Clone)]
pub struct Expectation {
    /// Experiment id (`"fig6"`, ...).
    pub id: &'static str,
    /// Substring of the headline label.
    pub metric: &'static str,
    /// Inclusive acceptance range.
    pub range: (f64, f64),
    /// The paper's reported value, for the report.
    pub paper: f64,
}

const fn exp(id: &'static str, metric: &'static str, lo: f64, hi: f64, paper: f64) -> Expectation {
    Expectation {
        id,
        metric,
        range: (lo, hi),
        paper,
    }
}

/// The guarded headline set. Ranges are generous where the substitution has
/// the most freedom (vendor-library strength) and tight where the paper's
/// mechanics are exact (Table 9 counters, invariantly-zero invalid runs).
pub fn expectations() -> Vec<Expectation> {
    vec![
        // Fig. 1: the vendor cliff exists (order-of-magnitude variance).
        exp("fig1", "best/worst ratio", 5.0, 40.0, 11.8),
        // Fig. 6: MikPoly wins on average on the GPU, vendor keeps golden
        // shapes competitive (mean well below the peak).
        exp("fig6", "GEMM mean speedup vs cuBLAS", 1.15, 1.9, 1.47),
        exp("fig6", "GEMM max speedup vs cuBLAS", 2.5, 9.0, 4.82),
        exp("fig6", "conv mean speedup vs cuDNN", 1.1, 2.6, 1.98),
        exp("fig6", "GEMM mean speedup vs CUTLASS", 1.5, 4.5, 3.02),
        // Fig. 7: NPU wins are smaller than GPU wins for GEMM.
        exp("fig7", "GEMM mean speedup vs CANN", 1.0, 1.7, 1.10),
        exp("fig7", "conv mean speedup vs CANN", 1.05, 1.9, 1.41),
        // Fig. 8/9 e2e: everything wins, in the 1.05–2x band.
        exp("fig8", "bert-base-uncased mean", 1.1, 2.0, 1.39),
        exp("fig8", "albert-xlarge-v2 mean", 1.05, 1.9, 1.37),
        exp("fig9", "alexnet mean", 1.05, 1.8, 1.34),
        exp("fig9", "googlenet mean", 1.05, 2.2, 1.69),
        exp("npu-e2e", "vgg11 mean", 1.0, 1.8, 1.38),
        // Fig. 10 ordering: Nimble >> CUTLASS ~ DietCode, all > 1.5.
        exp("fig10", "mean speedup over DietCode", 1.5, 4.5, 2.94),
        exp("fig10", "mean speedup over Nimble", 4.0, 14.0, 7.54),
        exp("fig10", "mean speedup over CUTLASS", 2.0, 9.0, 3.59),
        // Table 5: MikPoly never produces invalid runs; it beats DietCode.
        exp("tab5", "mean speedup over DietCode", 1.2, 2.6, 1.55),
        // Table 8 / Fig. 11: modest LLM wins.
        exp("tab8", "qkv_proj mean", 1.0, 1.6, 1.09),
        exp("tab8", "o_proj mean", 1.0, 1.6, 1.24),
        exp("fig11", "batch 1 mean", 1.0, 1.4, 1.05),
        exp("fig11", "batch 8 mean", 1.0, 1.35, 1.01),
        // Fig. 12(b) ordering: Full ~ Oracle > Wave > Pipe > CUTLASS.
        exp("fig12b", "MikPoly mean vs Oracle", 0.9, 1.001, 0.96),
        exp("fig12b", "MikPoly-Wave mean", 0.7, 1.0, 0.81),
        exp("fig12b", "MikPoly-Pipe mean", 0.5, 0.95, 0.72),
        exp("fig12b", "CUTLASS mean vs Oracle", 0.2, 0.8, 0.45),
        // Table 9: the load-imbalance mechanics are near-exact.
        exp("tab9", "sm_efficiency at M=3072", 0.8, 0.95, 0.8667),
        exp("tab9", "sm_efficiency at M=4096", 0.5, 0.7, 0.589),
        exp("tab9", "elapsed_cycles_sm growth", 1.7, 2.2, 1.96),
        exp("tab9", "GEMM-AB speedup over GEMM-A", 1.1, 1.9, 1.21),
        // Extensions stay sane.
        exp(
            "ext-winograd",
            "mean Winograd speedup",
            1.05,
            2.25,
            f64::NAN,
        ),
        exp(
            "ext-splitk",
            "mean split-K speedup on machine-starved grids",
            1.0,
            3.0,
            f64::NAN,
        ),
        exp(
            "abl-search",
            "nvidia-a100: mean quality of heuristic",
            0.97,
            1.02,
            f64::NAN,
        ),
    ]
}

/// Verifies a summary (as written to `results/summary.json`) against the
/// expectation set. Returns human-readable failures; empty = pass.
pub fn check_summary(summary: &serde_json::Value) -> Vec<String> {
    let mut failures = Vec::new();
    for e in expectations() {
        let Some(entries) = summary.get(e.id).and_then(|v| v.as_array()) else {
            failures.push(format!(
                "[{}] missing from summary (run `experiments all` first)",
                e.id
            ));
            continue;
        };
        let found = entries.iter().find(|entry| {
            entry
                .get("metric")
                .and_then(|m| m.as_str())
                .is_some_and(|m| m.contains(e.metric))
        });
        let Some(found) = found else {
            failures.push(format!(
                "[{}] headline containing '{}' not found",
                e.id, e.metric
            ));
            continue;
        };
        let value = found
            .get("value")
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN);
        if !(e.range.0..=e.range.1).contains(&value) {
            failures.push(format!(
                "[{}] '{}' = {:.3} outside [{}, {}] (paper: {})",
                e.id, e.metric, value, e.range.0, e.range.1, e.paper
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectations_are_well_formed() {
        let all = expectations();
        assert!(all.len() > 20);
        for e in &all {
            assert!(e.range.0 < e.range.1, "{e:?}");
            if !e.paper.is_nan() {
                // The paper's own value need not lie inside our acceptance
                // band (the substitution shifts levels), but it should be
                // within a factor of ~2.5 of it.
                assert!(
                    e.paper > e.range.0 / 2.5 && e.paper < e.range.1 * 2.5,
                    "paper value far from acceptance band: {e:?}"
                );
            }
        }
    }

    #[test]
    fn check_flags_missing_and_out_of_range() {
        let summary = serde_json::json!({
            "fig1": [{ "metric": "best/worst ratio (paper: 11.8)", "value": 100.0 }]
        });
        let failures = check_summary(&summary);
        assert!(failures.iter().any(|f| f.contains("outside")));
        assert!(failures.iter().any(|f| f.contains("missing")));
    }

    #[test]
    fn check_accepts_in_range_values() {
        let summary = serde_json::json!({
            "fig1": [{ "metric": "best/worst ratio (paper: 11.8)", "value": 14.0 }]
        });
        let failures = check_summary(&summary);
        assert!(
            !failures.iter().any(|f| f.contains("fig1] 'best/worst")),
            "{failures:?}"
        );
    }
}
