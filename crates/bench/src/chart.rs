//! Terminal scatter/series charts for the figure experiments.
//!
//! The paper's operator figures plot per-case speedup (y, log-ish) against
//! workload FLOPs (x, log). This renderer reproduces that view in the
//! terminal so a figure regeneration actually looks like a figure, not just
//! a summary row.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Mark used for this series' points.
    pub mark: char,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, mark: char, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            mark,
            points,
        }
    }
}

/// An ASCII scatter chart with a log-10 x-axis and linear y-axis.
#[derive(Debug, Clone)]
pub struct ScatterChart {
    /// Chart title.
    pub title: String,
    /// X-axis label (log scale).
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plot width in columns.
    pub width: usize,
    /// Plot height in rows.
    pub height: usize,
    /// Series to draw, in z-order (later series overdraw earlier ones).
    pub series: Vec<Series>,
    /// Optional horizontal guide line (e.g. y = 1.0 for "baseline parity").
    pub guide_y: Option<f64>,
}

impl ScatterChart {
    /// A chart with default dimensions (72 x 20).
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 72,
            height: 20,
            series: Vec::new(),
            guide_y: Some(1.0),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the chart.
    ///
    /// Points with non-positive x are dropped (the x-axis is logarithmic);
    /// an empty chart renders a note instead of a panic.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|&(x, _)| x > 0.0)
            .collect();
        if pts.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x_lo = x_lo.min(x.log10());
            x_hi = x_hi.max(x.log10());
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        if let Some(g) = self.guide_y {
            y_lo = y_lo.min(g);
            y_hi = y_hi.max(g);
        }
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-12 {
            y_hi = y_lo + 1.0;
        }
        // A little headroom so extreme points don't sit on the frame.
        let y_pad = 0.05 * (y_hi - y_lo);
        y_lo -= y_pad;
        y_hi += y_pad;

        let mut grid = vec![vec![' '; self.width]; self.height];
        let place = |x: f64, y: f64, width: usize, height: usize| -> (usize, usize) {
            let cx = ((x.log10() - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            (cx.min(width - 1), height - 1 - cy.min(height - 1))
        };
        if let Some(g) = self.guide_y {
            let (_, gy) = place(10f64.powf(x_lo), g, self.width, self.height);
            for cell in &mut grid[gy] {
                *cell = '-';
            }
        }
        for s in &self.series {
            for &(x, y) in s.points.iter().filter(|&&(x, _)| x > 0.0) {
                let (cx, cy) = place(x, y.clamp(y_lo, y_hi), self.width, self.height);
                grid[cy][cx] = s.mark;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        for (row, line) in grid.iter().enumerate() {
            let y_at = y_hi - (row as f64 / (self.height - 1) as f64) * (y_hi - y_lo);
            let label = if row == 0 || row + 1 == self.height || row == self.height / 2 {
                format!("{y_at:>7.2} |")
            } else {
                format!("{:>7} |", "")
            };
            out.push_str(&label);
            out.push_str(&line.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{:>8}+{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>9}10^{:<8.1}{:^width$}10^{:.1}\n",
            "",
            x_lo,
            &self.x_label,
            x_hi,
            width = self.width.saturating_sub(22)
        ));
        out.push_str(&format!("{:>9}y: {}   legend:", "", self.y_label));
        for s in &self.series {
            out.push_str(&format!("  {} {}", s.mark, s.name));
        }
        out.push('\n');
        out
    }
}

/// A horizontal bar chart for grouped speedups (the e2e figures).
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// `(label, value)` bars, drawn in order.
    pub bars: Vec<(String, f64)>,
    /// Reference line drawn through every bar (e.g. 1.0 = baseline).
    pub reference: f64,
}

impl BarChart {
    /// Creates a chart with a reference at 1.0.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            bars: Vec::new(),
            reference: 1.0,
        }
    }

    /// Adds a bar (builder style).
    #[must_use]
    pub fn with_bar(mut self, label: impl Into<String>, value: f64) -> Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        if self.bars.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let width = 48usize;
        let max = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .fold(self.reference, f64::max)
            .max(1e-12);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        let ref_col = ((self.reference / max) * width as f64).round() as usize;
        for (label, value) in &self.bars {
            let filled = ((value / max) * width as f64).round() as usize;
            let mut bar: Vec<char> = (0..width)
                .map(|c| if c < filled { '#' } else { ' ' })
                .collect();
            if ref_col < width {
                bar[ref_col] = '|';
            }
            out.push_str(&format!(
                "{label:>label_w$} {} {value:.2}\n",
                bar.iter().collect::<String>()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart_with(points: Vec<(f64, f64)>) -> ScatterChart {
        ScatterChart::new("t", "FLOPs", "speedup").with_series(Series::new("a", '*', points))
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let s = chart_with(vec![(1e6, 1.5), (1e9, 0.8), (1e12, 2.5)]).render();
        assert!(s.contains('t'));
        assert!(s.contains("FLOPs"));
        assert!(s.contains("legend:"));
        assert!(s.contains('*'));
        assert!(s.contains("10^"));
    }

    #[test]
    fn guide_line_is_drawn() {
        let s = chart_with(vec![(1e6, 0.5), (1e9, 2.0)]).render();
        assert!(s.contains("--------"), "guide line missing:\n{s}");
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let s = chart_with(vec![]).render();
        assert!(s.contains("no data"));
    }

    #[test]
    fn non_positive_x_is_dropped() {
        let s = chart_with(vec![(0.0, 1.0), (1e3, 1.0)]).render();
        assert!(!s.contains("no data"));
    }

    #[test]
    fn degenerate_single_point_renders() {
        let s = chart_with(vec![(100.0, 1.0)]).render();
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_renders_reference_and_values() {
        let s = BarChart::new("e2e")
            .with_bar("bert", 1.4)
            .with_bar("albert", 0.9)
            .render();
        assert!(s.contains("bert"));
        assert!(s.contains("1.40"));
        assert!(s.contains('|'), "reference line missing:\n{s}");
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_bar_chart_does_not_panic() {
        assert!(BarChart::new("x").render().contains("no data"));
    }

    #[test]
    fn multiple_series_use_their_marks() {
        let s = ScatterChart::new("t", "x", "y")
            .with_series(Series::new("first", 'o', vec![(1e2, 1.0)]))
            .with_series(Series::new("second", 'x', vec![(1e8, 2.0)]))
            .render();
        assert!(s.contains('o') && s.contains('x'));
        assert!(s.contains("first") && s.contains("second"));
    }
}
