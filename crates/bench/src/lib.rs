//! # mikpoly-bench — the experiment harness
//!
//! Regenerates every table and figure of the MikPoly evaluation (see
//! `DESIGN.md` for the experiment index). Each experiment lives in
//! [`experiments`] and renders one or more [`Report`]s; the `experiments`
//! binary dispatches by id:
//!
//! ```text
//! cargo run --release -p mikpoly-bench --bin experiments -- fig6
//! cargo run --release -p mikpoly-bench --bin experiments -- --quick all
//! ```
//!
//! Reports are printed as aligned tables and written as CSV under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod expectations;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod setup;

pub use chart::{BarChart, ScatterChart, Series};
pub use report::{fmt_speedup, geomean, max, mean, Report};
pub use setup::{Config, Harness};
