//! Deterministic serving-traffic generators.
//!
//! The batch-serving experiment needs request streams with *structure*:
//! load that swings over the day, bursts that arrive together (and so
//! can share a co-launch wave), and an adversary that churns shapes to
//! bust the program cache. Each generator here is a pure function of its
//! parameters and seed — same inputs, byte-identical event stream — and
//! every stream has monotone non-decreasing arrival times (both
//! properties are enforced by proptests).
//!
//! Events are deliberately model-neutral: an arrival instant, a tenant,
//! and a *sequence length*. The consumer maps lengths onto whatever
//! operator graph it serves (the batch-serving experiment uses
//! transformer encoder layers), so the generators stay free of any
//! compiler or engine dependency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Virtual arrival instant, ns from stream start. Non-decreasing
    /// within a generated stream.
    pub arrival_ns: f64,
    /// Tenant the request bills against, in `0..tenants`.
    pub tenant: u32,
    /// Sequence length selecting the request's operator shapes.
    pub seq_len: usize,
}

/// The bounded sequence-length palette the well-behaved generators draw
/// from. A small palette is what real serving looks like after length
/// bucketing, and it is what makes shape-bucketed batching (and the
/// program cache) effective.
pub const LENGTH_PALETTE: [usize; 4] = [16, 32, 64, 128];

/// An exponential inter-arrival gap with the given mean.
fn exp_gap(rng: &mut SmallRng, mean_ns: f64) -> f64 {
    // 1 - u is in (0, 1], so the log is finite.
    -(1.0 - rng.gen::<f64>()).ln() * mean_ns
}

/// A tenant drawn uniformly from `0..tenants` (tenant 0 when `tenants`
/// is zero or one).
fn draw_tenant(rng: &mut SmallRng, tenants: u32) -> u32 {
    if tenants <= 1 {
        0
    } else {
        rng.gen_range(0..tenants as usize) as u32
    }
}

/// Diurnal traffic: Poisson arrivals whose rate swings sinusoidally
/// between ~0.25x and ~1.75x the base rate over `period_ns`, modelling a
/// daily load curve compressed into the stream. Lengths come from
/// [`LENGTH_PALETTE`]; tenants are drawn uniformly.
///
/// # Panics
///
/// Panics if `mean_gap_ns` or `period_ns` is not positive.
pub fn diurnal_traffic(
    count: usize,
    mean_gap_ns: f64,
    period_ns: f64,
    tenants: u32,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    assert!(period_ns > 0.0, "diurnal period must be positive");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD10C_4A11);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            // Thinning-free modulation: scale the local mean gap by the
            // inverse of the instantaneous rate multiplier.
            let phase = (t / period_ns) * std::f64::consts::TAU;
            let rate = 1.0 + 0.75 * phase.sin();
            t += exp_gap(&mut rng, mean_gap_ns / rate.max(0.25));
            TrafficEvent {
                arrival_ns: t,
                tenant: draw_tenant(&mut rng, tenants),
                seq_len: LENGTH_PALETTE[rng.gen_range(0..LENGTH_PALETTE.len())],
            }
        })
        .collect()
}

/// Bursty traffic: arrivals come in bursts of up to `burst` requests.
/// Bursts are spaced so the long-run mean gap is `mean_gap_ns`; within a
/// burst, requests arrive back to back (sub-microsecond jitter), share
/// one tenant, and share one sequence length — the co-launch-friendly
/// pattern (identical shapes, near-identical ready times) that
/// continuous batching is built to exploit.
///
/// # Panics
///
/// Panics if `mean_gap_ns` is not positive or `burst` is zero.
pub fn bursty_traffic(
    count: usize,
    mean_gap_ns: f64,
    burst: usize,
    tenants: u32,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    assert!(burst >= 1, "bursts must hold at least one request");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB5B5_7A11);
    let mut events = Vec::with_capacity(count);
    let mut t = 0.0f64;
    while events.len() < count {
        let size = rng.gen_range(0..burst) + 1;
        let size = size.min(count - events.len());
        // The whole burst's worth of load arrives at one instant, so the
        // inter-burst gap carries the burst's share of the mean.
        t += exp_gap(&mut rng, mean_gap_ns * size as f64);
        let tenant = draw_tenant(&mut rng, tenants);
        let seq_len = LENGTH_PALETTE[rng.gen_range(0..LENGTH_PALETTE.len())];
        for i in 0..size {
            events.push(TrafficEvent {
                arrival_ns: t + i as f64 * 100.0,
                tenant,
                seq_len,
            });
        }
        // The next burst gap is measured from this burst's tail, so a
        // short exponential draw can never rewind past the jitter.
        t += (size - 1) as f64 * 100.0;
    }
    events
}

/// Adversarial traffic: steady Poisson arrivals whose sequence lengths
/// *never repeat* (a deterministic non-repeating walk over a wide length
/// range), so every request is a first-sight shape — the worst case for
/// the program cache and for shape-bucketed batching. Useful as the
/// lower bound in batching experiments and as a cache-churn stressor.
///
/// # Panics
///
/// Panics if `mean_gap_ns` is not positive.
pub fn adversarial_traffic(
    count: usize,
    mean_gap_ns: f64,
    tenants: u32,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAD5E_4A11);
    let mut t = 0.0f64;
    // A seeded offset into a stride-walk over odd lengths: `base + 2i`
    // never revisits a value, and the odd stride keeps lengths off the
    // bucket-friendly powers of two.
    let base = 129 + 2 * (rng.gen_range(0..1000));
    (0..count)
        .map(|i| {
            t += exp_gap(&mut rng, mean_gap_ns);
            TrafficEvent {
                arrival_ns: t,
                tenant: draw_tenant(&mut rng, tenants),
                seq_len: base + 2 * i,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_monotone() {
        let streams = [
            diurnal_traffic(200, 10_000.0, 1e8, 3, 7),
            bursty_traffic(200, 10_000.0, 8, 3, 7),
            adversarial_traffic(200, 10_000.0, 3, 7),
        ];
        let again = [
            diurnal_traffic(200, 10_000.0, 1e8, 3, 7),
            bursty_traffic(200, 10_000.0, 8, 3, 7),
            adversarial_traffic(200, 10_000.0, 3, 7),
        ];
        for (a, b) in streams.iter().zip(&again) {
            assert_eq!(a.len(), 200);
            assert_eq!(a, b, "same seed must give the identical stream");
            assert!(
                a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
                "arrivals must be monotone"
            );
            assert!(a.iter().all(|e| e.tenant < 3));
        }
    }

    #[test]
    fn bursts_share_shape_and_tenant() {
        let events = bursty_traffic(64, 50_000.0, 6, 2, 42);
        // Events closer than 1 µs belong to one burst: same length, same
        // tenant.
        for w in events.windows(2) {
            if w[1].arrival_ns - w[0].arrival_ns < 1_000.0 {
                assert_eq!(w[0].seq_len, w[1].seq_len);
                assert_eq!(w[0].tenant, w[1].tenant);
            }
        }
        assert!(events.iter().all(|e| LENGTH_PALETTE.contains(&e.seq_len)));
    }

    #[test]
    fn adversarial_lengths_never_repeat() {
        let events = adversarial_traffic(500, 5_000.0, 1, 3);
        let mut seen = std::collections::HashSet::new();
        for e in &events {
            assert!(seen.insert(e.seq_len), "length {} repeated", e.seq_len);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = diurnal_traffic(50, 10_000.0, 1e8, 2, 1);
        let b = diurnal_traffic(50, 10_000.0, 1e8, 2, 2);
        assert_ne!(a, b);
    }
}
