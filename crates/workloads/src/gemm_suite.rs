//! The dynamic-shape GEMM benchmark suite of Table 3.
//!
//! 166 DeepBench cases plus 1433 real-world cases (1599 total, the
//! population of Figs. 6 and 10). The published table gives per-row
//! dimension ranges and case counts; rows lost to the paper's table
//! extraction are reconstructed so that the total matches the 1599 cases
//! Fig. 10 reports (the reconstruction is documented in EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use tensor_ir::GemmShape;

use crate::sampling::{log_uniform, row_rng};

/// One row of Table 3: a dimension-range bucket with a case count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmSuiteRow {
    /// Suite category (`"DeepBench"` or `"Real-World Applications"`).
    pub category: &'static str,
    /// What the row models (e.g. `"BERT projections"`).
    pub source: &'static str,
    /// Inclusive `M` range.
    pub m: (usize, usize),
    /// Inclusive `N` range.
    pub n: (usize, usize),
    /// Inclusive `K` range.
    pub k: (usize, usize),
    /// Number of test cases in the row.
    pub cases: usize,
}

/// One benchmark case: a shape plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmCase {
    /// The row this case was drawn from.
    pub category: &'static str,
    /// Row source label.
    pub source: &'static str,
    /// The GEMM shape.
    pub shape: GemmShape,
}

/// The rows of Table 3. Row counts sum to 1599: 166 DeepBench + 1433
/// real-world.
pub fn gemm_suite_rows() -> Vec<GemmSuiteRow> {
    let row = |source, m, n, k, cases| GemmSuiteRow {
        category: "Real-World Applications",
        source,
        m,
        n,
        k,
        cases,
    };
    vec![
        GemmSuiteRow {
            category: "DeepBench",
            source: "DeepBench training/inference GEMMs",
            m: (2, 10752),
            n: (1, 48000),
            k: (128, 500_000),
            cases: 166,
        },
        row(
            "transformer attention blocks (small)",
            (1, 256),
            (1, 256),
            (1, 256),
            299,
        ),
        row(
            "transformer projections (narrow)",
            (1, 256),
            (257, 1024),
            (1, 65536),
            218,
        ),
        row(
            "transformer FFN (wide)",
            (1, 256),
            (1025, 65536),
            (1, 65536),
            97,
        ),
        row(
            "CNN fully-connected (mid batch)",
            (257, 1024),
            (1, 65536),
            (1, 65536),
            64,
        ),
        row(
            "CNN fully-connected (large batch)",
            (1025, 8192),
            (1, 65536),
            (1, 65536),
            87,
        ),
        row(
            "ResNet-style classifier heads",
            (257, 8192),
            (1, 65536),
            (1, 65536),
            136,
        ),
        row(
            "VGG-style classifier heads",
            (1025, 65536),
            (1, 8192),
            (1, 8192),
            69,
        ),
        // Reconstructed rows (lost in the published table's extraction):
        // BERT/DistilBERT/RoBERTa/ALBERT hidden projections and CNN heads,
        // bringing the real-world total to the paper's 1433.
        row(
            "BERT-family hidden projections",
            (1, 512),
            (768, 4096),
            (768, 4096),
            263,
        ),
        row(
            "CNN classifier heads (ImageNet)",
            (1, 128),
            (1000, 4096),
            (256, 9216),
            200,
        ),
    ]
}

/// Well-known DeepBench shapes included verbatim (the published suite's
/// most-cited entries); the remaining DeepBench cases are sampled from the
/// row's ranges.
pub fn deepbench_canonical() -> Vec<GemmShape> {
    [
        (5124, 700, 2048),
        (35, 700, 2048),
        (5124, 700, 2560),
        (35, 700, 2560),
        (5124, 1500, 2048),
        (35, 1500, 2048),
        (5124, 1500, 2560),
        (35, 1500, 2560),
        (7680, 1, 2560),
        (7680, 2, 2560),
        (7680, 4, 2560),
        (3072, 1, 1024),
        (3072, 2, 1024),
        (3072, 4, 1024),
        (512, 24000, 2816),
        (512, 16, 500_000),
        (1024, 16, 500_000),
        (512, 48000, 2816),
        (1024, 700, 512),
        (2048, 700, 2048),
        (2560, 700, 2560),
        (10752, 1, 3584),
        (4608, 1, 1536),
        (6144, 4, 2048),
    ]
    .into_iter()
    .map(|(m, n, k)| GemmShape::new(m, n, k))
    .collect()
}

/// The full 1599-case suite, deterministically regenerated.
pub fn gemm_suite() -> Vec<GemmCase> {
    let mut out = Vec::with_capacity(1599);
    for row in gemm_suite_rows() {
        let mut rng = row_rng(row.source);
        let mut produced = 0usize;
        if row.category == "DeepBench" {
            for shape in deepbench_canonical() {
                out.push(GemmCase {
                    category: row.category,
                    source: row.source,
                    shape,
                });
                produced += 1;
            }
        }
        while produced < row.cases {
            let shape = GemmShape::new(
                log_uniform(&mut rng, row.m.0, row.m.1),
                log_uniform(&mut rng, row.n.0, row.n.1),
                log_uniform(&mut rng, row.k.0, row.k.1),
            );
            out.push(GemmCase {
                category: row.category,
                source: row.source,
                shape,
            });
            produced += 1;
        }
    }
    out
}

/// The declared DietCode/Nimble dynamic ranges for the Fig. 10 / Table 5
/// comparison: "Both Nimble and DietCode were given input ranges for M, N,
/// and K as specified in Table 3" — the envelope over all real-world rows.
pub fn table3_declared_ranges() -> ((usize, usize), (usize, usize), (usize, usize)) {
    let rows = gemm_suite_rows();
    let env = |f: fn(&GemmSuiteRow) -> (usize, usize)| {
        let lo = rows.iter().map(|r| f(r).0).min().expect("rows nonempty");
        let hi = rows.iter().map(|r| f(r).1).max().expect("rows nonempty");
        (lo, hi)
    };
    (env(|r| r.m), env(|r| r.n), env(|r| r.k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_exactly_1599_cases() {
        assert_eq!(gemm_suite().len(), 1599);
    }

    #[test]
    fn deepbench_row_has_166_cases() {
        let db: Vec<_> = gemm_suite()
            .into_iter()
            .filter(|c| c.category == "DeepBench")
            .collect();
        assert_eq!(db.len(), 166);
    }

    #[test]
    fn real_world_rows_sum_to_1433() {
        let total: usize = gemm_suite_rows()
            .iter()
            .filter(|r| r.category != "DeepBench")
            .map(|r| r.cases)
            .sum();
        assert_eq!(total, 1433);
    }

    #[test]
    fn every_case_respects_its_row_ranges() {
        let rows = gemm_suite_rows();
        for case in gemm_suite() {
            let row = rows
                .iter()
                .find(|r| r.source == case.source)
                .expect("row exists");
            let canonical =
                case.category == "DeepBench" && deepbench_canonical().contains(&case.shape);
            if canonical {
                continue;
            }
            assert!(
                (row.m.0..=row.m.1).contains(&case.shape.m),
                "{case:?} violates M range"
            );
            assert!((row.n.0..=row.n.1).contains(&case.shape.n));
            assert!((row.k.0..=row.k.1).contains(&case.shape.k));
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(gemm_suite(), gemm_suite());
    }

    #[test]
    fn declared_ranges_cover_every_case() {
        let (m, n, k) = table3_declared_ranges();
        for case in gemm_suite() {
            assert!(case.shape.m >= m.0 && case.shape.m <= m.1);
            assert!(case.shape.n >= n.0 && case.shape.n <= n.1);
            assert!(case.shape.k >= k.0 && case.shape.k <= k.1);
        }
    }
}
