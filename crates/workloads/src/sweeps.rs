//! The end-to-end experiment sweeps of Section 5.1 and 5.2.4.

use rand::Rng;

use crate::sampling::row_rng;

/// The 150 sentence lengths in `[5, 500]` used for the language-model
/// end-to-end experiments (Fig. 8, Table 5): "we generate 150 sentences
/// with lengths spanning from 5 to 500".
pub fn sentence_lengths() -> Vec<usize> {
    let mut rng = row_rng("sentence-lengths");
    (0..150).map(|_| rng.gen_range(5..=500)).collect()
}

/// The CNN sweep of Fig. 9: batch sizes `2^0..2^7` crossed with
/// resolutions `64 * (1..=10)` — 80 configurations.
pub fn cnn_sweep() -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(80);
    for b in 0..8u32 {
        for r in 1..=10usize {
            out.push((1usize << b, 64 * r));
        }
    }
    out
}

/// The Llama2 sweep of Fig. 11: input lengths `2^0..2^9` crossed with
/// batch sizes `2^0..2^3`, 512 output tokens.
pub fn llama_sweep() -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(40);
    for b in 0..4u32 {
        for s in 0..10u32 {
            out.push((1usize << b, 1usize << s));
        }
    }
    out
}

/// Output tokens per Llama2 generation (Section 5.2.4 common practice).
pub const LLAMA_OUTPUT_TOKENS: usize = 512;

/// The Fig. 12(a) shapes for the overhead breakdown: the case-study GEMM at
/// several dynamic `M` values.
pub fn overhead_shapes() -> Vec<(usize, usize, usize)> {
    [64, 256, 1024, 2048, 3072, 4096, 8192]
        .into_iter()
        .map(|m| (m, 1024, 4096))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_lengths_match_the_paper() {
        let ls = sentence_lengths();
        assert_eq!(ls.len(), 150);
        assert!(ls.iter().all(|&l| (5..=500).contains(&l)));
        // The sample should actually span the range.
        assert!(ls.iter().any(|&l| l < 50));
        assert!(ls.iter().any(|&l| l > 400));
    }

    #[test]
    fn cnn_sweep_is_8_by_10() {
        let s = cnn_sweep();
        assert_eq!(s.len(), 80);
        assert!(s.contains(&(1, 64)));
        assert!(s.contains(&(128, 640)));
    }

    #[test]
    fn llama_sweep_is_4_by_10() {
        let s = llama_sweep();
        assert_eq!(s.len(), 40);
        assert!(s.contains(&(1, 1)));
        assert!(s.contains(&(8, 512)));
    }

    #[test]
    fn sweeps_are_deterministic() {
        assert_eq!(sentence_lengths(), sentence_lengths());
    }
}
