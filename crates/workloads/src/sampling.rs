//! Seeded sampling utilities.
//!
//! The paper's Tables 3 and 4 publish the *ranges* and *case counts* of the
//! benchmark suites, not the individual shapes. The suites here are
//! regenerated deterministically: log-uniform samples inside the published
//! ranges, with the published per-row counts, under a fixed seed — so every
//! experiment in this reproduction sees exactly the same shapes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The fixed suite seed. Changing it changes every sampled shape (but none
/// of the published ranges/counts).
pub const SUITE_SEED: u64 = 0x5EED_7AB1;

/// A seeded RNG for one suite row (keyed so rows are independent).
pub fn row_rng(row_key: &str) -> SmallRng {
    let mut h = SUITE_SEED;
    for b in row_key.bytes() {
        h = h.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    SmallRng::seed_from_u64(h)
}

/// A log-uniform integer in `[lo, hi]` (inclusive). Dimension magnitudes in
/// DNN workloads are closer to log-uniform than uniform.
///
/// # Panics
///
/// Panics if `lo` is zero or `lo > hi`.
pub fn log_uniform(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    assert!(lo > 0 && lo <= hi, "invalid range [{lo}, {hi}]");
    if lo == hi {
        return lo;
    }
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let v = (rng.gen::<f64>() * (lhi - llo) + llo).exp();
    (v.round() as usize).clamp(lo, hi)
}

/// A uniform choice from a slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn choose<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "cannot choose from an empty slice");
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = row_rng("test");
        for _ in 0..10_000 {
            let v = log_uniform(&mut rng, 7, 500_000);
            assert!((7..=500_000).contains(&v));
        }
    }

    #[test]
    fn log_uniform_is_log_spread() {
        // Roughly half the samples of [1, 2^20] should land below 2^10.
        let mut rng = row_rng("spread");
        let below: usize = (0..10_000)
            .filter(|_| log_uniform(&mut rng, 1, 1 << 20) < (1 << 10))
            .count();
        assert!((3500..6500).contains(&below), "below = {below}");
    }

    #[test]
    fn row_rng_is_deterministic_and_keyed() {
        let a: u32 = row_rng("x").gen();
        let b: u32 = row_rng("x").gen();
        let c: u32 = row_rng("y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_range_returns_bound() {
        let mut rng = row_rng("deg");
        assert_eq!(log_uniform(&mut rng, 42, 42), 42);
    }
}
