//! The dynamic-shape convolution benchmark suite of Table 4.
//!
//! 5485 cases drawn from the conv layers of AlexNet, GoogLeNet, ResNet and
//! VGG, sweeping input/output channel combinations within each row's
//! published range (and batch sizes, the dynamic dimension the models see
//! in practice). Row resolutions follow the network stage each row's
//! filters live at.

use serde::{Deserialize, Serialize};

use tensor_ir::Conv2dShape;

use crate::sampling::{choose, log_uniform, row_rng};

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConvSuiteRow {
    /// Source model.
    pub model: &'static str,
    /// Filter size(s) of the row; `1x1/3x3` rows alternate between both.
    pub kernels: &'static [usize],
    /// Stride.
    pub stride: usize,
    /// Input resolution at this network stage.
    pub resolution: usize,
    /// Inclusive channel range the row sweeps.
    pub channels: (usize, usize),
    /// Whether the input is the 3-channel image (stem layers).
    pub stem: bool,
    /// Number of test cases.
    pub cases: usize,
}

/// One convolution benchmark case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvCase {
    /// Source model.
    pub model: &'static str,
    /// The convolution shape.
    pub shape: Conv2dShape,
}

/// The rows of Table 4; counts sum to 5485.
pub fn conv_suite_rows() -> Vec<ConvSuiteRow> {
    const K3: &[usize] = &[3];
    const K5: &[usize] = &[5];
    const K7: &[usize] = &[7];
    const K11: &[usize] = &[11];
    const K13: &[usize] = &[1, 3];
    let row = |model, kernels, stride, resolution, channels, stem, cases| ConvSuiteRow {
        model,
        kernels,
        stride,
        resolution,
        channels,
        stem,
        cases,
    };
    vec![
        // AlexNet
        row("AlexNet", K11, 4, 224, (64, 640), true, 80),
        row("AlexNet", K5, 1, 27, (16, 160), false, 80),
        row("AlexNet", K3, 1, 13, (3, 39), false, 240),
        // GoogLeNet
        row("GoogLeNet", K7, 2, 224, (64, 640), true, 80),
        row("GoogLeNet", K13, 1, 28, (16, 160), false, 160),
        row("GoogLeNet", K13, 1, 28, (8, 80), false, 880),
        row("GoogLeNet", K13, 1, 14, (4, 40), false, 1760),
        row("GoogLeNet", K3, 1, 14, (2, 40), false, 240),
        row("GoogLeNet", K13, 1, 7, (2, 20), false, 720),
        // ResNet
        row("ResNet", K13, 1, 56, (16, 160), false, 240),
        row("ResNet", K3, 1, 28, (8, 80), false, 240),
        row("ResNet", K3, 1, 14, (4, 40), false, 240),
        row("ResNet", K3, 1, 7, (2, 20), false, 80),
        // VGG
        row("VGG", K3, 1, 224, (64, 640), false, 77),
        row("VGG", K3, 1, 112, (32, 320), false, 80),
        row("VGG", K3, 1, 56, (16, 160), false, 128),
        row("VGG", K3, 1, 28, (8, 80), false, 80),
        row("VGG", K3, 1, 14, (4, 40), false, 80),
    ]
}

/// The full 5485-case suite, deterministically regenerated. Batch sizes
/// sweep `{1, 2, 4, 8, 16}`; input/output channels are sampled within each
/// row's range.
pub fn conv_suite() -> Vec<ConvCase> {
    let batches = [1usize, 2, 4, 8, 16];
    let mut out = Vec::with_capacity(5485);
    for (i, row) in conv_suite_rows().iter().enumerate() {
        let mut rng = row_rng(&format!("{}#{}/{}", row.model, i, row.resolution));
        for case in 0..row.cases {
            let k = row.kernels[case % row.kernels.len()];
            let in_c = if row.stem {
                3
            } else {
                log_uniform(&mut rng, row.channels.0, row.channels.1)
            };
            let out_c = log_uniform(&mut rng, row.channels.0, row.channels.1);
            let batch = *choose(&mut rng, &batches);
            out.push(ConvCase {
                model: row.model,
                shape: Conv2dShape::new(
                    batch,
                    in_c,
                    row.resolution,
                    row.resolution,
                    out_c,
                    k,
                    k,
                    row.stride,
                    k / 2,
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_5485_cases() {
        assert_eq!(conv_suite().len(), 5485);
        let total: usize = conv_suite_rows().iter().map(|r| r.cases).sum();
        assert_eq!(total, 5485);
    }

    #[test]
    fn googlenet_dominates_the_suite() {
        // "The test case count can rise significantly for commonly-used
        // filter sizes ... (e.g., GoogLeNet)".
        let g = conv_suite()
            .iter()
            .filter(|c| c.model == "GoogLeNet")
            .count();
        assert!(g > 3000, "GoogLeNet has {g} cases");
    }

    #[test]
    fn stem_rows_use_rgb_input() {
        for c in conv_suite() {
            if c.shape.kernel_h >= 7 {
                assert_eq!(c.shape.in_channels, 3, "{c:?}");
            }
        }
    }

    #[test]
    fn channels_respect_row_ranges() {
        let rows = conv_suite_rows();
        let suite = conv_suite();
        let mut idx = 0usize;
        for row in &rows {
            for _ in 0..row.cases {
                let c = &suite[idx];
                assert!(
                    (row.channels.0..=row.channels.1).contains(&c.shape.out_channels),
                    "{c:?} violates {row:?}"
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(conv_suite(), conv_suite());
    }

    #[test]
    fn all_shapes_are_valid() {
        for c in conv_suite() {
            assert!(c.shape.out_h() > 0 && c.shape.out_w() > 0);
            assert!(c.shape.as_gemm().flops() > 0.0);
        }
    }
}
