//! # mikpoly-workloads — the benchmark suites of the MikPoly evaluation
//!
//! Deterministic regenerations of the paper's shape populations:
//!
//! * [`gemm_suite`] — Table 3: 166 DeepBench + 1433 real-world GEMM cases
//!   (1599 total, the population of Figs. 6 and 10);
//! * [`conv_suite`] — Table 4: 5485 convolution cases from AlexNet,
//!   GoogLeNet, ResNet and VGG layers;
//! * [`sweeps`] — the end-to-end sweeps: 150 sentence lengths in `[5, 500]`
//!   (Fig. 8 / Table 5), the 8x10 batch-resolution grid (Fig. 9), and the
//!   Llama2 input/batch grid (Fig. 11).
//!
//! The paper publishes ranges and counts, not individual shapes; the suites
//! here sample log-uniformly inside the published ranges under a fixed seed
//! ([`sampling::SUITE_SEED`]), so every run of every experiment sees the
//! same shapes.
//!
//! # Example
//!
//! ```
//! let suite = mikpoly_workloads::gemm_suite();
//! assert_eq!(suite.len(), 1599);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv_suite;
mod gemm_suite;
pub mod sampling;
pub mod sweeps;
pub mod traffic;

pub use conv_suite::{conv_suite, conv_suite_rows, ConvCase, ConvSuiteRow};
pub use gemm_suite::{
    deepbench_canonical, gemm_suite, gemm_suite_rows, table3_declared_ranges, GemmCase,
    GemmSuiteRow,
};
pub use sweeps::{cnn_sweep, llama_sweep, overhead_shapes, sentence_lengths, LLAMA_OUTPUT_TOKENS};
pub use traffic::{
    adversarial_traffic, bursty_traffic, diurnal_traffic, TrafficEvent, LENGTH_PALETTE,
};
