//! The cost-model-fidelity gate.
//!
//! A standing CI check that the analytic Eq. 2 cost model still picks
//! near-optimal polymerizations: measure the oracle gap over a pinned
//! shape corpus and fail when the p95 exceeds a threshold. A dropped cost
//! term (say, losing `f_pipe` — the `MikPoly-Pipe` ablation) shows up
//! here immediately instead of as silent benchmark drift.

use serde::{Deserialize, Serialize};

use crate::fuzz::FuzzCase;
use crate::oracle::{gap_for, summarize, GapSample, GapSummary};
use crate::ConformanceEnv;

/// Gate parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateConfig {
    /// Maximum tolerated p95 oracle gap.
    pub threshold_p95: f64,
    /// Candidate cap per oracle search.
    pub candidate_cap: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            threshold_p95: 1.10,
            candidate_cap: 512,
        }
    }
}

/// Gate verdict plus the evidence behind it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateOutcome {
    /// Whether the corpus passed the threshold.
    pub passed: bool,
    /// The threshold applied.
    pub threshold_p95: f64,
    /// Distributional summary of the gaps.
    pub summary: GapSummary,
    /// Per-shape measurements.
    pub samples: Vec<GapSample>,
}

/// Measures the oracle gap of every corpus case on its own machine and
/// compares the p95 against the threshold. Records `gate.runs` /
/// `gate.failures` counters when telemetry is enabled. An empty corpus
/// fails the gate: a gate that checks nothing must not report green.
pub fn run_gate(env: &ConformanceEnv, corpus: &[FuzzCase], config: &GateConfig) -> GateOutcome {
    let samples: Vec<GapSample> = corpus
        .iter()
        .map(|case| {
            gap_for(
                env.compiler_for(case),
                case.machine,
                &case.op,
                config.candidate_cap,
            )
        })
        .collect();
    let summary = summarize(&samples);
    let passed = !samples.is_empty() && summary.p95 <= config.threshold_p95;
    let telemetry = env.telemetry();
    if telemetry.is_enabled() {
        let registry = telemetry.registry();
        registry.counter("gate.runs").inc();
        if !passed {
            registry.counter("gate.failures").inc();
        }
    }
    GateOutcome {
        passed,
        threshold_p95: config.threshold_p95,
        summary,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_corpus_fails_closed() {
        let env = ConformanceEnv::fast();
        let outcome = run_gate(&env, &[], &GateConfig::default());
        assert!(!outcome.passed);
        assert_eq!(outcome.summary.count, 0);
    }
}
