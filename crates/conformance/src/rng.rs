//! Deterministic xorshift64* generator for fuzzing.
//!
//! The fuzzer's whole value rests on reproducibility: a corpus entry is
//! just a seed plus a shape, and replaying it must regenerate bit-identical
//! inputs on any machine, forever. So no wall-clock, no OS entropy, no
//! dependence on an external RNG crate whose stream might change — a
//! self-contained xorshift64* with a splitmix64-scrambled seed.

/// A deterministic xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded by `seed`. Any seed is valid (zero is scrambled
    /// to a non-zero state, which xorshift requires).
    pub fn new(seed: u64) -> Self {
        // Splitmix64 scramble so nearby seeds yield unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z.max(1) }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.range(0, items.len() - 1)]
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = XorShift64::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi, "endpoints must be reachable");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
