//! Crash-injection harness for the durable warm-state format.
//!
//! The recovery contract (`mikpoly::persist` + `mikpoly::recovery`) makes
//! two promises about arbitrary on-disk damage:
//!
//! 1. **The loader never panics** — not on truncation, not on bit flips,
//!    not on attacker-shaped garbage. Damage is a value
//!    ([`mikpoly::SalvagedBundle`]), never a crash.
//! 2. **Salvage is exact** — truncating a bundle at *any* byte offset
//!    recovers precisely the records whose bytes (payload + CRC) lie
//!    entirely before the cut: the longest valid prefix, nothing more,
//!    nothing less.
//!
//! This module proves both by brute force: it encodes a real bundle from
//! freshly compiled programs, then truncates it at **every** byte offset,
//! flips seeded random bits, and feeds seeded arbitrary bytes through the
//! strict and salvage decoders under `catch_unwind`. The
//! [`record_end_offsets`] index is the oracle for promise 2. The same
//! sweep runs against the previous binary format (v2, no checksums) for
//! the no-panic promise — v2 predates per-record CRCs, so its salvage
//! prefix stops at the first *structurally* invalid record instead.
//!
//! `scripts/ci.sh` runs this via `conformance crash --seed N`; the
//! `cache-bench` CLI embeds a smaller copy of the same matrix so the
//! persistence benchmark exercises its own format.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mikpoly::{
    decode_bundle, encode_bundle, encode_bundle_v2, record_end_offsets, salvage_bundle,
    CompiledProgram,
};
use tensor_ir::{GemmShape, Operator};

use crate::rng::XorShift64;
use crate::{ConformanceEnv, MachineKind};

/// Tuning knobs of one crash-matrix run. Every stage is deterministic
/// under [`CrashConfig::seed`].
#[derive(Debug, Clone, Copy)]
pub struct CrashConfig {
    /// Seed for the bit-flip positions and the fuzz blobs.
    pub seed: u64,
    /// Distinct programs encoded into the probe bundle.
    pub programs: usize,
    /// Single-bit-flip trials against the v3 bundle.
    pub flips: usize,
    /// Arbitrary-bytes decoder trials.
    pub fuzz_blobs: usize,
}

impl Default for CrashConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            programs: 3,
            flips: 256,
            fuzz_blobs: 256,
        }
    }
}

/// What one crash-matrix run covered, and every contract violation it
/// found. An empty [`CrashReport::violations`] is the pass condition.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Truncation offsets swept (v3 and v2 bundles combined).
    pub truncations: usize,
    /// Bit-flip trials run.
    pub flips: usize,
    /// Arbitrary-bytes trials run.
    pub fuzz_blobs: usize,
    /// Human-readable contract violations; empty means the durable
    /// format kept both promises.
    pub violations: Vec<String>,
}

impl CrashReport {
    /// Whether every trial upheld the recovery contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compiles `count` distinct small GEMMs on the shared environment —
/// real programs, so the probe bundle has realistic record sizes.
fn probe_programs(env: &ConformanceEnv, count: usize) -> Vec<CompiledProgram> {
    let compiler = env.engine(MachineKind::Gpu).gemm_compiler();
    (0..count)
        .map(|i| {
            let m = 32 + 32 * i;
            let op = Operator::gemm(GemmShape::new(m, 64, 64));
            compiler.compile(&op).as_ref().clone()
        })
        .collect()
}

/// Runs `f` under `catch_unwind`, mapping a panic to a violation string.
fn no_panic<T>(context: &str, f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| format!("{context}: PANICKED: {}", mikpoly::panic_reason(&*payload)))
}

/// Truncates `bytes` at every offset and checks the salvage contract.
/// With `ends` (the v3 record-end oracle) the salvaged count must equal
/// the exact valid prefix; without it (v2) only the no-panic and
/// prefix-monotonicity promises apply.
fn truncation_sweep(label: &str, bytes: &[u8], ends: Option<&[usize]>, report: &mut CrashReport) {
    let mut previous = 0usize;
    for cut in 0..=bytes.len() {
        report.truncations += 1;
        let salvage = match no_panic(&format!("{label} truncated at {cut}"), || {
            salvage_bundle(&bytes[..cut])
        }) {
            Ok(salvage) => salvage,
            Err(violation) => {
                report.violations.push(violation);
                continue;
            }
        };
        if let Some(ends) = ends {
            let expected = ends.iter().filter(|&&end| end <= cut).count();
            if salvage.programs.len() != expected {
                report.violations.push(format!(
                    "{label} truncated at {cut}: salvaged {} records, expected the exact \
                     valid prefix of {expected}",
                    salvage.programs.len()
                ));
            }
        } else if salvage.programs.len() < previous && cut < bytes.len() {
            // Without per-record CRCs the exact count is format-defined,
            // but more bytes can never salvage fewer records.
            report.violations.push(format!(
                "{label} truncated at {cut}: salvage went backwards ({} after {previous})",
                salvage.programs.len()
            ));
        }
        if cut == bytes.len() && !salvage.clean {
            report.violations.push(format!(
                "{label}: the undamaged bundle did not decode clean"
            ));
        }
        previous = salvage.programs.len();
    }
}

/// Flips one random bit per trial and checks that the strict decoder
/// rejects the damage (CRC32 detects every single-bit flip) while the
/// salvage path stays panic-free.
fn bit_flip_trials(bytes: &[u8], config: &CrashConfig, report: &mut CrashReport) {
    let mut rng = XorShift64::new(config.seed ^ 0xf11b);
    for trial in 0..config.flips {
        report.flips += 1;
        let pos = (rng.next_u64() as usize) % bytes.len();
        let bit = (rng.next_u64() % 8) as u8;
        let mut damaged = bytes.to_vec();
        damaged[pos] ^= 1 << bit;
        let context = format!("bit flip #{trial} at byte {pos} bit {bit}");
        match no_panic(&context, || decode_bundle(&damaged)) {
            Ok(Ok(_)) => report.violations.push(format!(
                "{context}: strict decode ACCEPTED checksummed damage"
            )),
            Ok(Err(_)) => {}
            Err(violation) => report.violations.push(violation),
        }
        if let Err(violation) = no_panic(&context, || salvage_bundle(&damaged)) {
            report.violations.push(violation);
        }
    }
}

/// Feeds seeded arbitrary bytes to both decoders. Half the blobs carry a
/// valid-looking `MPAC` header so the deeper decode paths get exercised,
/// a few lead with `{` to land in the legacy-JSON path.
fn fuzz_blob_trials(config: &CrashConfig, report: &mut CrashReport) {
    let mut rng = XorShift64::new(config.seed ^ 0xb10b);
    for trial in 0..config.fuzz_blobs {
        report.fuzz_blobs += 1;
        let len = (rng.next_u64() % 512) as usize;
        let mut blob: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        match trial % 4 {
            // Plausible v3/v2 header over garbage: magic + version.
            0 | 1 if blob.len() >= 8 => {
                blob[..4].copy_from_slice(b"MPAC");
                let version = if trial % 4 == 0 { 3u32 } else { 2u32 };
                blob[4..8].copy_from_slice(&version.to_le_bytes());
            }
            2 if !blob.is_empty() => blob[0] = b'{',
            _ => {}
        }
        let context = format!("fuzz blob #{trial} ({len} bytes)");
        if let Err(violation) = no_panic(&context, || {
            let _ = decode_bundle(&blob);
            let _ = salvage_bundle(&blob);
            let _ = record_end_offsets(&blob);
        }) {
            report.violations.push(violation);
        }
    }
}

/// Runs the full crash matrix: the every-offset truncation sweep against
/// v3 (exact-prefix oracle) and v2 (no-panic) bundles, the single-bit
/// flip trials, and the arbitrary-bytes trials.
pub fn crash_run(env: &ConformanceEnv, config: &CrashConfig) -> CrashReport {
    let mut report = CrashReport::default();
    let programs = probe_programs(env, config.programs.max(1));
    let v3 = encode_bundle(programs.iter());
    let v2 = encode_bundle_v2(programs.iter());
    match record_end_offsets(&v3) {
        Ok(ends) => truncation_sweep("v3 bundle", &v3, Some(&ends), &mut report),
        Err(e) => report.violations.push(format!(
            "record_end_offsets rejected a fresh v3 bundle: {e}"
        )),
    }
    truncation_sweep("v2 bundle", &v2, None, &mut report);
    bit_flip_trials(&v3, config, &mut report);
    fuzz_blob_trials(config, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_matrix_holds_on_a_fresh_bundle() {
        let env = ConformanceEnv::fast();
        let config = CrashConfig {
            flips: 64,
            fuzz_blobs: 64,
            ..CrashConfig::default()
        };
        let report = crash_run(&env, &config);
        assert!(
            report.passed(),
            "crash-matrix violations:\n{}",
            report.violations.join("\n")
        );
        assert!(report.truncations > 0);
        assert_eq!(report.flips, 64);
        assert_eq!(report.fuzz_blobs, 64);
    }
}
