//! # mikpoly-conformance — standing correctness tooling for the MikPoly stack
//!
//! The paper's strongest correctness evidence is Fig. 12(b): an exhaustive
//! **MikPoly-Oracle** simulates every candidate polymerization and shows the
//! analytic cost model picks near-optimal strategies. This crate turns that
//! one-off experiment into a permanent subsystem with three layers:
//!
//! * **Reference comparison** ([`assert_matches_reference`]): the single,
//!   ULP-aware comparator every functional test uses, replacing scattered
//!   absolute-tolerance checks.
//! * **Differential shape fuzzer** ([`fuzz_run`]): deterministic seeded
//!   generation of GEMM / batched-GEMM / conv shapes, driven through the
//!   full offline→online→execute pipeline on both GPU and NPU machine
//!   models, checking numerics, coverage, simulator invariants (including
//!   deterministic replay), and program-cache coherence — with automatic
//!   shrinking and a persisted regression corpus.
//! * **Cost-model-fidelity gate** ([`run_gate`]): measures the *oracle gap*
//!   (cost-model pick latency / exhaustive-oracle pick latency) over a
//!   pinned corpus and fails when the p95 exceeds a threshold, so a
//!   regression in the Eq. 2 model is caught in CI, not as benchmark drift.
//! * **Crash-injection matrix** ([`crash_run`]): truncates the durable
//!   warm-state bundle at every byte offset, flips seeded bits, and feeds
//!   arbitrary bytes through the loaders, proving recovery never panics
//!   and salvage recovers exactly the valid record prefix.
//!
//! The `conformance` binary exposes the fuzzer, gate, and crash matrix to
//! `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, OnceLock};

use accel_sim::MachineModel;
use mikpoly::telemetry::Telemetry;
use mikpoly::{Engine, MikPoly, OfflineOptions, OnlineOptions, TemplateKind};

pub mod crash;
pub mod fuzz;
pub mod gate;
pub mod oracle;
pub mod reference;
pub mod rng;

pub use crash::{crash_run, CrashConfig, CrashReport};
pub use fuzz::{
    append_to_corpus, default_case_count, fuzz_run, gen_op, load_corpus, run_case, save_corpus,
    shrink, CaseFailure, FaultSpec, FuzzCase, FuzzConfig, FuzzReport, MachineKind, OpSpec,
};
pub use gate::{run_gate, GateConfig, GateOutcome};
pub use oracle::{gap_for, sample_shapes, summarize, GapSample, GapSummary};
pub use reference::{
    assert_matches_reference, compare_to_reference, ulp_distance, Mismatch, MismatchReport,
    Tolerance,
};
pub use rng::XorShift64;

/// Lazily-built compilation environments for each modeled machine.
///
/// Offline tuning is the expensive part of a conformance run, so engines
/// are built once per machine on first use and shared across every case.
/// The online options are injectable — the gate's demonstration tests use
/// this to plant a deliberately broken cost model and verify it is caught.
pub struct ConformanceEnv {
    offline: OfflineOptions,
    online: OnlineOptions,
    telemetry: Arc<Telemetry>,
    gpu: OnceLock<Engine>,
    npu: OnceLock<Engine>,
}

impl ConformanceEnv {
    /// An environment with a reduced offline stage (small kernel library)
    /// — the right trade for conformance work, where *coverage of shapes*
    /// matters and *peak performance of the library* does not.
    pub fn fast() -> Self {
        let mut offline = OfflineOptions::fast();
        offline.n_gen = 4;
        Self {
            offline,
            online: OnlineOptions::default(),
            telemetry: Telemetry::disabled(),
            gpu: OnceLock::new(),
            npu: OnceLock::new(),
        }
    }

    /// An environment with the stock reduced offline stage
    /// ([`OfflineOptions::fast`]): a richer micro-kernel library than
    /// [`ConformanceEnv::fast`], worth the extra tuning time when the
    /// *quality of the cost model's picks* is what is being judged — i.e.
    /// for the fidelity gate, where a starved library would conflate
    /// library coverage with model fidelity.
    pub fn standard() -> Self {
        Self {
            offline: OfflineOptions::fast(),
            online: OnlineOptions::default(),
            telemetry: Telemetry::disabled(),
            gpu: OnceLock::new(),
            npu: OnceLock::new(),
        }
    }

    /// Overrides the offline options of every compiler built by this
    /// environment (builder style; call before first use).
    #[must_use]
    pub fn with_offline_options(mut self, offline: OfflineOptions) -> Self {
        self.offline = offline;
        self
    }

    /// Overrides the online options of every compiler built by this
    /// environment (builder style; call before first use).
    #[must_use]
    pub fn with_online_options(mut self, online: OnlineOptions) -> Self {
        self.online = online;
        self
    }

    /// Attaches a telemetry handle recording fuzz/gate/oracle counters
    /// (builder style; call before first use).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle conformance counters record into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    fn build_engine(&self, machine: MachineModel) -> Engine {
        let gemm = MikPoly::offline_with_telemetry(
            machine.clone(),
            &self.offline.clone().with_template(TemplateKind::Gemm),
            Arc::clone(&self.telemetry),
        )
        .with_options(self.online.clone());
        let conv = MikPoly::offline_with_telemetry(
            machine.clone(),
            &self.offline.clone().with_template(TemplateKind::Conv),
            Arc::clone(&self.telemetry),
        )
        .with_options(self.online.clone());
        Engine::from_compilers(machine, Arc::new(gemm), Arc::new(conv))
    }

    /// The engine for `machine`, built on first use.
    pub fn engine(&self, machine: MachineKind) -> &Engine {
        let slot = match machine {
            MachineKind::Gpu => &self.gpu,
            MachineKind::Npu => &self.npu,
        };
        slot.get_or_init(|| self.build_engine(machine.model()))
    }

    /// The compiler a case's operator routes to: the conv-template
    /// compiler for convolutions, the gemm-template compiler otherwise.
    pub fn compiler_for(&self, case: &FuzzCase) -> &MikPoly {
        let engine = self.engine(case.machine);
        if case.op.is_conv() {
            engine.conv_compiler()
        } else {
            engine.gemm_compiler()
        }
    }
}

impl std::fmt::Debug for ConformanceEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConformanceEnv")
            .field("gpu_built", &self.gpu.get().is_some())
            .field("npu_built", &self.npu.get().is_some())
            .finish()
    }
}
