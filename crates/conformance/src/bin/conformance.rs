//! Conformance CLI: the fuzz smoke stage and the cost-model-fidelity gate
//! that `scripts/ci.sh` runs.
//!
//! ```text
//! conformance fuzz [--seed N] [--cases N] [--corpus PATH] [--machines gpu,npu]
//! conformance gate --corpus PATH [--threshold F] [--cap N] [--out PATH]
//!                  [--cost-model full|wave-only|pipe-only]
//! conformance crash [--seed N] [--flips N] [--fuzz-blobs N]
//! ```
//!
//! `fuzz` replays the regression corpus, then runs seeded random cases;
//! any failure is shrunk, appended to the corpus (when given), and fails
//! the process. `gate` measures the oracle gap over the pinned corpus and
//! fails when the p95 exceeds the threshold. `crash` runs the durable
//! warm-state crash matrix: every-offset truncation, seeded bit flips,
//! and arbitrary bytes must never panic the loader, and salvage must
//! recover exactly the valid record prefix.

use std::process::ExitCode;

use mikpoly::{CostModelKind, OnlineOptions};
use mikpoly_conformance::{
    append_to_corpus, crash_run, default_case_count, fuzz_run, load_corpus, run_gate,
    ConformanceEnv, CrashConfig, FuzzConfig, GateConfig, MachineKind,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance fuzz [--seed N] [--cases N] [--corpus PATH] [--machines gpu,npu]\n\
         \x20      conformance gate --corpus PATH [--threshold F] [--cap N] [--out PATH]\n\
         \x20                       [--cost-model full|wave-only|pipe-only]\n\
         \x20      conformance crash [--seed N] [--flips N] [--fuzz-blobs N]"
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` pairs out of `args` into a key/value list.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

fn find<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse_machines(spec: &str) -> Result<Vec<MachineKind>, String> {
    spec.split(',')
        .map(|m| match m.trim() {
            "gpu" => Ok(MachineKind::Gpu),
            "npu" => Ok(MachineKind::Npu),
            other => Err(format!("unknown machine {other} (expected gpu or npu)")),
        })
        .collect()
}

fn fuzz_cmd(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let mut config = FuzzConfig {
        cases: default_case_count(),
        ..FuzzConfig::default()
    };
    if let Some(seed) = find(flags, "seed") {
        config.seed = seed.parse().map_err(|_| format!("bad --seed {seed}"))?;
    }
    if let Some(cases) = find(flags, "cases") {
        config.cases = cases.parse().map_err(|_| format!("bad --cases {cases}"))?;
    }
    if let Some(machines) = find(flags, "machines") {
        config.machines = parse_machines(machines)?;
    }
    let corpus_path = find(flags, "corpus");
    let corpus = match corpus_path {
        Some(path) => load_corpus(path).map_err(|e| format!("corpus {path}: {e}"))?,
        None => Vec::new(),
    };

    let env = ConformanceEnv::fast();
    let report = fuzz_run(&env, &config, &corpus);
    println!(
        "fuzz: {} cases ({} corpus replays), seed {:#x}: {} failure(s), {} shrink step(s)",
        report.cases_run,
        report.corpus_replayed,
        config.seed,
        report.failures.len(),
        report.shrink_steps
    );
    for failure in &report.failures {
        eprintln!("FAIL {} — {}", failure.case, failure.reason);
        if let Some(path) = corpus_path {
            append_to_corpus(path, &failure.case)
                .map_err(|e| format!("appending to corpus {path}: {e}"))?;
        }
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn gate_cmd(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let corpus_path = find(flags, "corpus").ok_or("gate requires --corpus PATH")?;
    let corpus = load_corpus(corpus_path).map_err(|e| format!("corpus {corpus_path}: {e}"))?;
    if corpus.is_empty() {
        return Err(format!("corpus {corpus_path} is empty or missing"));
    }
    let mut config = GateConfig::default();
    if let Some(t) = find(flags, "threshold") {
        config.threshold_p95 = t.parse().map_err(|_| format!("bad --threshold {t}"))?;
    }
    if let Some(cap) = find(flags, "cap") {
        config.candidate_cap = cap.parse().map_err(|_| format!("bad --cap {cap}"))?;
    }
    // `--cost-model wave-only|pipe-only` deliberately cripples the model
    // — the way to demonstrate (and debug) what the gate would catch.
    let cost_model = match find(flags, "cost-model") {
        None | Some("full") => CostModelKind::Full,
        Some("wave-only") => CostModelKind::WaveOnly,
        Some("pipe-only") => CostModelKind::PipeOnly,
        Some(other) => return Err(format!("unknown --cost-model {other}")),
    };

    // The gate judges the cost model's picks, so it runs against the
    // standard (richer) micro-kernel library — a starved library would
    // blame the model for gaps that are really missing kernels.
    let env = ConformanceEnv::standard().with_online_options(OnlineOptions {
        cost_model,
        ..OnlineOptions::default()
    });
    let outcome = run_gate(&env, &corpus, &config);
    println!(
        "gate: {} shapes, gap p50 {:.4} p95 {:.4} max {:.4} (threshold p95 <= {:.2}, {} truncated) — {}",
        outcome.summary.count,
        outcome.summary.p50,
        outcome.summary.p95,
        outcome.summary.max,
        outcome.threshold_p95,
        outcome.summary.truncated,
        if outcome.passed { "PASS" } else { "FAIL" }
    );
    if let Some(out) = find(flags, "out") {
        let json = serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    }
    Ok(if outcome.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn crash_cmd(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let mut config = CrashConfig::default();
    if let Some(seed) = find(flags, "seed") {
        config.seed = seed.parse().map_err(|_| format!("bad --seed {seed}"))?;
    }
    if let Some(flips) = find(flags, "flips") {
        config.flips = flips.parse().map_err(|_| format!("bad --flips {flips}"))?;
    }
    if let Some(blobs) = find(flags, "fuzz-blobs") {
        config.fuzz_blobs = blobs
            .parse()
            .map_err(|_| format!("bad --fuzz-blobs {blobs}"))?;
    }
    // A panicking loader is a *finding* here, not a crash: silence the
    // default hook so a violating trial reports one line instead of a
    // backtrace per offset.
    std::panic::set_hook(Box::new(|_| {}));
    let env = ConformanceEnv::fast();
    let report = crash_run(&env, &config);
    let _ = std::panic::take_hook();
    println!(
        "crash: seed {:#x}: {} truncation offsets, {} bit flips, {} fuzz blobs: {} violation(s)",
        config.seed,
        report.truncations,
        report.flips,
        report.fuzz_blobs,
        report.violations.len()
    );
    for violation in &report.violations {
        eprintln!("FAIL {violation}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "fuzz" => fuzz_cmd(&flags),
        "gate" => gate_cmd(&flags),
        "crash" => crash_cmd(&flags),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
