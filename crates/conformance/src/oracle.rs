//! Oracle-gap measurement: how close the Eq. 2 cost model gets to the
//! exhaustively-simulated optimum (the paper's Fig. 12(b) MikPoly-Oracle).
//!
//! The *oracle gap* of a shape is `sim(cost-model pick) / sim(oracle
//! pick)`: 1.0 means the analytic model chose the true-best strategy; 1.10
//! means it left 10% on the table. The oracle enumeration is bounded by a
//! candidate cap so a whole corpus stays tractable; truncated searches are
//! flagged (a truncated oracle can, in principle, be *worse* than the
//! model pick, yielding a gap below 1).

use serde::{Deserialize, Serialize};

use mikpoly::MikPoly;
use tensor_ir::Operator;

use crate::fuzz::{MachineKind, OpSpec};
use crate::rng::XorShift64;

/// One shape's oracle-gap measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapSample {
    /// The measured shape.
    pub op: OpSpec,
    /// Machine the measurement ran on.
    pub machine: MachineKind,
    /// Simulated latency of the cost model's pick, ns.
    pub model_ns: f64,
    /// Simulated latency of the oracle's pick, ns.
    pub oracle_ns: f64,
    /// `model_ns / oracle_ns`.
    pub gap: f64,
    /// Candidate strategies the oracle simulated.
    pub candidates: usize,
    /// Whether the candidate cap truncated the enumeration.
    pub truncated: bool,
}

/// Measures one operator's oracle gap on `compiler`, simulating at most
/// `cap` candidates.
pub fn gap_for(
    compiler: &MikPoly,
    machine: MachineKind,
    op_spec: &OpSpec,
    cap: usize,
) -> GapSample {
    let op: Operator = op_spec.operator();
    let model_program = compiler.compile(&op);
    let model_ns = compiler.simulate(&model_program).time_ns;
    let oracle = compiler.compile_oracle_capped(&op, cap);
    // `compile_oracle_capped` stores the winning simulated latency in
    // `predicted_ns`, saving a redundant simulation here.
    let oracle_ns = oracle.program.predicted_ns;
    GapSample {
        op: *op_spec,
        machine,
        model_ns,
        oracle_ns,
        gap: model_ns / oracle_ns,
        candidates: oracle.candidates,
        truncated: oracle.truncated,
    }
}

/// Distributional summary of a gap corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean gap.
    pub mean: f64,
    /// Median gap.
    pub p50: f64,
    /// 95th-percentile gap (nearest-rank).
    pub p95: f64,
    /// Worst gap.
    pub max: f64,
    /// Samples whose oracle enumeration was truncated by the cap.
    pub truncated: usize,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes gap samples (p50/p95 by nearest rank).
pub fn summarize(samples: &[GapSample]) -> GapSummary {
    let mut gaps: Vec<f64> = samples.iter().map(|s| s.gap).collect();
    gaps.sort_by(|a, b| a.total_cmp(b));
    GapSummary {
        count: gaps.len(),
        mean: if gaps.is_empty() {
            f64::NAN
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        },
        p50: percentile(&gaps, 0.50),
        p95: percentile(&gaps, 0.95),
        max: gaps.last().copied().unwrap_or(f64::NAN),
        truncated: samples.iter().filter(|s| s.truncated).count(),
    }
}

/// Draws `count` deterministic GEMM-family shapes for gap measurement.
/// Uses the gemm template only (plain + batched) so a single compiler
/// serves the whole sweep; dimensions span the dynamic range the paper's
/// workloads exercise, scaled to keep an exhaustive sweep tractable.
pub fn sample_shapes(seed: u64, count: usize) -> Vec<OpSpec> {
    let mut rng = XorShift64::new(seed);
    (0..count)
        .map(|_| {
            if rng.chance(3, 4) {
                OpSpec::Gemm {
                    m: rng.range(8, 1024),
                    n: rng.range(8, 512),
                    k: rng.range(8, 256),
                }
            } else {
                OpSpec::BatchedGemm {
                    batch: rng.range(2, 8),
                    m: rng.range(8, 128),
                    n: rng.range(8, 128),
                    k: rng.range(8, 64),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gap: f64) -> GapSample {
        GapSample {
            op: OpSpec::Gemm { m: 1, n: 1, k: 1 },
            machine: MachineKind::Gpu,
            model_ns: gap,
            oracle_ns: 1.0,
            gap,
            candidates: 1,
            truncated: false,
        }
    }

    #[test]
    fn summary_percentiles() {
        let samples: Vec<GapSample> = (1..=100).map(|i| sample(1.0 + i as f64 / 100.0)).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50 - 1.50).abs() < 1e-9, "p50 = {}", s.p50);
        assert!((s.p95 - 1.95).abs() < 1e-9, "p95 = {}", s.p95);
        assert!((s.max - 2.00).abs() < 1e-9);
        assert_eq!(s.truncated, 0);
    }

    #[test]
    fn single_sample_summary() {
        let s = summarize(&[sample(1.07)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 1.07);
        assert_eq!(s.p95, 1.07);
    }

    #[test]
    fn sample_shapes_are_deterministic_and_valid() {
        let a = sample_shapes(11, 40);
        let b = sample_shapes(11, 40);
        assert_eq!(a, b);
        assert!(a.iter().any(|s| matches!(s, OpSpec::BatchedGemm { .. })));
        for s in &a {
            let _ = s.operator();
        }
    }
}
