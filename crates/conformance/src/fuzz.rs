//! Differential shape fuzzer over the full compile-and-execute pipeline.
//!
//! Each fuzz case is a `(machine, operator shape, data seed)` triple —
//! fully deterministic, serializable, and therefore replayable forever.
//! A case drives the offline→online→execute pipeline and checks four
//! independent properties:
//!
//! 1. **Numerics**: the polymerized program, functionally executed,
//!    matches `tensor_ir::reference_gemm` / `reference_conv2d` under the
//!    shared ULP-aware [`crate::Tolerance`].
//! 2. **Coverage**: the program tiles the output space exactly.
//! 3. **Simulator invariants**: the program's device launch passes every
//!    [`accel_sim::invariants`] check, including deterministic replay.
//! 4. **Cache coherence**: an immediate recompile of the same operator is
//!    answered by the program cache with the identical program.
//!
//! Failures are *shrunk* — dimensions halved and decremented while the
//! failure reproduces — and persisted to a JSON regression corpus so
//! every future run replays past counterexamples first.

use serde::{Deserialize, Serialize};

use accel_sim::{MachineModel, TimingMode};
use mikpoly::{
    execute_conv2d, execute_gemm, panic_reason, CacheOutcome, CompileBudget, MikPolyError,
};
use tensor_ir::{reference_conv2d, reference_gemm, Conv2dShape, GemmShape, Operator, Tensor};

use crate::reference::{compare_to_reference, Tolerance};
use crate::rng::XorShift64;
use crate::ConformanceEnv;

/// Which modeled accelerator a case targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// NVIDIA A100 model (dynamic hardware scheduling).
    Gpu,
    /// Ascend 910A model (static compiler-assigned placement).
    Npu,
}

impl MachineKind {
    /// The machine model this kind denotes.
    pub fn model(&self) -> MachineModel {
        match self {
            MachineKind::Gpu => MachineModel::a100(),
            MachineKind::Npu => MachineModel::ascend910a(),
        }
    }
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MachineKind::Gpu => "gpu",
            MachineKind::Npu => "npu",
        })
    }
}

/// A fuzzable operator shape. Winograd is deliberately excluded: it runs
/// through a transform domain with its own looser numerics and is covered
/// by dedicated tests, not the differential fuzzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpSpec {
    /// Plain GEMM.
    Gemm {
        /// Rows of A / C.
        m: usize,
        /// Columns of B / C.
        n: usize,
        /// Reduction depth.
        k: usize,
    },
    /// Batched GEMM (flattened into the row dimension by the compiler).
    BatchedGemm {
        /// Independent instances.
        batch: usize,
        /// Per-instance rows.
        m: usize,
        /// Per-instance columns.
        n: usize,
        /// Per-instance reduction depth.
        k: usize,
    },
    /// Implicit-GEMM 2-D convolution.
    Conv2d {
        /// Batch size.
        batch: usize,
        /// Input channels.
        in_channels: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel extent (1 or 3).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
}

impl OpSpec {
    /// The concrete operator this spec describes.
    pub fn operator(&self) -> Operator {
        match *self {
            OpSpec::Gemm { m, n, k } => Operator::gemm(GemmShape::new(m, n, k)),
            OpSpec::BatchedGemm { batch, m, n, k } => {
                Operator::batched_gemm(batch, GemmShape::new(m, n, k))
            }
            OpSpec::Conv2d {
                batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel,
                stride,
                padding,
            } => Operator::conv2d(Conv2dShape::new(
                batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel,
                kernel,
                stride,
                padding,
            )),
        }
    }

    /// Whether this spec routes through the conv-template compiler.
    pub fn is_conv(&self) -> bool {
        matches!(self, OpSpec::Conv2d { .. })
    }

    /// Structurally smaller variants that are still valid operators, in
    /// preference order (big halvings first, then single decrements).
    fn shrink_candidates(&self) -> Vec<OpSpec> {
        let mut out = Vec::new();
        let shrunk_dims = |dims: &[usize]| -> Vec<Vec<usize>> {
            let mut variants = Vec::new();
            for step in [2usize, 1] {
                for (i, &d) in dims.iter().enumerate() {
                    let smaller = if step == 2 {
                        d / 2
                    } else {
                        d.saturating_sub(1)
                    };
                    if smaller >= 1 && smaller < d {
                        let mut v = dims.to_vec();
                        v[i] = smaller;
                        variants.push(v);
                    }
                }
            }
            variants
        };
        match *self {
            OpSpec::Gemm { m, n, k } => {
                for v in shrunk_dims(&[m, n, k]) {
                    out.push(OpSpec::Gemm {
                        m: v[0],
                        n: v[1],
                        k: v[2],
                    });
                }
            }
            OpSpec::BatchedGemm { batch, m, n, k } => {
                for v in shrunk_dims(&[batch, m, n, k]) {
                    if v[0] >= 2 {
                        out.push(OpSpec::BatchedGemm {
                            batch: v[0],
                            m: v[1],
                            n: v[2],
                            k: v[3],
                        });
                    } else {
                        out.push(OpSpec::Gemm {
                            m: v[1],
                            n: v[2],
                            k: v[3],
                        });
                    }
                }
            }
            OpSpec::Conv2d {
                batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let min_hw = kernel.saturating_sub(2 * padding).max(1);
                for v in shrunk_dims(&[batch, in_channels, height, width, out_channels]) {
                    if v[2] < min_hw || v[3] < min_hw {
                        continue; // output extent would vanish
                    }
                    out.push(OpSpec::Conv2d {
                        batch: v[0],
                        in_channels: v[1],
                        height: v[2],
                        width: v[3],
                        out_channels: v[4],
                        kernel,
                        stride,
                        padding,
                    });
                }
                if kernel == 3 && height >= 1 && width >= 1 {
                    out.push(OpSpec::Conv2d {
                        batch,
                        in_channels,
                        height,
                        width,
                        out_channels,
                        kernel: 1,
                        stride,
                        padding: 0,
                    });
                }
                if stride > 1 {
                    out.push(OpSpec::Conv2d {
                        batch,
                        in_channels,
                        height,
                        width,
                        out_channels,
                        kernel,
                        stride: 1,
                        padding,
                    });
                }
                if padding > 0 && height > kernel && width > kernel {
                    out.push(OpSpec::Conv2d {
                        batch,
                        in_channels,
                        height,
                        width,
                        out_channels,
                        kernel,
                        stride,
                        padding: 0,
                    });
                }
            }
        }
        out
    }
}

/// Deterministic fault dimensions a case can optionally carry: each
/// enabled dimension fires on the shape's first compile (rate 1 under the
/// seeded [`accel_sim::FaultPlan`] schedule), so the case must recover —
/// retry the injected panic, evict the corrupted entry — and still pass
/// every differential property. Boolean dimensions (rather than float
/// rates) keep the spec `Eq + Hash` and the corpus replay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Inject a search stall (bounded, well under any test timeout).
    pub stall: bool,
    /// Corrupt the compiled program so cache validation must evict it.
    pub corrupt: bool,
    /// Panic the first compile attempt (recovered by one retry).
    pub panic: bool,
}

impl FaultSpec {
    /// The concrete fault-injection schedule this spec denotes.
    pub fn plan(&self) -> accel_sim::FaultPlan {
        accel_sim::FaultPlan {
            seed: self.seed,
            device_fault_rate: 0.0,
            search_stall_rate: if self.stall { 1.0 } else { 0.0 },
            // Visible in traces, negligible against the offline stage.
            search_stall_ns: 100_000,
            cache_corrupt_rate: if self.corrupt { 1.0 } else { 0.0 },
            compile_panic_rate: if self.panic { 1.0 } else { 0.0 },
            panic_attempts: 1,
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault(seed={:#x}", self.seed)?;
        for (on, name) in [
            (self.stall, "stall"),
            (self.corrupt, "corrupt"),
            (self.panic, "panic"),
        ] {
            if on {
                write!(f, "+{name}")?;
            }
        }
        f.write_str(")")
    }
}

/// One deterministic fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Target machine model.
    pub machine: MachineKind,
    /// Operator shape under test.
    pub op: OpSpec,
    /// Seed for the pseudo-random operand data.
    pub data_seed: u64,
    /// Optional injected-fault dimensions the pipeline must recover from
    /// (absent in corpora written before fault fuzzing existed).
    #[serde(default)]
    pub fault: Option<FaultSpec>,
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} seed={:#x}",
            self.machine,
            self.op.operator(),
            self.data_seed
        )?;
        if let Some(fault) = &self.fault {
            write!(f, " {fault}")?;
        }
        Ok(())
    }
}

/// Fuzz-run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed for shape generation (data seeds derive from it).
    pub seed: u64,
    /// Number of random cases to generate.
    pub cases: usize,
    /// Machines to alternate between.
    pub machines: Vec<MachineKind>,
    /// Bound on total shrink re-executions per failure.
    pub max_shrink_steps: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x5EED,
            cases: default_case_count(),
            machines: vec![MachineKind::Gpu, MachineKind::Npu],
            max_shrink_steps: 200,
        }
    }
}

/// Case count from the `CONFORMANCE_CASES` environment variable (the
/// nightly-scale knob), defaulting to 64.
pub fn default_case_count() -> usize {
    std::env::var("CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A case that failed, after shrinking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseFailure {
    /// The (shrunk) failing case.
    pub case: FuzzCase,
    /// What went wrong.
    pub reason: String,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed (corpus replays + random).
    pub cases_run: usize,
    /// Cases replayed from the regression corpus.
    pub corpus_replayed: usize,
    /// Failures, each shrunk to a minimal reproducer.
    pub failures: Vec<CaseFailure>,
    /// Total shrink re-executions spent.
    pub shrink_steps: usize,
}

/// Draws one random operator spec.
pub fn gen_op(rng: &mut XorShift64) -> OpSpec {
    match rng.range(0, 2) {
        0 => OpSpec::Gemm {
            m: rng.range(1, 192),
            n: rng.range(1, 160),
            k: rng.range(1, 96),
        },
        1 => OpSpec::BatchedGemm {
            batch: rng.range(2, 4),
            m: rng.range(1, 64),
            n: rng.range(1, 64),
            k: rng.range(1, 48),
        },
        _ => {
            let kernel = *rng.pick(&[1usize, 3]);
            let padding = if kernel == 3 { rng.range(0, 1) } else { 0 };
            OpSpec::Conv2d {
                batch: rng.range(1, 2),
                in_channels: rng.range(1, 6),
                height: rng.range(3, 12),
                width: rng.range(3, 12),
                out_channels: rng.range(1, 6),
                kernel,
                stride: rng.range(1, 2),
                padding,
            }
        }
    }
}

/// Runs one case through compile → execute → verify.
///
/// # Errors
///
/// Returns a description of the first failed property.
pub fn run_case(env: &ConformanceEnv, case: &FuzzCase) -> Result<(), String> {
    let op = case.op.operator();
    let compiler = env.compiler_for(case);
    let program = match &case.fault {
        None => compiler.compile(&op),
        Some(spec) => {
            // The injected faults hit a shape's first compile attempt;
            // panic isolation plus one retry is exactly the serving
            // runtime's recovery contract, and poisoned-entry eviction
            // happens inside `try_compile` itself.
            compiler.set_fault_plan(Some(std::sync::Arc::new(spec.plan())));
            let compile = || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    compiler.try_compile(&op, CompileBudget::default())
                }))
                .unwrap_or_else(|payload| {
                    Err(MikPolyError::CompilePanicked {
                        reason: panic_reason(&*payload),
                    })
                })
            };
            let result = compile().or_else(|first| match first {
                MikPolyError::CompilePanicked { .. } => compile(),
                other => Err(other),
            });
            compiler.set_fault_plan(None);
            result.map_err(|e| format!("fault recovery: {e}"))?.program
        }
    };

    // Coverage: the program must tile the output exactly.
    program
        .verify_coverage()
        .map_err(|e| format!("coverage: {e:?}"))?;

    // Numerics against the reference semantics.
    let (got, want) = match case.op {
        OpSpec::Gemm { .. } | OpSpec::BatchedGemm { .. } => {
            let shape = op.gemm_view().shape;
            let a = Tensor::random(&[shape.m, shape.k], case.data_seed);
            let b = Tensor::random(&[shape.k, shape.n], case.data_seed ^ 0xA5A5_A5A5);
            (
                execute_gemm(&program, &a, &b),
                reference_gemm(shape, &a, &b),
            )
        }
        OpSpec::Conv2d { .. } => {
            let shape = match op {
                Operator::Conv2d { shape, .. } => shape,
                _ => unreachable!("conv spec produces a conv operator"),
            };
            let input = Tensor::random(
                &[shape.batch, shape.in_channels, shape.height, shape.width],
                case.data_seed,
            );
            let filter = Tensor::random(
                &[
                    shape.out_channels,
                    shape.in_channels,
                    shape.kernel_h,
                    shape.kernel_w,
                ],
                case.data_seed ^ 0xA5A5_A5A5,
            );
            (
                execute_conv2d(&program, &input, &filter),
                reference_conv2d(shape, &input, &filter),
            )
        }
    };
    compare_to_reference(&got, &want, Tolerance::default())
        .map_err(|report| format!("numerics: {report}"))?;

    // Simulator invariants, including deterministic replay.
    let launch = compiler.launch_for(&program);
    let violations = accel_sim::check_launch(compiler.machine(), &launch, TimingMode::Evaluate);
    if let Some(v) = violations.first() {
        return Err(format!(
            "simulator invariants: {v} (+{} more)",
            violations.len() - 1
        ));
    }

    // Cache coherence: an immediate recompile must be a hit on the very
    // same program — the serving path's correctness assumption.
    let (again, outcome) = compiler.compile_with_outcome(&op);
    if outcome != CacheOutcome::Hit {
        return Err(format!("cache coherence: recompile outcome {outcome:?}"));
    }
    if !std::sync::Arc::ptr_eq(&program, &again) {
        return Err("cache coherence: recompile returned a different program".into());
    }
    Ok(())
}

/// Shrinks a failing case to a structurally smaller one that still fails,
/// within `max_steps` re-executions. Returns the minimal case, its failure
/// reason, and the steps spent.
pub fn shrink(
    env: &ConformanceEnv,
    case: FuzzCase,
    reason: String,
    max_steps: usize,
) -> (FuzzCase, String, usize) {
    let mut best = case;
    let mut best_reason = reason;
    let mut steps = 0usize;
    // Try dropping the fault dimension before shrinking the shape: a
    // failure that still reproduces fault-free is a plain shape bug, and
    // the fault-free case is the more minimal regression corpus entry.
    if best.fault.is_some() && steps < max_steps {
        let candidate = FuzzCase {
            fault: None,
            ..best
        };
        steps += 1;
        if let Err(reason) = run_case(env, &candidate) {
            best = candidate;
            best_reason = reason;
        }
    }
    'outer: while steps < max_steps {
        for candidate_op in best.op.shrink_candidates() {
            if steps >= max_steps {
                break 'outer;
            }
            let candidate = FuzzCase {
                op: candidate_op,
                ..best
            };
            steps += 1;
            if let Err(reason) = run_case(env, &candidate) {
                best = candidate;
                best_reason = reason;
                continue 'outer;
            }
        }
        break; // no smaller candidate still fails: minimal
    }
    (best, best_reason, steps)
}

/// Replays the corpus, then `config.cases` random cases; failures are
/// shrunk. Records `fuzz.cases` / `fuzz.failures` / `fuzz.shrink_steps`
/// counters when the environment's telemetry is enabled.
pub fn fuzz_run(env: &ConformanceEnv, config: &FuzzConfig, corpus: &[FuzzCase]) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut rng = XorShift64::new(config.seed);
    let execute = |env: &ConformanceEnv, case: FuzzCase, report: &mut FuzzReport| {
        report.cases_run += 1;
        if let Err(reason) = run_case(env, &case) {
            let (shrunk, reason, steps) = shrink(env, case, reason, config.max_shrink_steps);
            report.shrink_steps += steps;
            report.failures.push(CaseFailure {
                case: shrunk,
                reason,
            });
        }
    };
    for case in corpus {
        report.corpus_replayed += 1;
        execute(env, *case, &mut report);
    }
    for _ in 0..config.cases {
        let machine = *rng.pick(&config.machines);
        let op = gen_op(&mut rng);
        let data_seed = rng.next_u64();
        // About a quarter of the cases also carry injected faults the
        // pipeline must recover from before the properties are checked.
        let fault = if rng.range(0, 3) == 0 {
            Some(FaultSpec {
                seed: rng.next_u64(),
                stall: rng.range(0, 1) == 1,
                corrupt: rng.range(0, 1) == 1,
                panic: rng.range(0, 1) == 1,
            })
        } else {
            None
        };
        execute(
            env,
            FuzzCase {
                machine,
                op,
                data_seed,
                fault,
            },
            &mut report,
        );
    }
    let telemetry = env.telemetry();
    if telemetry.is_enabled() {
        let registry = telemetry.registry();
        registry.counter("fuzz.cases").add(report.cases_run as u64);
        registry
            .counter("fuzz.failures")
            .add(report.failures.len() as u64);
        registry
            .counter("fuzz.shrink_steps")
            .add(report.shrink_steps as u64);
    }
    report
}

/// Loads a JSON corpus; a missing file is an empty corpus.
///
/// # Errors
///
/// Returns an I/O or parse error for an existing-but-unreadable file.
pub fn load_corpus(path: impl AsRef<std::path::Path>) -> std::io::Result<Vec<FuzzCase>> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(Vec::new());
    }
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(std::io::Error::other)
}

/// Saves a corpus as pretty JSON (stable diffs under version control).
///
/// # Errors
///
/// Returns any I/O error from writing.
pub fn save_corpus(path: impl AsRef<std::path::Path>, cases: &[FuzzCase]) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(cases).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

/// Appends `case` to the corpus at `path` unless already present.
///
/// # Errors
///
/// Returns any I/O error from reading or writing the corpus file.
pub fn append_to_corpus(path: impl AsRef<std::path::Path>, case: &FuzzCase) -> std::io::Result<()> {
    let mut cases = load_corpus(&path)?;
    if !cases.contains(case) {
        cases.push(*case);
        save_corpus(path, &cases)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_op_is_deterministic() {
        let mut a = XorShift64::new(3);
        let mut b = XorShift64::new(3);
        for _ in 0..50 {
            assert_eq!(gen_op(&mut a), gen_op(&mut b));
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let op = OpSpec::Conv2d {
            batch: 2,
            in_channels: 4,
            height: 9,
            width: 9,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let weight = |o: &OpSpec| match *o {
            OpSpec::Gemm { m, n, k } => m * n * k,
            OpSpec::BatchedGemm { batch, m, n, k } => batch * m * n * k,
            OpSpec::Conv2d {
                batch,
                in_channels,
                height,
                width,
                out_channels,
                kernel,
                stride,
                padding,
            } => batch * in_channels * height * width * out_channels * kernel + stride + padding,
        };
        for candidate in op.shrink_candidates() {
            assert!(
                weight(&candidate) < weight(&op),
                "{candidate:?} not smaller than {op:?}"
            );
            let _ = candidate.operator(); // must be constructible
        }
    }

    #[test]
    fn corpus_round_trips() {
        let cases = vec![
            FuzzCase {
                machine: MachineKind::Gpu,
                op: OpSpec::Gemm { m: 7, n: 9, k: 3 },
                data_seed: 42,
                fault: None,
            },
            FuzzCase {
                machine: MachineKind::Npu,
                op: OpSpec::Conv2d {
                    batch: 1,
                    in_channels: 2,
                    height: 5,
                    width: 5,
                    out_channels: 3,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                data_seed: 43,
                fault: None,
            },
        ];
        let path = std::env::temp_dir().join("mikpoly-conformance-corpus-test.json");
        save_corpus(&path, &cases).expect("save");
        assert_eq!(load_corpus(&path).expect("load"), cases);
        // Appending an existing case is a no-op; a new one grows the file.
        append_to_corpus(&path, &cases[0]).expect("append dup");
        assert_eq!(load_corpus(&path).expect("load").len(), 2);
        let extra = FuzzCase {
            machine: MachineKind::Gpu,
            op: OpSpec::Gemm { m: 1, n: 1, k: 1 },
            data_seed: 1,
            fault: None,
        };
        append_to_corpus(&path, &extra).expect("append new");
        assert_eq!(load_corpus(&path).expect("load").len(), 3);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_corpus_is_empty() {
        let path = std::env::temp_dir().join("mikpoly-conformance-no-such-corpus.json");
        let _ = std::fs::remove_file(&path);
        assert!(load_corpus(&path).expect("missing is ok").is_empty());
    }
}
