//! ULP-aware comparison of executed programs against reference semantics.
//!
//! Every functional check in the workspace used to hand-roll
//! `approx_eq(&want, 1e-3)` with an absolute tolerance — fine for values
//! near 1, needlessly tight for large reductions and uselessly loose for
//! tiny ones. This module is the single shared comparator: an element
//! matches if it is close in *absolute* terms (for values near zero), in
//! *relative* terms, or within a few float *ULPs* (units in the last
//! place, the scale-free measure of rounding distance). A mismatch report
//! pinpoints the worst element so a failing shape is debuggable from the
//! panic message alone.

use tensor_ir::Tensor;

/// Element acceptance thresholds. An element passes if ANY of the three
/// criteria holds, so the default is strictly looser than the historical
/// `approx_eq(1e-3)` absolute check it replaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack, for values near zero.
    pub abs: f32,
    /// Relative slack against the reference magnitude.
    pub rel: f32,
    /// Maximum units-in-the-last-place distance.
    pub max_ulps: u32,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            abs: 1e-3,
            rel: 1e-4,
            max_ulps: 128,
        }
    }
}

/// Distance in representable floats between `a` and `b` (`u32::MAX` when
/// either is NaN). Uses the standard order-preserving bijection from IEEE
/// bits to integers, so the measure is scale-free and crosses zero cleanly.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        // Negative floats sort descending by raw bits; flip them below zero.
        i64::from(if bits < 0 { i32::MIN - bits } else { bits })
    }
    (ordered(a) - ordered(b))
        .unsigned_abs()
        .min(u64::from(u32::MAX)) as u32
}

/// The single worst element of a failed comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Flat index of the element.
    pub index: usize,
    /// Produced value.
    pub got: f32,
    /// Reference value.
    pub want: f32,
    /// Absolute difference.
    pub abs_diff: f32,
    /// ULP distance.
    pub ulps: u32,
}

/// Outcome of a failed tensor comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchReport {
    /// Number of elements outside tolerance.
    pub failed: usize,
    /// Total elements compared.
    pub total: usize,
    /// The element with the largest absolute error.
    pub worst: Mismatch,
}

impl std::fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} elements out of tolerance; worst at [{}]: got {}, want {} (|diff| = {:.3e}, {} ulps)",
            self.failed,
            self.total,
            self.worst.index,
            self.worst.got,
            self.worst.want,
            self.worst.abs_diff,
            self.worst.ulps
        )
    }
}

/// Compares `got` against the reference `want` under `tol`.
///
/// # Errors
///
/// Returns the mismatch report (shape mismatch is reported as every
/// element failing with a sentinel worst entry) when tensors differ.
pub fn compare_to_reference(
    got: &Tensor,
    want: &Tensor,
    tol: Tolerance,
) -> Result<(), MismatchReport> {
    if got.dims() != want.dims() {
        return Err(MismatchReport {
            failed: want.len(),
            total: want.len(),
            worst: Mismatch {
                index: 0,
                got: got.len() as f32,
                want: want.len() as f32,
                abs_diff: f32::INFINITY,
                ulps: u32::MAX,
            },
        });
    }
    let mut failed = 0usize;
    let mut worst: Option<Mismatch> = None;
    for (i, (&g, &w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        let abs_diff = (g - w).abs();
        let ulps = ulp_distance(g, w);
        let ok = !g.is_nan()
            && (abs_diff <= tol.abs || abs_diff <= tol.rel * w.abs() || ulps <= tol.max_ulps);
        if !ok {
            failed += 1;
            if worst.as_ref().is_none_or(|m| abs_diff > m.abs_diff) {
                worst = Some(Mismatch {
                    index: i,
                    got: g,
                    want: w,
                    abs_diff,
                    ulps,
                });
            }
        }
    }
    match worst {
        Some(worst) => Err(MismatchReport {
            failed,
            total: want.len(),
            worst,
        }),
        None => Ok(()),
    }
}

/// Asserts `got` matches the reference `want` under the default
/// [`Tolerance`], panicking with a located worst-element report prefixed
/// by `context` (e.g. the operator being verified).
///
/// # Panics
///
/// Panics when any element falls outside tolerance.
pub fn assert_matches_reference(got: &Tensor, want: &Tensor, context: &str) {
    if let Err(report) = compare_to_reference(got, want, Tolerance::default()) {
        panic!("{context}: {report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_tensors_match() {
        let t = Tensor::random(&[8, 8], 5);
        assert!(compare_to_reference(&t, &t, Tolerance::default()).is_ok());
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // Crossing zero counts both sides.
        let tiny = f32::from_bits(1);
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
    }

    #[test]
    fn large_values_pass_on_relative_tolerance() {
        // 1e6 with an absolute error of 0.05: fails abs=1e-3 but is well
        // within rel=1e-4 — the case the old absolute check got wrong.
        let want = Tensor::from_fn(&[4], |_| 1.0e6);
        let got = Tensor::from_fn(&[4], |_| 1.0e6 + 0.05);
        assert!(compare_to_reference(&got, &want, Tolerance::default()).is_ok());
    }

    #[test]
    fn genuine_mismatch_is_located() {
        let want = Tensor::zeros(&[2, 3]);
        let mut got = Tensor::zeros(&[2, 3]);
        got.as_mut_slice()[4] = 0.5;
        let report = compare_to_reference(&got, &want, Tolerance::default()).unwrap_err();
        assert_eq!(report.failed, 1);
        assert_eq!(report.worst.index, 4);
        assert_eq!(report.worst.got, 0.5);
    }

    #[test]
    fn nan_never_matches() {
        let want = Tensor::zeros(&[2]);
        let mut got = Tensor::zeros(&[2]);
        got.as_mut_slice()[0] = f32::NAN;
        assert!(compare_to_reference(&got, &want, Tolerance::default()).is_err());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(compare_to_reference(&a, &b, Tolerance::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "demo-op")]
    fn assert_panics_with_context() {
        let want = Tensor::zeros(&[2]);
        let mut got = Tensor::zeros(&[2]);
        got.as_mut_slice()[1] = 9.0;
        assert_matches_reference(&got, &want, "demo-op");
    }
}
