//! Dependency-free tracing and metrics for the MikPoly runtime.
//!
//! One [`Telemetry`] handle (shared as an `Arc`) carries everything:
//!
//! - a lock-free metrics [`Registry`] of counters, gauges, and
//!   log2-bucketed latency [`Histogram`]s with p50/p95/p99/max readout;
//! - lightweight spans — RAII wall-clock timers via the [`span!`] macro
//!   and analytically-placed virtual-timeline phases via
//!   [`Telemetry::record_span`] — buffered in a bounded sharded ring;
//! - two exporters: Chrome trace-event JSON
//!   ([`Telemetry::render_chrome_trace`], loadable in Perfetto /
//!   `chrome://tracing`) and a Prometheus-style plain-text snapshot
//!   ([`Registry::render_prometheus`]).
//!
//! Telemetry is zero-cost when disabled: [`Telemetry::disabled`] returns a
//! cached handle whose `is_enabled()` gate short-circuits every record
//! path before any allocation or clock read, and [`span!`] on a disabled
//! handle constructs an inert guard.
//!
//! The crate deliberately has **no dependencies** — it sits underneath
//! every other crate in the workspace (see `docs/observability.md` for the
//! span taxonomy and metric names).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod span;

use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub use chrome::render_chrome_trace;
pub use clock::{Clock, ClockNs};
pub use metrics::{Counter, Gauge, Histogram, LatencyStats, MetricsSnapshot, Registry};
pub use recorder::{
    ChainDisposition, ChainRecord, FlightRecorder, RecorderConfig, RetainReason, RetainedChain,
    RECORDER_SHARDS,
};
pub use slo::{
    render_blackbox, BurnRule, DispositionTally, SloEngine, SloObservation, SloPolicy, SloReport,
    WindowSli,
};
pub use span::{ArgValue, Lane, SpanKind, SpanRecord, SpanSink};

/// The shared telemetry handle: a metrics registry, a span sink, and a
/// real-clock epoch all instrumentation on one pipeline records against.
///
/// Handles are instance-based (not a process global) so parallel tests and
/// independent engines never share state; clone the `Arc` into every layer
/// that should report into the same trace.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    epoch: Instant,
    registry: Registry,
    spans: SpanSink,
    recorder: FlightRecorder,
}

impl Telemetry {
    /// A live handle: spans, metrics, and flight-recorder chains are
    /// recorded.
    pub fn enabled() -> Arc<Self> {
        Self::enabled_with_recorder(RecorderConfig::default())
    }

    /// A live handle with explicit flight-recorder tuning.
    pub fn enabled_with_recorder(config: RecorderConfig) -> Arc<Self> {
        Arc::new(Self {
            enabled: true,
            epoch: Instant::now(),
            registry: Registry::new(),
            spans: SpanSink::new(),
            recorder: FlightRecorder::new(config, true),
        })
    }

    /// The shared no-op handle: every record path short-circuits.
    pub fn disabled() -> Arc<Self> {
        static DISABLED: OnceLock<Arc<Telemetry>> = OnceLock::new();
        Arc::clone(DISABLED.get_or_init(|| {
            Arc::new(Telemetry {
                enabled: false,
                epoch: Instant::now(),
                registry: Registry::new(),
                spans: SpanSink::new(),
                recorder: FlightRecorder::new(RecorderConfig::default(), false),
            })
        }))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Real-clock nanoseconds since this handle's epoch.
    pub fn now_ns(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64
    }

    /// The metrics registry (a no-op handle still returns a registry; it
    /// just stays empty because callers gate on [`Telemetry::is_enabled`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Starts a real-clock RAII span on the current OS thread. Prefer the
    /// [`span!`] macro, which also attaches fields.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard { inner: None };
        }
        let depth = span::depth_enter();
        SpanGuard {
            inner: Some(SpanGuardInner {
                telemetry: self,
                name,
                start: Instant::now(),
                start_ns: self.now_ns(),
                depth,
                args: Vec::new(),
            }),
        }
    }

    /// Records a finished span at explicit coordinates (the serving
    /// simulator's virtual-timeline phases). No-op when disabled.
    pub fn record_span(&self, record: SpanRecord) {
        if self.enabled {
            self.spans.push(record);
        }
    }

    /// Takes every buffered span (emptying the buffer), sorted by start
    /// time.
    ///
    /// **Draining is destructive**: the buffer is emptied, so a second
    /// consumer sees nothing. A pipeline with both a Chrome-trace export
    /// and its own span analysis must drain once and share the vec.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.spans.drain()
    }

    /// Spans evicted from the bounded buffer under pressure.
    pub fn dropped_spans(&self) -> u64 {
        self.spans.dropped()
    }

    /// The flight recorder holding retained per-request chains (inert
    /// on a disabled handle).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Publishes telemetry self-health into the registry: span-ring
    /// drops as the `telemetry.spans_dropped` gauge (silent span loss
    /// used to be invisible in metric snapshots) plus flight-recorder
    /// retention/eviction gauges. No-op when disabled; call before
    /// exporting a snapshot.
    pub fn export_health(&self) {
        if !self.enabled {
            return;
        }
        let r = &self.registry;
        r.describe(
            "telemetry.spans_dropped",
            "spans evicted from the bounded span ring under pressure",
        );
        r.gauge("telemetry.spans_dropped")
            .set(self.spans.dropped() as f64);
        r.describe(
            "telemetry.chains_retained",
            "flight-recorder chains retained over the run",
        );
        r.gauge("telemetry.chains_retained")
            .set(self.recorder.retained() as f64);
        r.describe(
            "telemetry.chains_evicted",
            "retained chains later shed to honor the recorder memory budget",
        );
        r.gauge("telemetry.chains_evicted")
            .set(self.recorder.evicted() as f64);
    }

    /// Drains the span buffer and renders it as Chrome trace-event JSON.
    /// Destructive, like [`Telemetry::drain_spans`].
    pub fn render_chrome_trace(&self) -> String {
        chrome::render_chrome_trace(&self.drain_spans())
    }
}

#[derive(Debug)]
struct SpanGuardInner<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Instant,
    start_ns: f64,
    depth: u16,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard for a real-clock span: records on drop. Inert (and
/// allocation-free) when built from a disabled handle.
#[derive(Debug)]
#[must_use = "a span guard times the region it is alive for"]
pub struct SpanGuard<'a> {
    inner: Option<SpanGuardInner<'a>>,
}

impl SpanGuard<'_> {
    /// Whether this guard records anything — use to skip computing
    /// expensive field values for inert guards (the [`span!`] macro does).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a key=value field to the span (no-op when inert).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            span::depth_exit();
            let record = SpanRecord {
                name: inner.name,
                lane: Lane::HostThread(span::current_thread_lane()),
                kind: SpanKind::Complete,
                start_ns: inner.start_ns,
                dur_ns: inner.start.elapsed().as_nanos() as f64,
                depth: inner.depth,
                args: inner.args,
            };
            inner.telemetry.record_span(record);
        }
    }
}

/// Opens a real-clock RAII span: `span!(telemetry, "online.search")` or
/// `span!(telemetry, "online.search", shape = m, kind = "gemm")`. The
/// span ends (and is recorded) when the returned guard drops.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $telemetry.span($name);
        // Field expressions are only evaluated for live guards, so a
        // disabled handle never pays for e.g. a `to_string()` field.
        if guard.is_active() {
            $(guard.arg(stringify!($key), $value);)*
        }
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_shared_and_inert() {
        let a = Telemetry::disabled();
        let b = Telemetry::disabled();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_enabled());
        {
            let mut g = span!(a, "noop.region", key = 1u64);
            g.arg("more", 2u64);
        }
        a.record_span(SpanRecord::complete("x", Lane::Worker(0), 0.0, 1.0));
        assert!(a.drain_spans().is_empty());
    }

    #[test]
    fn raii_span_records_with_fields_and_nesting() {
        let t = Telemetry::enabled();
        {
            let _outer = span!(t, "outer.phase", shape = 128u64);
            {
                let _inner = span!(t, "inner.phase", kind = "gemm");
            }
        }
        let spans = t.drain_spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer.phase").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner.phase").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.args, vec![("shape", ArgValue::U64(128))]);
        assert_eq!(
            inner.args,
            vec![("kind", ArgValue::Str("gemm".to_string()))]
        );
        // Inner is contained in outer on the real clock.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1.0);
        assert!(matches!(outer.lane, Lane::HostThread(_)));
    }

    #[test]
    fn end_to_end_trace_renders() {
        let t = Telemetry::enabled();
        t.registry().counter("cache.hits").add(2);
        t.record_span(
            SpanRecord::async_phase("serving.queue", Lane::Worker(1), 42, 100.0, 900.0)
                .with_arg("request", 42u64),
        );
        {
            let _g = span!(t, "online.compile");
        }
        let json = t.render_chrome_trace();
        assert!(json.contains("serving.queue"));
        assert!(json.contains("online.compile"));
        assert!(t.drain_spans().is_empty(), "render drains the buffer");
        assert!(t.registry().render_prometheus().contains("cache_hits 2"));
    }
}
