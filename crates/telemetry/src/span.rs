//! Lightweight spans: RAII wall-clock timers and analytically-placed
//! virtual-timeline phases, recorded into a bounded sharded ring buffer.
//!
//! Two kinds of span reach the sink:
//!
//! - **Host spans** ([`SpanGuard`], usually via the [`span!`](crate::span!)
//!   macro) time a real-clock region on the current OS thread. Nesting is
//!   tracked with a per-thread depth counter and, for export, by time
//!   containment on the thread's lane.
//! - **Timeline spans** (built with [`SpanRecord::complete`] /
//!   [`SpanRecord::async_phase`] and pushed via
//!   `Telemetry::record_span`) are placed at explicit virtual-time
//!   coordinates by the serving simulator — queue waits, compile windows,
//!   device executions.
//!
//! The sink is a fixed set of mutex-protected shards selected by thread;
//! each shard is a bounded ring that drops its oldest records under
//! pressure (and counts the drops), so a long serving run can never grow
//! the trace without bound.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which export lane (process/thread row in the Chrome trace) a span
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// A serving worker's virtual timeline.
    Worker(usize),
    /// A simulated device's virtual timeline.
    Device(usize),
    /// A host OS thread's real-clock timeline. The id is a small
    /// process-wide index assigned on first use per thread.
    HostThread(u64),
}

impl Lane {
    /// The clock label for this lane's timeline.
    pub fn clock_label(&self) -> &'static str {
        match self {
            Lane::Worker(_) | Lane::Device(_) => "virtual",
            Lane::HostThread(_) => "real",
        }
    }
}

/// How a span is drawn in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A complete (`"X"`) event: nests by time containment on its lane.
    Complete,
    /// An async (`"b"`/`"e"`) event pair keyed by `id`: may overlap other
    /// spans on the same lane (queue phases of concurrent requests).
    Async {
        /// Correlation id shared by the begin/end pair (the request id).
        id: u64,
    },
}

/// A key=value field attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer field.
    U64(u64),
    /// A floating-point field.
    F64(f64),
    /// A string field.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One finished span, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Dotted span name (e.g. `online.search`).
    pub name: &'static str,
    /// Export lane.
    pub lane: Lane,
    /// Complete or async rendering.
    pub kind: SpanKind,
    /// Start timestamp, ns, on the lane's clock (real spans: since the
    /// telemetry epoch).
    pub start_ns: f64,
    /// Duration, ns, on the lane's clock.
    pub dur_ns: f64,
    /// Nesting depth at record time (host spans only; 0 otherwise).
    pub depth: u16,
    /// key=value fields.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// A complete span at explicit coordinates on `lane`.
    pub fn complete(name: &'static str, lane: Lane, start_ns: f64, dur_ns: f64) -> Self {
        Self {
            name,
            lane,
            kind: SpanKind::Complete,
            start_ns,
            dur_ns,
            depth: 0,
            args: Vec::new(),
        }
    }

    /// An async (overlap-safe) span at explicit coordinates on `lane`,
    /// correlated by `id`.
    pub fn async_phase(
        name: &'static str,
        lane: Lane,
        id: u64,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        Self {
            name,
            lane,
            kind: SpanKind::Async { id },
            start_ns,
            dur_ns,
            depth: 0,
            args: Vec::new(),
        }
    }

    /// Attaches a key=value field (builder-style).
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

const SINK_SHARDS: usize = 16;
/// Per-shard ring capacity; total sink capacity is `16 * 8192` spans.
const SHARD_CAPACITY: usize = 8192;

static NEXT_THREAD_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_LANE: u64 = NEXT_THREAD_LANE.fetch_add(1, Ordering::Relaxed);
    static THREAD_DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// The process-wide lane index of the current OS thread.
pub fn current_thread_lane() -> u64 {
    THREAD_LANE.with(|l| *l)
}

pub(crate) fn depth_enter() -> u16 {
    THREAD_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth.saturating_add(1));
        depth
    })
}

pub(crate) fn depth_exit() {
    THREAD_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// A bounded, sharded span buffer.
#[derive(Debug)]
pub struct SpanSink {
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    dropped: AtomicU64,
}

impl Default for SpanSink {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self {
            shards: (0..SINK_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(64)))
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes a record, evicting the shard's oldest span when full.
    pub fn push(&self, record: SpanRecord) {
        let shard = (current_thread_lane() as usize) % SINK_SHARDS;
        let mut ring = self.shards[shard].lock().expect("span sink lock");
        if ring.len() >= SHARD_CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Takes every buffered span, sorted by start time within lanes as
    /// encountered; leaves the sink empty.
    ///
    /// **Destructive**: a second consumer sees an empty sink. Drain once
    /// and share the result when multiple exporters need the spans.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().expect("span sink lock").drain(..).collect());
        }
        out.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        out
    }

    /// Spans evicted under pressure since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffered span count (for tests / diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("span sink lock").len())
            .sum()
    }

    /// Whether the sink holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_round_trips_and_sorts() {
        let sink = SpanSink::new();
        sink.push(SpanRecord::complete("b", Lane::Worker(0), 200.0, 10.0));
        sink.push(
            SpanRecord::complete("a", Lane::Worker(0), 100.0, 50.0).with_arg("shape", 128u64),
        );
        let spans = sink.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].args, vec![("shape", ArgValue::U64(128))]);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn sink_is_bounded_and_counts_drops() {
        let sink = SpanSink::new();
        // All pushes from one thread land in one shard.
        for i in 0..(SHARD_CAPACITY + 10) {
            sink.push(SpanRecord::complete(
                "s",
                Lane::HostThread(0),
                i as f64,
                1.0,
            ));
        }
        assert_eq!(sink.len(), SHARD_CAPACITY);
        assert_eq!(sink.dropped(), 10);
        // The oldest records were the ones evicted.
        let spans = sink.drain();
        assert_eq!(spans.first().unwrap().start_ns, 10.0);
    }

    #[test]
    fn depth_counter_nests() {
        assert_eq!(depth_enter(), 0);
        assert_eq!(depth_enter(), 1);
        depth_exit();
        assert_eq!(depth_enter(), 1);
        depth_exit();
        depth_exit();
        assert_eq!(depth_enter(), 0);
        depth_exit();
    }

    #[test]
    fn lane_clock_labels() {
        assert_eq!(Lane::Worker(0).clock_label(), "virtual");
        assert_eq!(Lane::Device(3).clock_label(), "virtual");
        assert_eq!(Lane::HostThread(9).clock_label(), "real");
    }
}
