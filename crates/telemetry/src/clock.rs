//! Explicitly-labelled time: the runtime measures on two different clocks.
//!
//! MikPoly's serving timeline mixes **real** host time (wall-clock
//! nanoseconds a worker spent polymerizing) with **virtual** time (Poisson
//! arrival stamps and simulated device durations). Summing the two without
//! saying so produced the `RequestRecord::total_ns` unit bug this module
//! exists to prevent: every histogram and span carries a [`Clock`] label,
//! and a real-clock duration only enters a virtual timeline through the
//! explicit [`ClockNs::onto_virtual_timeline`] projection.

use std::fmt;

/// Which clock a duration or timestamp was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Clock {
    /// Host wall-clock (monotonic) time — e.g. online polymerization.
    #[default]
    Real,
    /// Simulated / virtual time — e.g. arrival stamps, device execution.
    Virtual,
}

impl Clock {
    /// The label value used in metric names and trace metadata.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Real => "real",
            Clock::Virtual => "virtual",
        }
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A duration in nanoseconds tagged with the clock it was measured on.
///
/// The nanosecond value is private: arithmetic across clocks is a unit
/// error, so there is deliberately no `Add` implementation and no way to
/// reach the raw number without going through an accessor that names the
/// clock ([`ClockNs::real_ns`] / [`ClockNs::virtual_ns`]) or the explicit
/// timeline projection ([`ClockNs::onto_virtual_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockNs {
    clock: Clock,
    ns: f64,
}

impl ClockNs {
    /// A real (wall-clock) duration.
    pub fn real(ns: f64) -> Self {
        Self {
            clock: Clock::Real,
            ns,
        }
    }

    /// A virtual (simulated-time) duration.
    pub fn virt(ns: f64) -> Self {
        Self {
            clock: Clock::Virtual,
            ns,
        }
    }

    /// The clock this duration was measured on.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The raw nanoseconds, whatever the clock — for display and
    /// histogram recording where the clock label travels separately.
    pub fn ns(&self) -> f64 {
        self.ns
    }

    /// The nanoseconds if (and only if) this is a real-clock duration.
    ///
    /// # Panics
    ///
    /// Panics on a virtual-clock duration: the caller asked for the wrong
    /// unit.
    pub fn real_ns(&self) -> f64 {
        assert_eq!(self.clock, Clock::Real, "expected a real-clock duration");
        self.ns
    }

    /// The nanoseconds if (and only if) this is a virtual-clock duration.
    ///
    /// # Panics
    ///
    /// Panics on a real-clock duration: the caller asked for the wrong
    /// unit.
    pub fn virtual_ns(&self) -> f64 {
        assert_eq!(
            self.clock,
            Clock::Virtual,
            "expected a virtual-clock duration"
        );
        self.ns
    }

    /// Whether the duration is zero (e.g. a fully cache-hit compile).
    pub fn is_zero(&self) -> bool {
        self.ns == 0.0
    }

    /// Projects this duration onto a virtual timeline, 1 virtual ns per
    /// measured ns.
    ///
    /// This is the **only** sanctioned way to mix clocks: the serving
    /// timeline advances by the real nanoseconds a worker spent compiling
    /// (the host really is busy for that long while virtual arrivals keep
    /// accumulating), and calling this method is the annotation that the
    /// projection is intentional.
    pub fn onto_virtual_timeline(self) -> f64 {
        self.ns
    }
}

impl fmt::Display for ClockNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ns ({})", self.ns, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_the_clock() {
        let real = ClockNs::real(1500.0);
        assert_eq!(real.clock(), Clock::Real);
        assert_eq!(real.real_ns(), 1500.0);
        assert_eq!(real.onto_virtual_timeline(), 1500.0);
        let virt = ClockNs::virt(2500.0);
        assert_eq!(virt.virtual_ns(), 2500.0);
        assert!(!virt.is_zero());
        assert!(ClockNs::real(0.0).is_zero());
    }

    #[test]
    #[should_panic(expected = "expected a virtual-clock duration")]
    fn real_duration_rejects_virtual_accessor() {
        let _ = ClockNs::real(1.0).virtual_ns();
    }

    #[test]
    #[should_panic(expected = "expected a real-clock duration")]
    fn virtual_duration_rejects_real_accessor() {
        let _ = ClockNs::virt(1.0).real_ns();
    }

    #[test]
    fn labels_render() {
        assert_eq!(Clock::Real.label(), "real");
        assert_eq!(format!("{}", ClockNs::virt(2.0)), "2.0 ns (virtual)");
    }
}
