//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! The emitted object is `{"traceEvents": [...]}` with timestamps in
//! microseconds. Lanes map onto two processes:
//!
//! - **pid 1 — "serving (virtual time)"**: one thread row per serving
//!   worker ([`Lane::Worker`], tid `w + 1`) and one per simulated device
//!   ([`Lane::Device`], tid `10000 + d`). Processing phases are `"X"`
//!   complete events; queue phases are `"b"`/`"e"` async pairs keyed by
//!   request id so concurrent waits may overlap on one row.
//! - **pid 2 — "host (real time)"**: one thread row per instrumented OS
//!   thread ([`Lane::HostThread`], tid `lane + 1`), all `"X"` events
//!   nesting by time containment.
//!
//! JSON is written by hand (this crate is dependency-free); only the
//! string-escaping rules the trace viewer needs are implemented.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::span::{ArgValue, Lane, SpanKind, SpanRecord};

const PID_VIRTUAL: u32 = 1;
const PID_HOST: u32 = 2;
const DEVICE_TID_BASE: u64 = 10_000;

fn lane_pid_tid(lane: Lane) -> (u32, u64) {
    match lane {
        Lane::Worker(w) => (PID_VIRTUAL, w as u64 + 1),
        Lane::Device(d) => (PID_VIRTUAL, DEVICE_TID_BASE + d as u64),
        Lane::HostThread(t) => (PID_HOST, t + 1),
    }
}

fn lane_thread_name(lane: Lane) -> String {
    match lane {
        Lane::Worker(w) => format!("worker {w}"),
        Lane::Device(d) => format!("device {d}"),
        Lane::HostThread(t) => format!("thread {t}"),
    }
}

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
///
/// Shared with the other hand-written JSON emitters in this crate
/// (flight-recorder blackbox dumps, SLO snapshots, metric snapshots).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in a JSON-safe decimal form.
pub(crate) fn push_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn push_args(out: &mut String, clock: &'static str, args: &[(&'static str, ArgValue)]) {
    out.push_str(",\"args\":{\"clock\":");
    push_json_string(out, clock);
    for (key, value) in args {
        out.push(',');
        push_json_string(out, key);
        out.push(':');
        match value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::F64(v) => push_json_number(out, *v),
            ArgValue::Str(s) => push_json_string(out, s),
        }
    }
    out.push('}');
}

fn push_event_common(out: &mut String, name: &str, ph: char, pid: u32, tid: u64, ts_us: f64) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
    push_json_number(out, ts_us);
}

/// Renders `spans` as a complete Chrome trace-event JSON document.
///
/// Process/thread metadata events are generated for every lane that
/// appears; callers just hand over `Telemetry::drain_spans()` output.
pub fn render_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    // Metadata: name the two processes and every lane that appears.
    let pids: BTreeSet<u32> = spans.iter().map(|s| lane_pid_tid(s.lane).0).collect();
    for pid in pids {
        let pname = if pid == PID_VIRTUAL {
            "serving (virtual time)"
        } else {
            "host (real time)"
        };
        push_sep(&mut out, &mut first);
        push_event_common(&mut out, "process_name", 'M', pid, 0, 0.0);
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, pname);
        out.push_str("}}");
    }
    let mut named: BTreeSet<(u32, u64)> = BTreeSet::new();
    for span in spans {
        let (pid, tid) = lane_pid_tid(span.lane);
        if named.insert((pid, tid)) {
            push_sep(&mut out, &mut first);
            push_event_common(&mut out, "thread_name", 'M', pid, tid, 0.0);
            out.push_str(",\"args\":{\"name\":");
            push_json_string(&mut out, &lane_thread_name(span.lane));
            out.push_str("}}");
        }
    }

    for span in spans {
        let (pid, tid) = lane_pid_tid(span.lane);
        let ts_us = span.start_ns / 1e3;
        let dur_us = span.dur_ns / 1e3;
        let clock = span.lane.clock_label();
        match span.kind {
            SpanKind::Complete => {
                push_sep(&mut out, &mut first);
                push_event_common(&mut out, span.name, 'X', pid, tid, ts_us);
                out.push_str(",\"dur\":");
                push_json_number(&mut out, dur_us);
                push_args(&mut out, clock, &span.args);
                out.push('}');
            }
            SpanKind::Async { id } => {
                push_sep(&mut out, &mut first);
                push_event_common(&mut out, span.name, 'b', pid, tid, ts_us);
                let _ = write!(out, ",\"cat\":\"phase\",\"id\":{id}");
                push_args(&mut out, clock, &span.args);
                out.push('}');
                push_sep(&mut out, &mut first);
                push_event_common(&mut out, span.name, 'e', pid, tid, ts_us + dur_us);
                let _ = write!(out, ",\"cat\":\"phase\",\"id\":{id}");
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn trace_has_metadata_and_both_event_kinds() {
        let spans = vec![
            SpanRecord::async_phase("serving.queue", Lane::Worker(0), 7, 0.0, 2000.0),
            SpanRecord::complete("serving.compile", Lane::Worker(0), 2000.0, 1000.0)
                .with_arg("shape", 64u64),
            SpanRecord::complete("device.execute", Lane::Device(1), 3000.0, 500.0),
            SpanRecord::complete("online.search", Lane::HostThread(0), 10.0, 5.0)
                .with_arg("strategy", "best"),
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("serving (virtual time)"));
        assert!(json.contains("host (real time)"));
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"device 1\""));
        // Async pair: begin at 0, end at 2 us, same id.
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"id\":7"));
        // Complete event with dur in us and args.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1"));
        assert!(json.contains("\"shape\":64"));
        assert!(json.contains("\"clock\":\"virtual\""));
        assert!(json.contains("\"clock\":\"real\""));
        // Device tid namespace.
        assert!(json.contains("\"tid\":10001"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            render_chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
