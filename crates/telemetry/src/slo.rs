//! Windowed SLIs over the virtual timeline and multi-window burn-rate
//! SLO evaluation.
//!
//! The serving runtime produces a scheduling-independent virtual
//! timeline, so service-level indicators are computed over *virtual*
//! trailing windows rather than wall-clock ones: the same request
//! stream always yields the same SLO verdict, which keeps the `health`
//! subcommand and the CI smoke deterministic.
//!
//! Four SLIs are tracked:
//!
//! - **goodput ratio** — served (`Completed` + `Degraded`) over total;
//! - **deadline-hit rate** — among deadline-carrying requests, the
//!   fraction that finished by their deadline;
//! - **degraded fraction** — `Degraded` over total, held under a
//!   budgeted ceiling rather than a target floor;
//! - **compile p99 vs budget** — the real-clock compile latency tail
//!   against an optional budget.
//!
//! Ratio SLIs are evaluated with the classic multi-window burn-rate
//! rule: the error budget is `1 - target`, the burn rate is
//! `error_rate / error_budget`, and a rule only fires when **both** a
//! short and a long trailing window burn at or above the threshold —
//! the short window gives fast detection, the long window suppresses
//! blips (Google SRE workbook, ch. 5). A burn of 1.0 means the error
//! budget is being consumed exactly as fast as it accrues.

use std::fmt::Write as _;

use crate::chrome::{push_json_number, push_json_string};
use crate::clock::Clock;
use crate::metrics::Histogram;
use crate::recorder::{render_chain_json, ChainDisposition, FlightRecorder, RetainedChain};

/// SLO targets and evaluation windows.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Target fraction of requests served (goodput SLI floor).
    pub goodput_target: f64,
    /// Target fraction of deadline-carrying requests meeting their
    /// deadline.
    pub deadline_target: f64,
    /// Ceiling on the fraction of requests served degraded.
    pub degraded_budget: f64,
    /// Optional real-clock budget for compile p99, in nanoseconds.
    pub compile_p99_budget_ns: Option<f64>,
    /// Short trailing window on the virtual timeline, in nanoseconds.
    pub short_window_ns: f64,
    /// Long trailing window on the virtual timeline, in nanoseconds.
    pub long_window_ns: f64,
    /// Burn-rate threshold; a rule fires when both windows burn at or
    /// above it.
    pub burn_threshold: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            goodput_target: 0.95,
            deadline_target: 0.95,
            degraded_budget: 0.25,
            compile_p99_budget_ns: None,
            short_window_ns: 1e8,
            long_window_ns: 1e9,
            burn_threshold: 1.0,
        }
    }
}

/// One request's contribution to the SLIs.
#[derive(Debug, Clone, Copy)]
pub struct SloObservation {
    /// Virtual-timeline completion timestamp.
    pub finish_ns: f64,
    /// Terminal disposition.
    pub disposition: ChainDisposition,
    /// `Some(met)` for deadline-carrying requests, `None` otherwise.
    pub deadline_met: Option<bool>,
    /// Real nanoseconds spent in the compile lane.
    pub compile_ns: f64,
}

/// Disposition counts, mirroring the serving runtime's
/// `DispositionCounts` field for field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispositionTally {
    /// Requests served at full fidelity.
    pub completed: u64,
    /// Requests served degraded.
    pub degraded: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that failed.
    pub failed: u64,
}

impl DispositionTally {
    /// All requests.
    pub fn total(&self) -> u64 {
        self.completed + self.degraded + self.shed + self.failed
    }

    /// Requests that produced a result.
    pub fn served(&self) -> u64 {
        self.completed + self.degraded
    }
}

/// SLI values computed over one trailing window.
#[derive(Debug, Clone, Copy)]
pub struct WindowSli {
    /// Window length in virtual nanoseconds (`f64::INFINITY` for the
    /// whole run).
    pub window_ns: f64,
    /// Requests finishing inside the window.
    pub requests: u64,
    /// Served over total; `1.0` for an empty window.
    pub goodput_ratio: f64,
    /// Deadline hits over deadline-carrying requests; `1.0` when none
    /// carried a deadline.
    pub deadline_hit_rate: f64,
    /// Degraded over total; `0.0` for an empty window.
    pub degraded_fraction: f64,
}

/// One burn-rate rule's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BurnRule {
    /// Which SLI the rule watches: `"goodput"`, `"deadline"`,
    /// `"degraded"`.
    pub sli: &'static str,
    /// The configured target (or budget ceiling for `degraded`).
    pub target: f64,
    /// Burn rate over the short window.
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// Threshold both windows must reach.
    pub threshold: f64,
    /// Whether the rule fired.
    pub breached: bool,
}

/// The full SLO evaluation: per-window SLIs, burn rules, and the
/// compile-budget check.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Disposition counts over the whole run.
    pub dispositions: DispositionTally,
    /// SLIs over the whole run.
    pub overall: WindowSli,
    /// SLIs over the short trailing window.
    pub short: WindowSli,
    /// SLIs over the long trailing window.
    pub long: WindowSli,
    /// Real-clock compile p99 estimate in nanoseconds.
    pub compile_p99_ns: u64,
    /// The configured compile budget, if any.
    pub compile_budget_ns: Option<f64>,
    /// Whether compile p99 exceeded its budget.
    pub compile_budget_breached: bool,
    /// The multi-window burn-rate rules.
    pub rules: Vec<BurnRule>,
    /// Whether any rule fired (or the compile budget was breached).
    pub violated: bool,
}

impl SloReport {
    /// Renders the report as a JSON object (hand-written; this crate is
    /// dependency-free). Disposition counts appear under
    /// `"dispositions"` with the exact field names of the serving
    /// runtime's `DispositionCounts`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let d = &self.dispositions;
        let _ = write!(
            out,
            "\"dispositions\":{{\"completed\":{},\"degraded\":{},\"shed\":{},\"failed\":{},\"total\":{}}}",
            d.completed,
            d.degraded,
            d.shed,
            d.failed,
            d.total()
        );
        out.push_str(",\"slis\":{");
        push_window(&mut out, "overall", &self.overall);
        out.push(',');
        push_window(&mut out, "short", &self.short);
        out.push(',');
        push_window(&mut out, "long", &self.long);
        out.push('}');
        let _ = write!(out, ",\"compile\":{{\"p99_ns\":{}", self.compile_p99_ns);
        out.push_str(",\"budget_ns\":");
        match self.compile_budget_ns {
            Some(budget) => push_json_number(&mut out, budget),
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"breached\":{}}}", self.compile_budget_breached);
        out.push_str(",\"rules\":[");
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"sli\":");
            push_json_string(&mut out, rule.sli);
            out.push_str(",\"target\":");
            push_json_number(&mut out, rule.target);
            out.push_str(",\"short_burn\":");
            push_json_number(&mut out, rule.short_burn);
            out.push_str(",\"long_burn\":");
            push_json_number(&mut out, rule.long_burn);
            out.push_str(",\"threshold\":");
            push_json_number(&mut out, rule.threshold);
            let _ = write!(out, ",\"breached\":{}}}", rule.breached);
        }
        out.push(']');
        let _ = write!(out, ",\"violated\":{}", self.violated);
        out.push('}');
        out
    }
}

fn push_window(out: &mut String, name: &str, window: &WindowSli) {
    push_json_string(out, name);
    out.push_str(":{\"window_ns\":");
    if window.window_ns.is_finite() {
        push_json_number(out, window.window_ns);
    } else {
        out.push_str("null");
    }
    let _ = write!(out, ",\"requests\":{}", window.requests);
    out.push_str(",\"goodput_ratio\":");
    push_json_number(out, window.goodput_ratio);
    out.push_str(",\"deadline_hit_rate\":");
    push_json_number(out, window.deadline_hit_rate);
    out.push_str(",\"degraded_fraction\":");
    push_json_number(out, window.degraded_fraction);
    out.push('}');
}

/// Accumulates observations and evaluates the policy.
#[derive(Debug)]
pub struct SloEngine {
    policy: SloPolicy,
    observations: Vec<SloObservation>,
    compile: Histogram,
}

impl SloEngine {
    /// Creates an engine for one evaluation pass.
    pub fn new(policy: SloPolicy) -> Self {
        Self {
            policy,
            observations: Vec::new(),
            compile: Histogram::new(Clock::Real),
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Feeds one finished request.
    pub fn observe(&mut self, observation: SloObservation) {
        self.compile.record_f64(observation.compile_ns);
        self.observations.push(observation);
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations were fed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Evaluates every rule over the whole run plus the short and long
    /// trailing windows ending at the latest finish timestamp.
    pub fn evaluate(&self) -> SloReport {
        let end = self
            .observations
            .iter()
            .map(|o| o.finish_ns)
            .fold(0.0_f64, f64::max);
        let overall = window_sli(&self.observations, f64::INFINITY, end);
        let short = window_sli(&self.observations, self.policy.short_window_ns, end);
        let long = window_sli(&self.observations, self.policy.long_window_ns, end);

        let mut dispositions = DispositionTally::default();
        for o in &self.observations {
            match o.disposition {
                ChainDisposition::Completed => dispositions.completed += 1,
                ChainDisposition::Degraded => dispositions.degraded += 1,
                ChainDisposition::Shed => dispositions.shed += 1,
                ChainDisposition::Failed => dispositions.failed += 1,
            }
        }

        let threshold = self.policy.burn_threshold;
        let rules = vec![
            burn_rule(
                "goodput",
                self.policy.goodput_target,
                ratio_burn(short.goodput_ratio, self.policy.goodput_target),
                ratio_burn(long.goodput_ratio, self.policy.goodput_target),
                threshold,
            ),
            burn_rule(
                "deadline",
                self.policy.deadline_target,
                ratio_burn(short.deadline_hit_rate, self.policy.deadline_target),
                ratio_burn(long.deadline_hit_rate, self.policy.deadline_target),
                threshold,
            ),
            burn_rule(
                "degraded",
                self.policy.degraded_budget,
                budget_burn(short.degraded_fraction, self.policy.degraded_budget),
                budget_burn(long.degraded_fraction, self.policy.degraded_budget),
                threshold,
            ),
        ];

        let compile_p99_ns = self.compile.percentile_ns(0.99);
        let compile_budget_breached = self
            .policy
            .compile_p99_budget_ns
            .is_some_and(|budget| compile_p99_ns as f64 > budget);
        let violated = compile_budget_breached || rules.iter().any(|r| r.breached);
        SloReport {
            dispositions,
            overall,
            short,
            long,
            compile_p99_ns,
            compile_budget_ns: self.policy.compile_p99_budget_ns,
            compile_budget_breached,
            rules,
            violated,
        }
    }
}

fn window_sli(observations: &[SloObservation], window_ns: f64, end: f64) -> WindowSli {
    let cutoff = if window_ns.is_finite() {
        end - window_ns
    } else {
        f64::NEG_INFINITY
    };
    let mut total = 0u64;
    let mut served = 0u64;
    let mut degraded = 0u64;
    let mut with_deadline = 0u64;
    let mut deadline_hits = 0u64;
    for o in observations.iter().filter(|o| o.finish_ns >= cutoff) {
        total += 1;
        match o.disposition {
            ChainDisposition::Completed => served += 1,
            ChainDisposition::Degraded => {
                served += 1;
                degraded += 1;
            }
            ChainDisposition::Shed | ChainDisposition::Failed => {}
        }
        if let Some(met) = o.deadline_met {
            with_deadline += 1;
            if met {
                deadline_hits += 1;
            }
        }
    }
    WindowSli {
        window_ns,
        requests: total,
        goodput_ratio: if total == 0 {
            1.0
        } else {
            served as f64 / total as f64
        },
        deadline_hit_rate: if with_deadline == 0 {
            1.0
        } else {
            deadline_hits as f64 / with_deadline as f64
        },
        degraded_fraction: if total == 0 {
            0.0
        } else {
            degraded as f64 / total as f64
        },
    }
}

/// Burn rate for a floor-style SLI (`goodput`, `deadline`): error rate
/// over error budget.
fn ratio_burn(sli: f64, target: f64) -> f64 {
    let error_rate = (1.0 - sli).max(0.0);
    let budget = (1.0 - target).max(1e-9);
    error_rate / budget
}

/// Burn rate for a ceiling-style SLI (`degraded`): observed fraction
/// over the budgeted ceiling.
fn budget_burn(fraction: f64, ceiling: f64) -> f64 {
    fraction / ceiling.max(1e-9)
}

fn burn_rule(
    sli: &'static str,
    target: f64,
    short_burn: f64,
    long_burn: f64,
    threshold: f64,
) -> BurnRule {
    BurnRule {
        sli,
        target,
        short_burn,
        long_burn,
        threshold,
        breached: short_burn >= threshold && long_burn >= threshold,
    }
}

/// Renders a blackbox dump: the SLO report, recorder health, and every
/// retained chain. Written by `serve --blackbox-out` when the SLO is
/// violated; see `docs/observability.md` for a reading guide.
pub fn render_blackbox(
    report: &SloReport,
    chains: &[RetainedChain],
    recorder: &FlightRecorder,
    spans_dropped: u64,
) -> String {
    let mut out = String::with_capacity(2048 + chains.len() * 256);
    out.push_str("{\"slo\":");
    out.push_str(&report.render_json());
    let _ = write!(out, ",\"spans_dropped\":{spans_dropped}");
    let _ = write!(
        out,
        ",\"recorder\":{{\"observed\":{},\"retained\":{},\"evicted\":{},\"resident\":{},\"approx_bytes\":{},\"rolling_p99_ns\":{}}}",
        recorder.observed(),
        recorder.retained(),
        recorder.evicted(),
        chains.len(),
        recorder.approx_bytes(),
        recorder.rolling_p99_ns()
    );
    out.push_str(",\"chains\":[");
    for (i, chain) in chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_chain_json(&mut out, chain);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation(finish_ns: f64, disposition: ChainDisposition) -> SloObservation {
        SloObservation {
            finish_ns,
            disposition,
            deadline_met: None,
            compile_ns: 1000.0,
        }
    }

    #[test]
    fn empty_engine_is_healthy() {
        let engine = SloEngine::new(SloPolicy::default());
        let report = engine.evaluate();
        assert!(!report.violated);
        assert_eq!(report.dispositions.total(), 0);
        assert_eq!(report.overall.goodput_ratio, 1.0);
    }

    #[test]
    fn healthy_stream_does_not_violate() {
        let mut engine = SloEngine::new(SloPolicy::default());
        for i in 0..100 {
            engine.observe(observation(i as f64 * 1000.0, ChainDisposition::Completed));
        }
        let report = engine.evaluate();
        assert!(!report.violated, "all-completed stream must be healthy");
        assert!(report.rules.iter().all(|r| !r.breached));
        assert_eq!(report.dispositions.completed, 100);
    }

    #[test]
    fn mass_shedding_breaches_goodput_in_both_windows() {
        let mut engine = SloEngine::new(SloPolicy::default());
        for i in 0..50 {
            let disposition = if i % 10 == 0 {
                ChainDisposition::Completed
            } else {
                ChainDisposition::Shed
            };
            engine.observe(observation(i as f64 * 1000.0, disposition));
        }
        let report = engine.evaluate();
        assert!(report.violated);
        let goodput = report
            .rules
            .iter()
            .find(|r| r.sli == "goodput")
            .expect("goodput rule present");
        assert!(goodput.breached);
        assert!(goodput.short_burn >= 1.0 && goodput.long_burn >= 1.0);
    }

    #[test]
    fn short_window_blip_alone_does_not_fire() {
        // 10_000 healthy finishes spread over 10x the long window, then
        // a burst of sheds inside the short window only.
        let policy = SloPolicy {
            short_window_ns: 1e4,
            long_window_ns: 1e7,
            ..SloPolicy::default()
        };
        let mut engine = SloEngine::new(policy);
        for i in 0..10_000 {
            engine.observe(observation(i as f64 * 1e3, ChainDisposition::Completed));
        }
        let end = 10_000.0 * 1e3;
        for i in 0..5 {
            engine.observe(observation(end + i as f64, ChainDisposition::Shed));
        }
        let report = engine.evaluate();
        let goodput = report
            .rules
            .iter()
            .find(|r| r.sli == "goodput")
            .expect("goodput rule present");
        assert!(goodput.short_burn >= 1.0, "short window sees the burst");
        assert!(goodput.long_burn < 1.0, "long window absorbs the blip");
        assert!(!goodput.breached, "multi-window rule suppresses blips");
    }

    #[test]
    fn deadline_misses_fire_the_deadline_rule() {
        let mut engine = SloEngine::new(SloPolicy::default());
        for i in 0..20 {
            let mut o = observation(i as f64 * 1000.0, ChainDisposition::Completed);
            o.deadline_met = Some(i % 2 == 0);
            engine.observe(o);
        }
        let report = engine.evaluate();
        let deadline = report
            .rules
            .iter()
            .find(|r| r.sli == "deadline")
            .expect("deadline rule present");
        assert!(deadline.breached);
        assert_eq!(report.overall.deadline_hit_rate, 0.5);
    }

    #[test]
    fn compile_budget_breach_violates() {
        let policy = SloPolicy {
            compile_p99_budget_ns: Some(10.0),
            ..SloPolicy::default()
        };
        let mut engine = SloEngine::new(policy);
        let mut o = observation(1.0, ChainDisposition::Completed);
        o.compile_ns = 1e6;
        engine.observe(o);
        let report = engine.evaluate();
        assert!(report.compile_budget_breached);
        assert!(report.violated);
    }

    #[test]
    fn json_snapshot_has_exact_disposition_fields() {
        let mut engine = SloEngine::new(SloPolicy::default());
        engine.observe(observation(1.0, ChainDisposition::Completed));
        engine.observe(observation(2.0, ChainDisposition::Degraded));
        engine.observe(observation(3.0, ChainDisposition::Shed));
        engine.observe(observation(4.0, ChainDisposition::Failed));
        let json = engine.evaluate().render_json();
        assert!(json.contains(
            "\"dispositions\":{\"completed\":1,\"degraded\":1,\"shed\":1,\"failed\":1,\"total\":4}"
        ));
        assert!(json.contains("\"rules\":["));
        assert!(json.contains("\"violated\":"));
    }
}
