//! Lock-free metrics: counters, gauges, and log2-bucketed latency
//! histograms behind a name-keyed registry.
//!
//! The record path is wait-free — every instrument is a handful of relaxed
//! atomics, so serving workers can record per-request latencies without a
//! lock. The registry map itself is behind an `RwLock`, but callers cache
//! the `Arc` handles they get from [`Registry::counter`] /
//! [`Registry::histogram`], so the map is only touched at registration and
//! snapshot time.
//!
//! Histograms bucket by `floor(log2(v)) + 1`: bucket `b` holds values in
//! `[2^(b-1), 2^b)`. Percentile readout returns the inclusive upper bound
//! of the bucket containing the nearest-rank sample, so an estimate `e`
//! for an exact percentile `x` always satisfies `x <= e < 2x` — within one
//! bucket width, which the property tests pin down.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::clock::Clock;

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically-increasing (or collector-set) integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter — for collector-style metrics whose
    /// authoritative value lives elsewhere (e.g. the program cache's own
    /// atomics) and is copied in at snapshot time.
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time floating-point metric (utilization, rates, sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Percentile/mean readout of one histogram, all nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// The clock the samples were measured on.
    pub clock: Clock,
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket upper bound).
    pub p50_ns: f64,
    /// 95th percentile (bucket upper bound).
    pub p95_ns: f64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: f64,
    /// Largest recorded sample (exact).
    pub max_ns: f64,
    /// Mean (exact: running sum over count).
    pub mean_ns: f64,
}

impl LatencyStats {
    /// An empty readout on `clock`.
    pub fn empty(clock: Clock) -> Self {
        Self {
            clock,
            count: 0,
            p50_ns: 0.0,
            p95_ns: 0.0,
            p99_ns: 0.0,
            max_ns: 0.0,
            mean_ns: 0.0,
        }
    }
}

/// A lock-free latency histogram with power-of-two buckets.
///
/// Each bucket also carries an optional **exemplar** request id — the
/// most recent flight-recorder-retained request that landed in the
/// bucket — so a percentile readout can be traced back to a concrete
/// retained chain (`FlightRecorder::find`).
#[derive(Debug)]
pub struct Histogram {
    clock: Clock,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Exemplar slots store `request id + 1`; 0 means "no exemplar".
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`.
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl Histogram {
    /// An empty histogram whose samples are measured on `clock`.
    pub fn new(clock: Clock) -> Self {
        Self {
            clock,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// The clock this histogram's samples are measured on.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Records one sample, in nanoseconds. Wait-free.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a float sample, clamping negatives and non-finite values
    /// to zero.
    pub fn record_f64(&self, ns: f64) {
        let clamped = if ns.is_finite() && ns > 0.0 { ns } else { 0.0 };
        self.record(clamped as u64);
    }

    /// Records one sample and stamps the bucket's exemplar with
    /// `request_id`. Callers should only pass ids whose chain the
    /// flight recorder retained, so every exemplar resolves.
    pub fn record_with_exemplar(&self, ns: u64, request_id: u64) {
        self.record(ns);
        self.exemplars[bucket_of(ns)].store(request_id.saturating_add(1), Ordering::Relaxed);
    }

    /// Float variant of [`Histogram::record_with_exemplar`], with the
    /// same clamping as [`Histogram::record_f64`].
    pub fn record_f64_with_exemplar(&self, ns: f64, request_id: u64) {
        let clamped = if ns.is_finite() && ns > 0.0 { ns } else { 0.0 };
        self.record_with_exemplar(clamped as u64, request_id);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// The nearest-rank percentile, reported as the inclusive upper bound
    /// of the bucket holding that rank (0 when empty). `p` in `[0, 1]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Same nearest-rank convention as a sorted slice: index
        // round((n - 1) * p) of the ascending order.
        let rank = ((total - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Snapshot of the standard readout.
    pub fn stats(&self) -> LatencyStats {
        let count = self.count();
        if count == 0 {
            return LatencyStats::empty(self.clock);
        }
        LatencyStats {
            clock: self.clock,
            count,
            p50_ns: self.percentile_ns(0.50) as f64,
            p95_ns: self.percentile_ns(0.95) as f64,
            p99_ns: self.percentile_ns(0.99) as f64,
            max_ns: self.max_ns.load(Ordering::Relaxed) as f64,
            mean_ns: self.sum_ns() as f64 / count as f64,
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((bucket_upper(b), count))
            })
            .collect()
    }

    /// Occupied exemplar slots as `(inclusive upper bound, request id)`
    /// pairs, in ascending bound order.
    pub fn exemplars(&self) -> Vec<(u64, u64)> {
        self.exemplars
            .iter()
            .enumerate()
            .filter_map(|(b, slot)| {
                let stamped = slot.load(Ordering::Relaxed);
                (stamped > 0).then(|| (bucket_upper(b), stamped - 1))
            })
            .collect()
    }
}

/// One histogram in a [`MetricsSnapshot`]: its name, readout, and
/// non-empty `(bucket upper bound, count)` pairs.
pub type HistogramSnapshot = (String, LatencyStats, Vec<(u64, u64)>);

/// A point-in-time copy of every instrument in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, readout, buckets)` per histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(name, (bucket upper bound, request id) pairs)` per histogram
    /// with at least one exemplar, name-sorted.
    pub exemplars: Vec<(String, Vec<(u64, u64)>)>,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks a histogram readout up by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyStats> {
        self.histograms
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, _)| s)
    }

    /// Looks a histogram's exemplars up by name.
    pub fn histogram_exemplars(&self, name: &str) -> Option<&[(u64, u64)]> {
        self.exemplars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.as_slice())
    }
}

/// The name-keyed instrument registry.
///
/// Instruments are created on first use and shared afterwards; handles are
/// `Arc`s, so hot paths resolve a name once and record lock-free from then
/// on.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    descriptions: RwLock<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("registry lock").get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use with `clock`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with a different clock — one metric
    /// name must never mix clocks.
    pub fn histogram(&self, name: &str, clock: Clock) -> Arc<Histogram> {
        let existing = self
            .histograms
            .read()
            .expect("registry lock")
            .get(name)
            .map(Arc::clone);
        let h = match existing {
            Some(h) => h,
            None => {
                let mut map = self.histograms.write().expect("registry lock");
                Arc::clone(
                    map.entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new(clock))),
                )
            }
        };
        assert_eq!(
            h.clock(),
            clock,
            "histogram '{name}' already registered on the {} clock",
            h.clock()
        );
        h
    }

    /// Attaches a help string to `name`, emitted as the `# HELP` line
    /// in the Prometheus exposition. Idempotent; the latest call wins.
    pub fn describe(&self, name: &str, help: &str) {
        self.descriptions
            .write()
            .expect("registry lock")
            .insert(name.to_string(), help.to_string());
    }

    /// The help string attached to `name`, if any.
    pub fn description(&self, name: &str) -> Option<String> {
        self.descriptions
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Copies every instrument out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, h)| (n.clone(), h.stats(), h.buckets()))
                .collect(),
            exemplars: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .filter_map(|(n, h)| {
                    let exemplars = h.exemplars();
                    (!exemplars.is_empty()).then(|| (n.clone(), exemplars))
                })
                .collect(),
        }
    }

    /// Checks every registered metric name against the naming contract:
    /// lowercase dotted (`[a-z0-9._]`, no leading/trailing/double dots),
    /// unique across instrument kinds, and still unique after Prometheus
    /// sanitization (`.` → `_`). Returns one finding per violation; an
    /// empty vec means the registry is clean.
    pub fn lint(&self) -> Vec<String> {
        let mut findings = Vec::new();
        let kinds: [(&str, Vec<String>); 3] = [
            (
                "counter",
                self.counters
                    .read()
                    .expect("registry lock")
                    .keys()
                    .cloned()
                    .collect(),
            ),
            (
                "gauge",
                self.gauges
                    .read()
                    .expect("registry lock")
                    .keys()
                    .cloned()
                    .collect(),
            ),
            (
                "histogram",
                self.histograms
                    .read()
                    .expect("registry lock")
                    .keys()
                    .cloned()
                    .collect(),
            ),
        ];
        let mut seen: BTreeMap<String, &str> = BTreeMap::new();
        let mut sanitized: BTreeMap<String, String> = BTreeMap::new();
        for (kind, names) in &kinds {
            for name in names {
                let well_formed = !name.is_empty()
                    && !name.starts_with('.')
                    && !name.ends_with('.')
                    && !name.contains("..")
                    && name.chars().all(|c| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'
                    });
                if !well_formed {
                    findings.push(format!(
                        "{kind} '{name}': not lowercase dotted ([a-z0-9._], no stray dots)"
                    ));
                }
                if let Some(other) = seen.insert(name.clone(), kind) {
                    findings.push(format!("'{name}': registered as both {other} and {kind}"));
                }
                let flat = prometheus_name(name);
                if let Some(other) = sanitized.insert(flat.clone(), name.clone()) {
                    if other != *name {
                        findings.push(format!(
                            "'{name}' and '{other}' collide after Prometheus sanitization ('{flat}')"
                        ));
                    }
                }
            }
        }
        findings
    }

    /// Renders the snapshot as a JSON object (hand-written; this crate
    /// is dependency-free). The machine-readable `mikpoly stats --json`
    /// output.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::push_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in snap.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::push_json_string(&mut out, name);
            out.push(':');
            crate::chrome::push_json_number(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, stats, buckets)) in snap.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::push_json_string(&mut out, name);
            out.push_str(":{\"clock\":");
            crate::chrome::push_json_string(&mut out, stats.clock.label());
            let _ = write!(out, ",\"count\":{}", stats.count);
            for (label, value) in [
                ("p50_ns", stats.p50_ns),
                ("p95_ns", stats.p95_ns),
                ("p99_ns", stats.p99_ns),
                ("max_ns", stats.max_ns),
                ("mean_ns", stats.mean_ns),
            ] {
                let _ = write!(out, ",\"{label}\":");
                crate::chrome::push_json_number(&mut out, value);
            }
            out.push_str(",\"buckets\":[");
            for (j, (upper, count)) in buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{count}]");
            }
            out.push_str("],\"exemplars\":[");
            let exemplars = snap.histogram_exemplars(name).unwrap_or(&[]);
            for (j, (upper, id)) in exemplars.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{id}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a Prometheus-style plain-text exposition of the registry.
    ///
    /// Metric names have `.` and `-` mapped to `_`; histograms carry a
    /// `clock` label and cumulative `_bucket{le=...}` lines with
    /// power-of-two bounds. Every metric gets a `# HELP`/`# TYPE` pair;
    /// the help text comes from [`Registry::describe`], falling back to
    /// the original dotted name for undescribed metrics.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let help_for = |dotted: &str| -> String {
            self.description(dotted)
                .map(|h| h.replace('\n', " "))
                .unwrap_or_else(|| dotted.to_string())
        };
        let mut out = String::new();
        for (name, value) in &snap.counters {
            let help = help_for(name);
            let name = prometheus_name(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &snap.gauges {
            let help = help_for(name);
            let name = prometheus_name(name);
            // The exposition format technically allows NaN/Inf, but a
            // non-finite gauge is always an upstream accounting bug here
            // (e.g. a 0/0 rate) and poisons downstream aggregation;
            // render it as 0 so a scrape never ingests one.
            let value = if value.is_finite() { *value } else { 0.0 };
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, stats, buckets) in &snap.histograms {
            let help = help_for(name);
            let name = prometheus_name(name);
            let clock = stats.clock.label();
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (upper, count) in buckets {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{clock=\"{clock}\",le=\"{upper}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{clock=\"{clock}\",le=\"+Inf\"}} {}",
                stats.count
            );
            let _ = writeln!(
                out,
                "{name}_sum{{clock=\"{clock}\"}} {}",
                (stats.mean_ns * stats.count as f64).round() as u64
            );
            let _ = writeln!(out, "{name}_count{{clock=\"{clock}\"}} {}", stats.count);
        }
        out
    }

    /// Renders an aligned human-readable snapshot table (the `mikpoly
    /// stats` output).
    pub fn render_pretty(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        if !snap.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, value) in &snap.counters {
                let _ = writeln!(out, "  {name:<44} {value:>12}");
            }
        }
        if !snap.gauges.is_empty() {
            let _ = writeln!(out, "gauges");
            for (name, value) in &snap.gauges {
                let _ = writeln!(out, "  {name:<44} {value:>12.3}");
            }
        }
        if !snap.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms (us){:<30} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "", "count", "p50", "p95", "p99", "max", "mean"
            );
            for (name, s, _) in &snap.histograms {
                let us = |ns: f64| ns / 1e3;
                let _ = writeln!(
                    out,
                    "  {:<43} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    format!("{name}{{clock=\"{}\"}}", s.clock),
                    s.count,
                    us(s.p50_ns),
                    us(s.p95_ns),
                    us(s.p99_ns),
                    us(s.max_ns),
                    us(s.mean_ns),
                );
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus charset.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [1u64, 2, 3, 5, 100, 1 << 40] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            assert!(b == 1 || v > bucket_upper(b - 1));
        }
    }

    #[test]
    fn histogram_readout_brackets_the_exact_percentile() {
        let h = Histogram::new(Clock::Real);
        let mut samples: Vec<u64> = (1..=1000).map(|i| i * 7 + 3).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let exact = samples[((samples.len() - 1) as f64 * p).round() as usize];
            let est = h.percentile_ns(p);
            assert!(
                est >= exact && est < exact * 2,
                "p{p}: est {est} vs exact {exact}"
            );
        }
        let stats = h.stats();
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.max_ns, *samples.last().unwrap() as f64);
        let exact_mean = samples.iter().sum::<u64>() as f64 / 1000.0;
        assert!((stats.mean_ns - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new(Clock::Virtual);
        assert_eq!(h.percentile_ns(0.5), 0);
        let s = h.stats();
        assert_eq!((s.count, s.p99_ns, s.mean_ns), (0, 0.0, 0.0));
        assert_eq!(s.clock, Clock::Virtual);
    }

    #[test]
    fn registry_shares_handles_and_snapshots() {
        let r = Registry::new();
        let c1 = r.counter("cache.hits");
        let c2 = r.counter("cache.hits");
        c1.add(3);
        c2.inc();
        assert_eq!(r.counter("cache.hits").get(), 4);
        r.gauge("workers").set(4.0);
        r.histogram("lat", Clock::Virtual).record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(4));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.gauges, vec![("workers".to_string(), 4.0)]);
    }

    #[test]
    #[should_panic(expected = "already registered on the real clock")]
    fn histogram_clock_conflict_is_rejected() {
        let r = Registry::new();
        let _ = r.histogram("lat", Clock::Real);
        let _ = r.histogram("lat", Clock::Virtual);
    }

    #[test]
    fn prometheus_rendering_is_labelled_and_cumulative() {
        let r = Registry::new();
        r.counter("cache.hits").add(7);
        let h = r.histogram("serving.request.total_ns", Clock::Virtual);
        h.record(3);
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("cache_hits 7"));
        assert!(text.contains("serving_request_total_ns_bucket{clock=\"virtual\",le=\"3\"} 2"));
        assert!(text.contains("serving_request_total_ns_bucket{clock=\"virtual\",le=\"127\"} 3"));
        assert!(text.contains("serving_request_total_ns_count{clock=\"virtual\"} 3"));
    }

    #[test]
    fn prometheus_rendering_never_emits_non_finite_gauges() {
        let r = Registry::new();
        r.gauge("cache.hit_rate").set(f64::NAN);
        r.gauge("queue.depth").set(f64::INFINITY);
        r.gauge("goodput.rps").set(2.5);
        let text = r.render_prometheus();
        assert!(!text.contains("NaN"), "NaN leaked into exposition:\n{text}");
        assert!(!text.contains("inf"), "inf leaked into exposition:\n{text}");
        assert!(text.contains("cache_hit_rate 0"));
        assert!(text.contains("queue_depth 0"));
        assert!(text.contains("goodput_rps 2.5"));
    }

    #[test]
    fn counter_store_overwrites() {
        let c = Counter::default();
        c.add(10);
        c.store(4);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn exposition_pairs_every_type_with_a_help_line() {
        let r = Registry::new();
        r.counter("cache.hits").add(7);
        r.describe("cache.hits", "program cache hits");
        r.gauge("serving.workers").set(4.0);
        r.histogram("serving.total_ns", Clock::Virtual).record(100);
        let text = r.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let mut type_lines = 0;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                type_lines += 1;
                let metric = rest.split_whitespace().next().unwrap();
                let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
                assert!(
                    prev.starts_with(&format!("# HELP {metric} ")),
                    "TYPE for {metric} not preceded by its HELP line:\n{text}"
                );
            }
        }
        assert_eq!(type_lines, 3);
        assert!(text.contains("# HELP cache_hits program cache hits"));
        // Undescribed metrics fall back to their dotted name.
        assert!(text.contains("# HELP serving_workers serving.workers"));
    }

    #[test]
    fn exemplars_stamp_the_sample_bucket_and_survive_snapshots() {
        let r = Registry::new();
        let h = r.histogram("serving.compile_ns", Clock::Real);
        h.record(5);
        h.record_with_exemplar(100, 42);
        h.record_with_exemplar(101, 43); // same bucket: latest wins
        assert_eq!(h.exemplars(), vec![(127, 43)]);
        let snap = r.snapshot();
        assert_eq!(
            snap.histogram_exemplars("serving.compile_ns"),
            Some(&[(127u64, 43u64)][..])
        );
        // Plain records never stamp exemplars.
        assert!(snap.histogram_exemplars("missing").is_none());
    }

    #[test]
    fn exemplar_id_zero_is_representable() {
        let h = Histogram::new(Clock::Virtual);
        h.record_with_exemplar(8, 0);
        assert_eq!(h.exemplars(), vec![(15, 0)]);
    }

    #[test]
    fn lint_accepts_the_house_naming_style() {
        let r = Registry::new();
        r.counter("cache.hits").inc();
        r.counter("serving.requests").inc();
        r.gauge("serving.throughput_rps").set(1.0);
        r.histogram("online.compile_ns", Clock::Real).record(1);
        assert!(r.lint().is_empty(), "findings: {:?}", r.lint());
    }

    #[test]
    fn lint_flags_bad_charset_cross_kind_duplicates_and_sanitization_collisions() {
        let r = Registry::new();
        r.counter("Bad.Name").inc();
        r.counter("cache.hits").inc();
        r.gauge("cache.hits").set(1.0);
        r.counter("a.b").inc();
        r.counter("a_b").inc();
        let findings = r.lint();
        assert!(findings.iter().any(|f| f.contains("not lowercase dotted")));
        assert!(findings
            .iter()
            .any(|f| f.contains("both counter and gauge")));
        assert!(findings
            .iter()
            .any(|f| f.contains("collide after Prometheus sanitization")));
    }

    #[test]
    fn json_snapshot_is_parsable_shape() {
        let r = Registry::new();
        r.counter("cache.hits").add(2);
        r.gauge("serving.workers").set(4.0);
        let h = r.histogram("serving.total_ns", Clock::Virtual);
        h.record_with_exemplar(100, 7);
        let json = r.render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"cache.hits\":2"));
        assert!(json.contains("\"serving.workers\":4"));
        assert!(json.contains("\"clock\":\"virtual\""));
        assert!(json.contains("\"exemplars\":[[127,7]]"));
        assert!(json.ends_with("}}"));
    }
}
