//! The flight recorder: an always-on, bounded store of per-request
//! event chains with tail-based retention.
//!
//! Aggregate histograms answer "what is compile p99?" but not *which*
//! request hit it or *why* it degraded. The recorder closes that gap:
//! every served request deposits a structured [`ChainRecord`] (shape
//! key, per-phase timings, cache outcome, retry count, breaker
//! transition, disposition, error), and a tail-based retention policy
//! decides what to keep:
//!
//! - **100% of anomalous chains** — any non-`Completed` disposition,
//!   any chain carrying a breaker open/close/short-circuit event, and
//!   any chain whose timeline latency exceeds a rolling p99 estimate;
//! - a **deterministic downsample** of the healthy majority (one in
//!   [`RecorderConfig::sample_every`] by request id), so exemplars and
//!   dumps still show what "normal" looks like.
//!
//! Storage is a set of [`RECORDER_SHARDS`] rings indexed by the calling
//! thread's lane (the same scheme as the span sink), so concurrent
//! serving workers never contend on one lock. Each shard enforces its
//! slice of [`RecorderConfig::memory_budget_bytes`] by evicting the
//! oldest *downsampled* chain first; anomalous chains are only evicted
//! when nothing else is left. The budget is a hard bound: under
//! adversarial error-string sizes the recorder sheds retained chains
//! (counted in [`FlightRecorder::evicted`]) rather than grow.
//!
//! The recorder is created disabled alongside [`crate::Telemetry::disabled`]
//! and costs nothing on that path: [`FlightRecorder::record`] is a
//! single branch, and serving only builds chains when telemetry is
//! enabled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::chrome::{push_json_number, push_json_string};
use crate::clock::Clock;
use crate::metrics::Histogram;
use crate::span::current_thread_lane;

/// Number of independent chain rings; callers hash onto one by thread
/// lane so the hot path is contention-free under the worker counts the
/// serving runtime uses.
pub const RECORDER_SHARDS: usize = 16;

/// Terminal disposition of a request chain, mirroring the serving
/// runtime's dispositions one-to-one (the telemetry crate is
/// dependency-free, so it keeps its own copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainDisposition {
    /// Served at full fidelity.
    Completed,
    /// Served by a degraded (search-free or truncated-search) program.
    Degraded,
    /// Never executed: rejected by admission control.
    Shed,
    /// Executed but failed (device retries exhausted or compile failure).
    Failed,
}

impl ChainDisposition {
    /// Stable lowercase label used in dumps and JSON snapshots.
    pub fn label(self) -> &'static str {
        match self {
            ChainDisposition::Completed => "completed",
            ChainDisposition::Degraded => "degraded",
            ChainDisposition::Shed => "shed",
            ChainDisposition::Failed => "failed",
        }
    }

    /// Anomalous chains are retained unconditionally.
    pub fn is_anomalous(self) -> bool {
        !matches!(self, ChainDisposition::Completed)
    }
}

/// Why a chain was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainReason {
    /// Non-`Completed` disposition: kept unconditionally.
    Disposition,
    /// The chain carries a circuit-breaker transition.
    BreakerEvent,
    /// Timeline latency above the rolling p99 estimate.
    TailLatency,
    /// Healthy chain kept by the deterministic downsample.
    Sampled,
}

impl RetainReason {
    /// Stable lowercase label used in dumps.
    pub fn label(self) -> &'static str {
        match self {
            RetainReason::Disposition => "disposition",
            RetainReason::BreakerEvent => "breaker-event",
            RetainReason::TailLatency => "tail-latency",
            RetainReason::Sampled => "sampled",
        }
    }
}

/// One request's structured event chain.
///
/// Timings are in nanoseconds. Virtual-timeline phases (`queue_ns`,
/// `device_ns`, `finish_ns`) and the real-clock compile phases
/// (`compile_real_ns`, `search_ns`, `cache_wait_ns`) are kept side by
/// side; `timeline_total_ns` projects the compile cost onto the virtual
/// timeline the same way the serving runtime does.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRecord {
    /// Request id.
    pub id: u64,
    /// Hash of the request's operator/shape sequence.
    pub shape_key: u64,
    /// Worker slot that served the request; `u64::MAX` when shed.
    pub worker: u64,
    /// Tenant the request billed against (0 for single-tenant streams).
    pub tenant: u32,
    /// Virtual nanoseconds spent queued (admission + device wait).
    pub queue_ns: f64,
    /// Real nanoseconds spent in the compile lane.
    pub compile_real_ns: f64,
    /// Real nanoseconds of online strategy search within the compile.
    pub search_ns: f64,
    /// Real nanoseconds blocked on another worker's in-flight compile.
    pub cache_wait_ns: f64,
    /// Virtual nanoseconds on the device (including dispatch overhead).
    pub device_ns: f64,
    /// Virtual-timeline completion timestamp.
    pub finish_ns: f64,
    /// Device retry attempts consumed.
    pub retries: u32,
    /// Program-cache outcome: `"hit"`, `"waited"`, `"computed"`, `"none"`.
    pub cache_outcome: &'static str,
    /// Circuit-breaker transition observed while serving this request
    /// (`"opened"`, `"closed"`, `"short-circuit"`), if any.
    pub breaker_event: Option<&'static str>,
    /// Terminal disposition.
    pub disposition: ChainDisposition,
    /// Terminal error label for `Shed`/`Failed` chains.
    pub error: Option<String>,
}

impl ChainRecord {
    /// Total latency with the real compile phase projected onto the
    /// virtual timeline — the quantity the retention policy ranks.
    pub fn timeline_total_ns(&self) -> f64 {
        self.queue_ns + self.compile_real_ns + self.device_ns
    }

    /// Estimated resident size used for the memory budget. Covers the
    /// record itself plus the heap behind the error string, with a
    /// small allowance for ring bookkeeping.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.error.as_ref().map_or(0, |e| e.len()) + 32
    }
}

/// A retained chain plus the reason it survived retention.
#[derive(Debug, Clone)]
pub struct RetainedChain {
    /// The chain itself.
    pub chain: ChainRecord,
    /// Why it was kept.
    pub reason: RetainReason,
}

/// Flight-recorder tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Hard cap on retained-chain memory across all shards, in bytes.
    pub memory_budget_bytes: usize,
    /// Keep one in `sample_every` healthy `Completed` chains (by
    /// request id). `0` disables the healthy downsample entirely.
    pub sample_every: u64,
    /// Refresh the cached rolling-p99 estimate every this many records.
    pub p99_refresh_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            memory_budget_bytes: 4 << 20,
            sample_every: 16,
            p99_refresh_every: 64,
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    chains: VecDeque<RetainedChain>,
    bytes: usize,
}

/// The bounded per-request chain store. See the module docs for the
/// retention policy.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    config: RecorderConfig,
    shards: Vec<Mutex<Shard>>,
    /// Rolling latency distribution feeding the tail-retention rule.
    latency: Histogram,
    p99_ns: AtomicU64,
    observed: AtomicU64,
    retained: AtomicU64,
    evicted: AtomicU64,
    bytes: AtomicUsize,
}

impl FlightRecorder {
    /// Creates a recorder. A disabled recorder drops every record at
    /// the cost of one branch.
    pub fn new(config: RecorderConfig, enabled: bool) -> Self {
        Self {
            enabled,
            config,
            shards: (0..RECORDER_SHARDS).map(|_| Mutex::default()).collect(),
            latency: Histogram::new(Clock::Virtual),
            p99_ns: AtomicU64::new(0),
            observed: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Whether this recorder keeps anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observes one finished chain, returning the retention reason if
    /// the chain was kept (callers use this to attach histogram
    /// exemplars only to requests that can actually be looked up).
    pub fn record(&self, chain: ChainRecord) -> Option<RetainReason> {
        if !self.enabled {
            return None;
        }
        let total = chain.timeline_total_ns();
        self.latency.record_f64(total);
        let seen = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if seen == 1 || seen.is_multiple_of(self.config.p99_refresh_every.max(1)) {
            self.p99_ns
                .store(self.latency.percentile_ns(0.99), Ordering::Relaxed);
        }
        let p99 = self.p99_ns.load(Ordering::Relaxed);
        let reason = if chain.disposition.is_anomalous() {
            Some(RetainReason::Disposition)
        } else if chain.breaker_event.is_some() {
            Some(RetainReason::BreakerEvent)
        } else if p99 > 0 && total > p99 as f64 {
            Some(RetainReason::TailLatency)
        } else if self.config.sample_every > 0 && chain.id.is_multiple_of(self.config.sample_every)
        {
            Some(RetainReason::Sampled)
        } else {
            None
        };
        let reason = reason?;
        self.retain(RetainedChain { chain, reason });
        Some(reason)
    }

    fn retain(&self, record: RetainedChain) {
        let shard_budget = (self.config.memory_budget_bytes / RECORDER_SHARDS).max(1);
        let index = (current_thread_lane() as usize) % RECORDER_SHARDS;
        let mut shard = match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let added = record.chain.approx_bytes();
        shard.bytes += added;
        shard.chains.push_back(record);
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut freed = 0usize;
        let mut evictions = 0u64;
        while shard.bytes > shard_budget {
            // The budget is a hard bound: shed the oldest downsampled
            // chain first, and anomalous chains only when no
            // downsampled chain remains.
            let victim_at = shard
                .chains
                .iter()
                .position(|c| c.reason == RetainReason::Sampled)
                .unwrap_or(0);
            match shard.chains.remove(victim_at) {
                Some(victim) => {
                    let size = victim.chain.approx_bytes();
                    shard.bytes -= size.min(shard.bytes);
                    freed += size;
                    evictions += 1;
                }
                None => break,
            }
        }
        drop(shard);
        if evictions > 0 {
            self.evicted.fetch_add(evictions, Ordering::Relaxed);
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        if freed > 0 {
            // Every freed chain was added with the same deterministic
            // size estimate, so the counter cannot underflow.
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Chains observed (retained or not).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Chains retained over the recorder's lifetime (including later
    /// evictions).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Retained chains later shed to honor the memory budget.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Estimated resident bytes across all shards.
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Rolling p99 of timeline latency, as last refreshed.
    pub fn rolling_p99_ns(&self) -> u64 {
        self.p99_ns.load(Ordering::Relaxed)
    }

    /// Number of chains currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.chains.len(),
                Err(poisoned) => poisoned.into_inner().chains.len(),
            })
            .sum()
    }

    /// Whether no chains are currently resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-destructive snapshot of every resident chain, sorted by
    /// request id. Unlike `drain_spans`, snapshots may be taken
    /// repeatedly.
    pub fn snapshot(&self) -> Vec<RetainedChain> {
        let mut chains: Vec<RetainedChain> = self
            .shards
            .iter()
            .flat_map(|s| {
                let shard = match s.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                shard.chains.iter().cloned().collect::<Vec<_>>()
            })
            .collect();
        chains.sort_by_key(|c| c.chain.id);
        chains
    }

    /// Looks up the retained chain for a request id (exemplar
    /// resolution).
    pub fn find(&self, id: u64) -> Option<RetainedChain> {
        self.shards.iter().find_map(|s| {
            let shard = match s.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            shard.chains.iter().find(|c| c.chain.id == id).cloned()
        })
    }
}

/// Renders one retained chain as a JSON object (used by the blackbox
/// dump and the `health` snapshot).
pub fn render_chain_json(out: &mut String, retained: &RetainedChain) {
    use std::fmt::Write as _;
    let c = &retained.chain;
    out.push_str("{\"id\":");
    let _ = write!(out, "{}", c.id);
    let _ = write!(out, ",\"shape_key\":\"{:016x}\"", c.shape_key);
    if c.worker != u64::MAX {
        let _ = write!(out, ",\"worker\":{}", c.worker);
    } else {
        out.push_str(",\"worker\":null");
    }
    let _ = write!(out, ",\"tenant\":{}", c.tenant);
    out.push_str(",\"disposition\":");
    push_json_string(out, c.disposition.label());
    out.push_str(",\"retained\":");
    push_json_string(out, retained.reason.label());
    out.push_str(",\"queue_ns\":");
    push_json_number(out, c.queue_ns);
    out.push_str(",\"compile_ns\":");
    push_json_number(out, c.compile_real_ns);
    out.push_str(",\"search_ns\":");
    push_json_number(out, c.search_ns);
    out.push_str(",\"cache_wait_ns\":");
    push_json_number(out, c.cache_wait_ns);
    out.push_str(",\"device_ns\":");
    push_json_number(out, c.device_ns);
    out.push_str(",\"finish_ns\":");
    push_json_number(out, c.finish_ns);
    let _ = write!(out, ",\"retries\":{}", c.retries);
    out.push_str(",\"cache\":");
    push_json_string(out, c.cache_outcome);
    out.push_str(",\"breaker\":");
    match c.breaker_event {
        Some(event) => push_json_string(out, event),
        None => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    match &c.error {
        Some(error) => push_json_string(out, error),
        None => out.push_str("null"),
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(id: u64, disposition: ChainDisposition) -> ChainRecord {
        ChainRecord {
            id,
            shape_key: 0xFEED,
            worker: 0,
            tenant: 0,
            queue_ns: 100.0,
            compile_real_ns: 1000.0,
            search_ns: 400.0,
            cache_wait_ns: 0.0,
            device_ns: 500.0,
            finish_ns: 1600.0 + id as f64,
            retries: 0,
            cache_outcome: "computed",
            breaker_event: None,
            disposition,
            error: None,
        }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let recorder = FlightRecorder::new(RecorderConfig::default(), false);
        assert_eq!(recorder.record(chain(0, ChainDisposition::Failed)), None);
        assert_eq!(recorder.observed(), 0);
        assert!(recorder.is_empty());
    }

    #[test]
    fn anomalous_chains_are_always_retained() {
        let config = RecorderConfig {
            sample_every: 0,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        for id in 0..100 {
            let disposition = if id % 3 == 0 {
                ChainDisposition::Failed
            } else if id % 3 == 1 {
                ChainDisposition::Shed
            } else {
                ChainDisposition::Completed
            };
            let reason = recorder.record(chain(id, disposition));
            if disposition.is_anomalous() {
                assert_eq!(reason, Some(RetainReason::Disposition));
            }
        }
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.len(), 67);
        assert!(snapshot
            .iter()
            .all(|c| c.chain.disposition.is_anomalous() && c.reason == RetainReason::Disposition));
    }

    #[test]
    fn healthy_chains_are_downsampled_deterministically() {
        let config = RecorderConfig {
            sample_every: 10,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        for id in 0..100 {
            recorder.record(chain(id, ChainDisposition::Completed));
        }
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.len(), 10);
        assert!(snapshot.iter().all(|c| c.chain.id % 10 == 0));
        assert!(snapshot.iter().all(|c| c.reason == RetainReason::Sampled));
    }

    #[test]
    fn breaker_events_retain_completed_chains() {
        let config = RecorderConfig {
            sample_every: 0,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        let mut with_event = chain(3, ChainDisposition::Completed);
        with_event.breaker_event = Some("closed");
        assert_eq!(
            recorder.record(with_event),
            Some(RetainReason::BreakerEvent)
        );
        assert!(recorder.find(3).is_some());
    }

    #[test]
    fn tail_latency_outliers_are_retained() {
        let config = RecorderConfig {
            sample_every: 0,
            p99_refresh_every: 1,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        for id in 0..200 {
            recorder.record(chain(id, ChainDisposition::Completed));
        }
        // All-constant latencies sit inside their own bucket's upper
        // bound, so nothing is an outlier yet.
        assert!(recorder.is_empty());
        let mut slow = chain(900, ChainDisposition::Completed);
        slow.device_ns = 1e9;
        assert_eq!(recorder.record(slow), Some(RetainReason::TailLatency));
    }

    #[test]
    fn memory_budget_is_a_hard_bound() {
        let config = RecorderConfig {
            memory_budget_bytes: RECORDER_SHARDS * 2048,
            sample_every: 1,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        for id in 0..64 {
            let mut c = chain(id, ChainDisposition::Completed);
            c.error = Some("x".repeat(512));
            recorder.record(c);
        }
        assert!(recorder.approx_bytes() <= config.memory_budget_bytes);
        assert!(recorder.evicted() > 0);
        // The newest chains survive; the oldest were shed.
        let snapshot = recorder.snapshot();
        assert_eq!(
            snapshot.last().map(|c| c.chain.id),
            Some(63),
            "eviction must shed oldest-first"
        );
    }

    #[test]
    fn eviction_prefers_downsampled_over_anomalous() {
        let config = RecorderConfig {
            memory_budget_bytes: RECORDER_SHARDS * 1200,
            sample_every: 1,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(config, true);
        recorder.record(chain(0, ChainDisposition::Failed));
        for id in 1..32 {
            let mut c = chain(id, ChainDisposition::Completed);
            c.error = Some("pad".repeat(64));
            recorder.record(c);
        }
        // The lone anomalous chain outlives every healthy one that
        // arrived after it.
        assert!(recorder.find(0).is_some());
    }

    #[test]
    fn chain_json_is_well_formed() {
        let mut retained = RetainedChain {
            chain: chain(7, ChainDisposition::Failed),
            reason: RetainReason::Disposition,
        };
        retained.chain.error = Some("device-retries-exhausted".to_string());
        let mut out = String::new();
        render_chain_json(&mut out, &retained);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"disposition\":\"failed\""));
        assert!(out.contains("\"error\":\"device-retries-exhausted\""));
        assert!(out.contains("\"retained\":\"disposition\""));
    }
}
