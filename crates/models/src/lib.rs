//! # mikpoly-models — the dynamic-shape model zoo
//!
//! Operator-graph definitions of every neural network in the MikPoly
//! evaluation, parameterized by their dynamic dimensions:
//!
//! * [`TransformerConfig`] — BERT, DistilBERT, RoBERTa, ALBERT (dynamic
//!   sequence length; Fig. 8, Table 5);
//! * [`CnnConfig`] — AlexNet, GoogLeNet, ResNet-18, VGG-11 (dynamic batch
//!   and resolution; Fig. 9 and the NPU end-to-end experiment);
//! * [`LlamaConfig`] — Llama2-13b under tensor parallelism (dynamic token
//!   count; Table 8, Fig. 11);
//! * [`VitConfig`] — a Vision Transformer (extension model: dynamic
//!   resolution turning into dynamic sequence length).
//!
//! A [`ModelGraph`] is just the ordered multiset of [`tensor_ir::Operator`]s
//! one forward pass executes — the representation an inference runtime hands
//! to an operator backend.
//!
//! # Example
//!
//! ```
//! use mikpoly_models::TransformerConfig;
//!
//! let bert = TransformerConfig::bert_base();
//! let graph = bert.graph(1, 384); // sequence length known at runtime
//! assert_eq!(graph.num_unique_shapes(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnns;
mod graph;
mod llama;
mod transformers;
mod vit;

pub use cnns::{CnnConfig, Layer};
pub use graph::{ModelGraph, ModelOp};
pub use llama::LlamaConfig;
pub use transformers::TransformerConfig;
pub use vit::VitConfig;
