//! Llama2-13b under tensor parallelism (Section 5.2.4).
//!
//! The paper shards Llama2-13b across four A100s (TP = 4) and evaluates the
//! four per-rank GEMMs of Table 8 — `qkv_proj`, `o_proj`, `ffn up`,
//! `ffn down` — plus end-to-end generation with input lengths `2^0..2^9`,
//! batch sizes `2^0..2^3` and 512 output tokens (Fig. 11). The dynamic
//! GEMM dimension is the number of tokens in flight.

use serde::{Deserialize, Serialize};

use tensor_ir::{GemmShape, Operator};

use crate::graph::{ModelGraph, ModelOp};

/// Llama2-13b configuration with a tensor-parallel degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlamaConfig {
    /// Decoder layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward intermediate dimension.
    pub intermediate: usize,
    /// Tensor-parallel degree (GEMM weight dims are sharded by this).
    pub tensor_parallel: usize,
}

impl LlamaConfig {
    /// Llama2-13b: 40 layers, hidden 5120, 40 heads, FFN 13824 — under
    /// TP = 4, matching Table 8's per-rank weight dimensions (3840 / 5120 /
    /// 3456 / 5120).
    pub fn llama2_13b_tp4() -> Self {
        Self {
            layers: 40,
            hidden: 5120,
            heads: 40,
            intermediate: 13824,
            tensor_parallel: 4,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// The four projection GEMMs of Table 8 for `tokens` tokens in flight.
    /// The paper writes them with the weight dimension first
    /// (`M = 3840, N* = tokens`); we use the equivalent
    /// `M = tokens` orientation.
    pub fn projection_ops(&self, tokens: usize) -> Vec<ModelOp> {
        assert!(tokens > 0, "at least one token must be in flight");
        let tp = self.tensor_parallel;
        let h = self.hidden;
        vec![
            ModelOp::new(
                "qkv_proj",
                Operator::gemm(GemmShape::new(tokens, 3 * h / tp, h)),
                self.layers,
            ),
            ModelOp::new(
                "o_proj",
                Operator::gemm(GemmShape::new(tokens, h, h / tp)),
                self.layers,
            ),
            ModelOp::new(
                "ffn_up",
                Operator::gemm(GemmShape::new(tokens, self.intermediate / tp, h)),
                self.layers,
            ),
            ModelOp::new(
                "ffn_down",
                Operator::gemm(GemmShape::new(tokens, h, self.intermediate / tp)),
                self.layers,
            ),
        ]
    }

    /// Attention GEMMs for `batch` sequences attending over a KV cache of
    /// `cache_len` entries with `q_len` query tokens per sequence, sharded
    /// over TP ranks. Cache lengths are padded to 64-entry blocks (paged
    /// KV-cache granularity), which keeps the number of distinct shapes —
    /// and hence online compilations — small.
    pub fn attention_ops(&self, batch: usize, q_len: usize, cache_len: usize) -> Vec<ModelOp> {
        let heads_per_rank = self.heads / self.tensor_parallel;
        let d = self.head_dim();
        let padded = cache_len.div_ceil(64) * 64;
        vec![
            ModelOp::new(
                "attn.scores",
                Operator::batched_gemm(batch * heads_per_rank, GemmShape::new(q_len, padded, d)),
                self.layers,
            ),
            ModelOp::new(
                "attn.context",
                Operator::batched_gemm(batch * heads_per_rank, GemmShape::new(q_len, d, padded)),
                self.layers,
            ),
        ]
    }

    /// The prefill pass over `seq_len` input tokens.
    pub fn prefill_graph(&self, batch: usize, seq_len: usize) -> ModelGraph {
        let mut ops = self.projection_ops(batch * seq_len);
        ops.extend(self.attention_ops(batch, seq_len, seq_len));
        ModelGraph::new(format!("llama2-13b.prefill@b{batch}s{seq_len}"), ops)
    }

    /// One decode step with `cache_len` cached tokens: one query token per
    /// sequence.
    pub fn decode_step_graph(&self, batch: usize, cache_len: usize) -> ModelGraph {
        let mut ops = self.projection_ops(batch);
        ops.extend(self.attention_ops(batch, 1, cache_len));
        ModelGraph::new(format!("llama2-13b.decode@b{batch}c{cache_len}"), ops)
    }

    /// The full generation workload of Fig. 11: prefill over `seq_in`
    /// tokens, then `seq_out` decode steps. Returns the per-step graphs;
    /// decode steps with the same padded cache length share a graph with
    /// multiplicity (the program-cache-friendly structure in-flight
    /// batching produces).
    pub fn generation_graphs(
        &self,
        batch: usize,
        seq_in: usize,
        seq_out: usize,
    ) -> Vec<ModelGraph> {
        let mut graphs = vec![self.prefill_graph(batch, seq_in)];
        // Group decode steps by padded cache length.
        let mut step = 0usize;
        while step < seq_out {
            let cache = seq_in + step;
            let padded = cache.div_ceil(64) * 64;
            // All steps until the cache grows past this 64-block run the
            // same shapes.
            let steps_in_block = (padded - cache + 1).min(seq_out - step);
            let mut g = self.decode_step_graph(batch, cache);
            for op in &mut g.ops {
                op.count *= steps_in_block;
            }
            graphs.push(g);
            step += steps_in_block;
        }
        graphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_weight_dimensions() {
        let cfg = LlamaConfig::llama2_13b_tp4();
        let ops = cfg.projection_ops(128);
        let n_of = |name: &str| {
            ops.iter()
                .find(|o| o.name == name)
                .map(|o| match o.operator {
                    tensor_ir::Operator::Gemm { shape, .. } => (shape.n, shape.k),
                    _ => panic!("projection must be a GEMM"),
                })
                .expect("op exists")
        };
        // Table 8: qkv (3840, 5120), o_proj (5120, 1280), ffn up
        // (3456, 5120), ffn down (5120, 3456).
        assert_eq!(n_of("qkv_proj"), (3840, 5120));
        assert_eq!(n_of("o_proj"), (5120, 1280));
        assert_eq!(n_of("ffn_up"), (3456, 5120));
        assert_eq!(n_of("ffn_down"), (5120, 3456));
    }

    #[test]
    fn decode_step_uses_single_token_rows() {
        let cfg = LlamaConfig::llama2_13b_tp4();
        let g = cfg.decode_step_graph(4, 700);
        match g.ops[0].operator {
            tensor_ir::Operator::Gemm { shape, .. } => assert_eq!(shape.m, 4),
            _ => panic!("gemm"),
        }
    }

    #[test]
    fn cache_padding_limits_unique_shapes() {
        let cfg = LlamaConfig::llama2_13b_tp4();
        let graphs = cfg.generation_graphs(1, 128, 512);
        // Prefill + one decode graph per 64-token cache block: 512/64 = 8
        // blocks (cache 128..640), plus the prefill.
        assert!(graphs.len() <= 10, "{} graphs", graphs.len());
        let decode_steps: usize = graphs[1..]
            .iter()
            .map(|g| g.ops.first().map_or(0, |o| o.count / cfg.layers))
            .sum();
        assert_eq!(decode_steps, 512);
    }

    #[test]
    fn attention_is_sharded_over_ranks() {
        let cfg = LlamaConfig::llama2_13b_tp4();
        let ops = cfg.attention_ops(2, 1, 64);
        match ops[0].operator {
            tensor_ir::Operator::BatchedGemm { batch, .. } => {
                assert_eq!(batch, 2 * 40 / 4);
            }
            _ => panic!("batched gemm"),
        }
    }

    #[test]
    fn head_dim_is_128() {
        assert_eq!(LlamaConfig::llama2_13b_tp4().head_dim(), 128);
    }
}
