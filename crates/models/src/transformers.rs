//! The HuggingFace language models of the evaluation (Section 5.1):
//! `bert-base-uncased`, `distilbert-base-uncased`, `roberta-base`,
//! `albert-xlarge-v2`. The dynamic dimension is the input sequence length.

use serde::{Deserialize, Serialize};

use tensor_ir::{GemmShape, Operator};

use crate::graph::{ModelGraph, ModelOp};

/// An encoder-style transformer configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Model name.
    pub name: String,
    /// Number of encoder layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward intermediate dimension.
    pub intermediate: usize,
}

impl TransformerConfig {
    /// `bert-base-uncased`: 12 layers, hidden 768, 12 heads, FFN 3072.
    pub fn bert_base() -> Self {
        Self {
            name: "bert-base-uncased".into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
        }
    }

    /// `distilbert-base-uncased`: 6 layers, hidden 768, 12 heads, FFN 3072.
    pub fn distilbert() -> Self {
        Self {
            name: "distilbert-base-uncased".into(),
            layers: 6,
            ..Self::bert_base()
        }
    }

    /// `roberta-base`: same encoder geometry as BERT-base.
    pub fn roberta_base() -> Self {
        Self {
            name: "roberta-base".into(),
            ..Self::bert_base()
        }
    }

    /// `albert-xlarge-v2`: 24 layers, hidden 2048, 16 heads, FFN 8192
    /// (parameters are shared across layers, but every layer still
    /// executes).
    pub fn albert_xlarge() -> Self {
        Self {
            name: "albert-xlarge-v2".into(),
            layers: 24,
            hidden: 2048,
            heads: 16,
            intermediate: 8192,
        }
    }

    /// The four language models of Figs. 8 and Table 5.
    pub fn evaluation_set() -> Vec<Self> {
        vec![
            Self::bert_base(),
            Self::distilbert(),
            Self::roberta_base(),
            Self::albert_xlarge(),
        ]
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// The operator graph of one forward pass at `(batch, seq_len)`.
    ///
    /// Per encoder layer:
    /// * fused QKV projection — `GEMM(b·s, 3h, h)`;
    /// * attention scores — `BatchedGEMM[b·heads](s, s, d)`;
    /// * attention context — `BatchedGEMM[b·heads](s, d, s)`;
    /// * attention output — `GEMM(b·s, h, h)`;
    /// * FFN up / down — `GEMM(b·s, i, h)` and `GEMM(b·s, h, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    pub fn graph(&self, batch: usize, seq_len: usize) -> ModelGraph {
        assert!(
            batch > 0 && seq_len > 0,
            "batch and sequence length must be positive"
        );
        let m = batch * seq_len;
        let h = self.hidden;
        let d = self.head_dim();
        let ops = vec![
            ModelOp::new(
                "attn.qkv_proj",
                Operator::gemm(GemmShape::new(m, 3 * h, h)),
                self.layers,
            ),
            ModelOp::new(
                "attn.scores",
                Operator::batched_gemm(batch * self.heads, GemmShape::new(seq_len, seq_len, d)),
                self.layers,
            ),
            ModelOp::new(
                "attn.context",
                Operator::batched_gemm(batch * self.heads, GemmShape::new(seq_len, d, seq_len)),
                self.layers,
            ),
            ModelOp::new(
                "attn.out_proj",
                Operator::gemm(GemmShape::new(m, h, h)),
                self.layers,
            ),
            ModelOp::new(
                "ffn.up",
                Operator::gemm(GemmShape::new(m, self.intermediate, h)),
                self.layers,
            ),
            ModelOp::new(
                "ffn.down",
                Operator::gemm(GemmShape::new(m, h, self.intermediate)),
                self.layers,
            ),
        ];
        ModelGraph::new(format!("{}@seq{}b{}", self.name, seq_len, batch), ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_flops_scale_with_sequence_length() {
        let bert = TransformerConfig::bert_base();
        let short = bert.graph(1, 64).total_flops();
        let long = bert.graph(1, 512).total_flops();
        assert!(long > 7.0 * short, "attention grows superlinearly");
    }

    #[test]
    fn bert_base_has_12x6_gemms() {
        let g = TransformerConfig::bert_base().graph(1, 128);
        assert_eq!(g.num_executions(), 12 * 6);
        assert_eq!(g.num_unique_shapes(), 6);
    }

    #[test]
    fn distilbert_is_half_of_bert() {
        let b = TransformerConfig::bert_base().graph(1, 128);
        let d = TransformerConfig::distilbert().graph(1, 128);
        assert!((b.total_flops() / d.total_flops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn albert_is_bigger_per_layer() {
        let a = TransformerConfig::albert_xlarge();
        assert_eq!(a.head_dim(), 128);
        assert!(
            a.graph(1, 128).total_flops()
                > TransformerConfig::bert_base().graph(1, 128).total_flops()
        );
    }

    #[test]
    fn qkv_projection_matches_known_shape() {
        // BERT at seq 128: qkv is (128, 2304, 768).
        let g = TransformerConfig::bert_base().graph(1, 128);
        let qkv = &g.ops[0];
        assert_eq!(qkv.operator, Operator::gemm(GemmShape::new(128, 2304, 768)));
    }

    #[test]
    fn evaluation_set_has_four_models() {
        let set = TransformerConfig::evaluation_set();
        assert_eq!(set.len(), 4);
        let names: Vec<&str> = set.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"bert-base-uncased"));
        assert!(names.contains(&"albert-xlarge-v2"));
    }
}
