//! The TorchVision CNN models of the evaluation (Section 5.1): `alexnet`,
//! `googlenet`, `resnet18`, `vgg11`. The dynamic dimensions are the batch
//! size and the input resolution.

use serde::{Deserialize, Serialize};

use tensor_ir::{Conv2dShape, GemmShape, Operator};

use crate::graph::{ModelGraph, ModelOp};

/// One stage of a CNN, in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// A convolution producing `out_c` channels with a `k x k` filter.
    Conv {
        /// Layer name.
        name: String,
        /// Output channels.
        out_c: usize,
        /// Filter size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Max pooling (no FLOPs worth optimizing; shrinks the spatial dims).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Adaptive average pooling to a fixed `out x out` spatial size (what
    /// lets TorchVision CNNs accept dynamic resolutions with fixed FC
    /// layers).
    AdaptivePool {
        /// Output spatial size.
        out: usize,
    },
    /// A fully-connected layer (`GEMM(batch, out, in)`).
    Fc {
        /// Layer name.
        name: String,
        /// Output features.
        out: usize,
    },
    /// A convolution running on a *parallel* branch (e.g. a ResNet
    /// downsample shortcut): emitted as an operator but the main path's
    /// shape propagation is unaffected.
    ParallelConv {
        /// Layer name.
        name: String,
        /// Output channels.
        out_c: usize,
        /// Filter size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// A GoogLeNet inception module: four parallel branches on the same
    /// input, concatenated along channels.
    Inception {
        /// Module name (e.g. `"3a"`).
        name: String,
        /// 1x1 branch channels.
        c1: usize,
        /// 3x3 branch: reduce channels then output channels.
        c2: (usize, usize),
        /// second 3x3 branch: reduce channels then output channels.
        c3: (usize, usize),
        /// pool-projection branch channels.
        c4: usize,
    },
}

/// A CNN model: an input-channel count plus an ordered layer list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Model name.
    pub name: String,
    /// Input channels (3 for RGB).
    pub input_channels: usize,
    /// The layers.
    pub layers: Vec<Layer>,
}

fn conv(name: &str, out_c: usize, k: usize, stride: usize, pad: usize) -> Layer {
    Layer::Conv {
        name: name.into(),
        out_c,
        k,
        stride,
        pad,
    }
}

fn pool(k: usize, stride: usize, pad: usize) -> Layer {
    Layer::MaxPool { k, stride, pad }
}

fn fc(name: &str, out: usize) -> Layer {
    Layer::Fc {
        name: name.into(),
        out,
    }
}

impl CnnConfig {
    /// TorchVision `alexnet`.
    pub fn alexnet() -> Self {
        Self {
            name: "alexnet".into(),
            input_channels: 3,
            layers: vec![
                conv("features.0", 64, 11, 4, 2),
                pool(3, 2, 0),
                conv("features.3", 192, 5, 1, 2),
                pool(3, 2, 0),
                conv("features.6", 384, 3, 1, 1),
                conv("features.8", 256, 3, 1, 1),
                conv("features.10", 256, 3, 1, 1),
                pool(3, 2, 0),
                Layer::AdaptivePool { out: 6 },
                fc("classifier.1", 4096),
                fc("classifier.4", 4096),
                fc("classifier.6", 1000),
            ],
        }
    }

    /// TorchVision `vgg11`.
    pub fn vgg11() -> Self {
        let mut layers = Vec::new();
        let cfg: [(usize, usize); 8] = [
            (64, 1),
            (128, 1),
            (256, 0),
            (256, 1),
            (512, 0),
            (512, 1),
            (512, 0),
            (512, 1),
        ];
        for (i, &(c, pool_after)) in cfg.iter().enumerate() {
            layers.push(conv(&format!("features.{i}"), c, 3, 1, 1));
            if pool_after == 1 {
                layers.push(pool(2, 2, 0));
            }
        }
        layers.push(Layer::AdaptivePool { out: 7 });
        layers.push(fc("classifier.0", 4096));
        layers.push(fc("classifier.3", 4096));
        layers.push(fc("classifier.6", 1000));
        Self {
            name: "vgg11".into(),
            input_channels: 3,
            layers,
        }
    }

    /// TorchVision `resnet18`.
    pub fn resnet18() -> Self {
        let mut layers = vec![conv("conv1", 64, 7, 2, 3), pool(3, 2, 1)];
        let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
        for (si, &(c, first_stride)) in stages.iter().enumerate() {
            for block in 0..2 {
                let stride = if block == 0 { first_stride } else { 1 };
                let base = format!("layer{}.{}", si + 1, block);
                if stride != 1 || (si > 0 && block == 0) {
                    // The 1x1 shortcut projection runs in parallel with the
                    // block's main path.
                    layers.push(Layer::ParallelConv {
                        name: format!("{base}.downsample"),
                        out_c: c,
                        k: 1,
                        stride,
                        pad: 0,
                    });
                }
                layers.push(conv(&format!("{base}.conv1"), c, 3, stride, 1));
                layers.push(conv(&format!("{base}.conv2"), c, 3, 1, 1));
            }
        }
        layers.push(Layer::AdaptivePool { out: 1 });
        layers.push(fc("fc", 1000));
        Self {
            name: "resnet18".into(),
            input_channels: 3,
            layers,
        }
    }

    /// TorchVision `googlenet` (Inception v1, 3x3 in place of 5x5 as
    /// TorchVision implements it).
    pub fn googlenet() -> Self {
        let inc = |name: &str, c1: usize, c2: (usize, usize), c3: (usize, usize), c4: usize| {
            Layer::Inception {
                name: name.into(),
                c1,
                c2,
                c3,
                c4,
            }
        };
        Self {
            name: "googlenet".into(),
            input_channels: 3,
            layers: vec![
                conv("conv1", 64, 7, 2, 3),
                pool(3, 2, 0),
                conv("conv2", 64, 1, 1, 0),
                conv("conv3", 192, 3, 1, 1),
                pool(3, 2, 0),
                inc("3a", 64, (96, 128), (16, 32), 32),
                inc("3b", 128, (128, 192), (32, 96), 64),
                pool(3, 2, 0),
                inc("4a", 192, (96, 208), (16, 48), 64),
                inc("4b", 160, (112, 224), (24, 64), 64),
                inc("4c", 128, (128, 256), (24, 64), 64),
                inc("4d", 112, (144, 288), (32, 64), 64),
                inc("4e", 256, (160, 320), (32, 128), 128),
                pool(2, 2, 0),
                inc("5a", 256, (160, 320), (32, 128), 128),
                inc("5b", 384, (192, 384), (48, 128), 128),
                Layer::AdaptivePool { out: 1 },
                fc("fc", 1000),
            ],
        }
    }

    /// The four CNNs of Fig. 9 and the NPU end-to-end experiment.
    pub fn evaluation_set() -> Vec<Self> {
        vec![
            Self::alexnet(),
            Self::googlenet(),
            Self::resnet18(),
            Self::vgg11(),
        ]
    }

    /// The operator graph of one forward pass at `(batch, resolution)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `resolution` is too small for the
    /// model's stem (< 32 pixels).
    pub fn graph(&self, batch: usize, resolution: usize) -> ModelGraph {
        assert!(batch > 0, "batch must be positive");
        assert!(resolution >= 32, "resolution must be at least 32 pixels");
        let mut ops = Vec::new();
        let mut c = self.input_channels;
        let (mut h, mut w) = (resolution, resolution);
        let mut stage = 0usize;
        let spatial = |h: usize, k: usize, s: usize, p: usize| (h + 2 * p - k) / s + 1;
        for layer in &self.layers {
            match layer {
                Layer::Conv {
                    name,
                    out_c,
                    k,
                    stride,
                    pad,
                } => {
                    let shape = Conv2dShape::new(batch, c, h, w, *out_c, *k, *k, *stride, *pad);
                    ops.push(
                        ModelOp::new(name.clone(), Operator::conv2d(shape), 1).with_stage(stage),
                    );
                    stage += 1;
                    h = spatial(h, *k, *stride, *pad);
                    w = spatial(w, *k, *stride, *pad);
                    c = *out_c;
                }
                Layer::ParallelConv {
                    name,
                    out_c,
                    k,
                    stride,
                    pad,
                } => {
                    // Runs concurrently with the *next* layer (the block's
                    // main path).
                    let shape = Conv2dShape::new(batch, c, h, w, *out_c, *k, *k, *stride, *pad);
                    ops.push(
                        ModelOp::new(name.clone(), Operator::conv2d(shape), 1).with_stage(stage),
                    );
                }
                Layer::MaxPool { k, stride, pad } => {
                    h = spatial(h, *k, *stride, *pad);
                    w = spatial(w, *k, *stride, *pad);
                }
                Layer::AdaptivePool { out } => {
                    h = *out;
                    w = *out;
                }
                Layer::Fc { name, out } => {
                    let shape = GemmShape::new(batch, *out, c * h * w);
                    ops.push(
                        ModelOp::new(name.clone(), Operator::gemm(shape), 1).with_stage(stage),
                    );
                    stage += 1;
                    c = *out;
                    h = 1;
                    w = 1;
                }
                Layer::Inception {
                    name,
                    c1,
                    c2,
                    c3,
                    c4,
                } => {
                    // Branch heads (1x1 reduces and projections) are
                    // mutually independent; the branch tails (3x3 convs)
                    // depend only on their own reduce.
                    let head = stage;
                    let tail = stage + 1;
                    stage += 2;
                    let mut branch =
                        |suffix: &str, out_c: usize, k: usize, in_c: usize, st: usize| {
                            let shape = Conv2dShape::new(batch, in_c, h, w, out_c, k, k, 1, k / 2);
                            ops.push(
                                ModelOp::new(
                                    format!("inception{name}.{suffix}"),
                                    Operator::conv2d(shape),
                                    1,
                                )
                                .with_stage(st),
                            );
                        };
                    branch("b1", *c1, 1, c, head);
                    branch("b2.reduce", c2.0, 1, c, head);
                    branch("b2.conv", c2.1, 3, c2.0, tail);
                    branch("b3.reduce", c3.0, 1, c, head);
                    branch("b3.conv", c3.1, 3, c3.0, tail);
                    branch("b4.proj", *c4, 1, c, head);
                    c = c1 + c2.1 + c3.1 + c4;
                }
            }
        }
        ModelGraph::new(format!("{}@b{}r{}", self.name, batch, resolution), ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_has_20_convs_and_a_fc() {
        let g = CnnConfig::resnet18().graph(1, 224);
        let convs = g
            .ops
            .iter()
            .filter(|o| o.operator.kind() == "conv2d")
            .count();
        let fcs = g.ops.iter().filter(|o| o.operator.kind() == "gemm").count();
        // 1 stem + 16 block convs + 3 downsamples = 20.
        assert_eq!(convs, 20);
        assert_eq!(fcs, 1);
    }

    #[test]
    fn resnet18_stem_output_is_112() {
        let g = CnnConfig::resnet18().graph(1, 224);
        match g.ops[0].operator {
            tensor_ir::Operator::Conv2d { shape, .. } => {
                assert_eq!(shape.out_h(), 112);
            }
            _ => panic!("stem must be a conv"),
        }
    }

    #[test]
    fn alexnet_fc_sizes_match_torchvision() {
        let g = CnnConfig::alexnet().graph(4, 224);
        let fc1 = g
            .ops
            .iter()
            .find(|o| o.name == "classifier.1")
            .expect("fc1");
        assert_eq!(
            fc1.operator,
            Operator::gemm(GemmShape::new(4, 4096, 256 * 6 * 6))
        );
    }

    #[test]
    fn googlenet_channel_concat_propagates() {
        let g = CnnConfig::googlenet().graph(1, 224);
        // inception3a outputs 64+128+32+32 = 256 channels; 3b's 1x1 branch
        // must consume 256.
        let b1_3b = g
            .ops
            .iter()
            .find(|o| o.name == "inception3b.b1")
            .expect("3b.b1");
        match b1_3b.operator {
            tensor_ir::Operator::Conv2d { shape, .. } => assert_eq!(shape.in_channels, 256),
            _ => panic!("branch must be conv"),
        }
    }

    #[test]
    fn vgg_flops_grow_quadratically_with_resolution() {
        let m = CnnConfig::vgg11();
        let lo = m.graph(1, 64).total_flops();
        let hi = m.graph(1, 128).total_flops();
        let ratio = hi / lo;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn all_models_accept_the_fig9_sweep_corners() {
        for m in CnnConfig::evaluation_set() {
            for &(b, r) in &[(1usize, 64usize), (128, 640)] {
                let g = m.graph(b, r);
                assert!(g.total_flops() > 0.0, "{} at ({b},{r})", m.name);
            }
        }
    }

    #[test]
    fn inception_branches_share_stages() {
        let g = CnnConfig::googlenet().graph(1, 224);
        let heads: Vec<&crate::graph::ModelOp> = g
            .ops
            .iter()
            .filter(|o| o.name.starts_with("inception3a") && !o.name.ends_with(".conv"))
            .collect();
        assert_eq!(heads.len(), 4);
        assert!(heads.windows(2).all(|w| w[0].stage == w[1].stage));
        let tail = g
            .ops
            .iter()
            .find(|o| o.name == "inception3a.b2.conv")
            .expect("tail");
        assert_eq!(tail.stage, heads[0].stage + 1);
    }

    #[test]
    fn resnet_downsample_shares_stage_with_main_path() {
        let g = CnnConfig::resnet18().graph(1, 224);
        let down = g
            .ops
            .iter()
            .find(|o| o.name == "layer2.0.downsample")
            .expect("down");
        let conv1 = g
            .ops
            .iter()
            .find(|o| o.name == "layer2.0.conv1")
            .expect("conv1");
        assert_eq!(down.stage, conv1.stage);
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let m = CnnConfig::resnet18();
        let one = m.graph(1, 224).total_flops();
        let eight = m.graph(8, 224).total_flops();
        assert!((eight / one - 8.0).abs() < 1e-9);
    }
}
