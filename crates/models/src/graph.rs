//! Model graphs as operator lists.

use serde::{Deserialize, Serialize};

use tensor_ir::Operator;

/// One operator occurrence in a model, with a multiplicity (identical
/// layers repeat; inference runtimes compile the shape once and reuse it —
/// exactly what MikPoly's program cache exploits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOp {
    /// Layer name, e.g. `"encoder.ffn_up"`.
    pub name: String,
    /// The tensor operator.
    pub operator: Operator,
    /// How many times this exact operator executes in one forward pass.
    pub count: usize,
    /// Dataflow stage: operators sharing a stage have no dependencies on
    /// each other (parallel branches of the graph) and may be co-launched.
    #[serde(default)]
    pub stage: usize,
}

impl ModelOp {
    /// Creates an operator occurrence (stage 0).
    pub fn new(name: impl Into<String>, operator: Operator, count: usize) -> Self {
        assert!(count > 0, "an operator must occur at least once");
        Self {
            name: name.into(),
            operator,
            count,
            stage: 0,
        }
    }

    /// Sets the dataflow stage (builder style).
    #[must_use]
    pub fn with_stage(mut self, stage: usize) -> Self {
        self.stage = stage;
        self
    }
}

/// A model instantiated at a concrete dynamic configuration (sequence
/// length / batch / resolution): the ordered multiset of tensor operators
/// one forward pass executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name, e.g. `"bert-base-uncased"`.
    pub name: String,
    /// The operators of one forward pass.
    pub ops: Vec<ModelOp>,
}

impl ModelGraph {
    /// Creates a graph.
    pub fn new(name: impl Into<String>, ops: Vec<ModelOp>) -> Self {
        Self {
            name: name.into(),
            ops,
        }
    }

    /// Total floating-point work of one forward pass.
    pub fn total_flops(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| o.operator.flops() * o.count as f64)
            .sum()
    }

    /// Total operator executions (counting multiplicity).
    pub fn num_executions(&self) -> usize {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// Operators grouped by dataflow stage, in stage order. Each group's
    /// members are mutually independent.
    pub fn stages(&self) -> Vec<Vec<&ModelOp>> {
        let mut stages: std::collections::BTreeMap<usize, Vec<&ModelOp>> = Default::default();
        for op in &self.ops {
            stages.entry(op.stage).or_default().push(op);
        }
        stages.into_values().collect()
    }

    /// Number of *distinct* operator shapes (what a compiler actually has
    /// to compile).
    pub fn num_unique_shapes(&self) -> usize {
        let mut ops: Vec<&Operator> = self.ops.iter().map(|o| &o.operator).collect();
        ops.sort_by_key(|o| format!("{o}"));
        ops.dedup_by_key(|o| format!("{o}"));
        ops.len()
    }
}

impl std::fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} ops ({} unique shapes, {:.2} GFLOPs)",
            self.name,
            self.num_executions(),
            self.num_unique_shapes(),
            self.total_flops() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn flops_respect_multiplicity() {
        let op = Operator::gemm(GemmShape::new(8, 8, 8));
        let g = ModelGraph::new("toy", vec![ModelOp::new("l", op, 3)]);
        assert_eq!(g.total_flops(), 3.0 * op.flops());
        assert_eq!(g.num_executions(), 3);
        assert_eq!(g.num_unique_shapes(), 1);
    }

    #[test]
    fn unique_shapes_deduplicate() {
        let a = Operator::gemm(GemmShape::new(8, 8, 8));
        let b = Operator::gemm(GemmShape::new(16, 8, 8));
        let g = ModelGraph::new(
            "toy",
            vec![
                ModelOp::new("x", a, 1),
                ModelOp::new("y", a, 1),
                ModelOp::new("z", b, 1),
            ],
        );
        assert_eq!(g.num_unique_shapes(), 2);
        assert_eq!(g.num_executions(), 3);
    }

    #[test]
    fn stages_group_independent_ops() {
        let a = Operator::gemm(GemmShape::new(8, 8, 8));
        let g = ModelGraph::new(
            "toy",
            vec![
                ModelOp::new("x", a, 1).with_stage(0),
                ModelOp::new("y", a, 1).with_stage(1),
                ModelOp::new("z", a, 1).with_stage(1),
            ],
        );
        let stages = g.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[1].len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_count_rejected() {
        let _ = ModelOp::new("l", Operator::gemm(GemmShape::new(1, 1, 1)), 0);
    }
}
