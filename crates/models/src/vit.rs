//! Vision Transformer (extension model): the two dynamic dimensions of the
//! paper's CNN experiments — batch and image resolution — flow into a
//! *transformer*, where resolution becomes token count. A good stress test
//! for a dynamic-shape compiler because one knob (resolution) changes every
//! GEMM in the network nonlinearly.

use serde::{Deserialize, Serialize};

use tensor_ir::{Conv2dShape, GemmShape, Operator};

use crate::graph::{ModelGraph, ModelOp};

/// A ViT-style encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VitConfig {
    /// Model name.
    pub name: String,
    /// Patch size (square).
    pub patch: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Classification classes.
    pub classes: usize,
}

impl VitConfig {
    /// `vit-base-patch16`: 12 layers, hidden 768, 12 heads, MLP 3072.
    pub fn vit_b16() -> Self {
        Self {
            name: "vit-base-patch16".into(),
            patch: 16,
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            classes: 1000,
        }
    }

    /// Token count at a resolution: one per patch plus the class token.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not a positive multiple of the patch
    /// size.
    pub fn tokens(&self, resolution: usize) -> usize {
        assert!(
            resolution > 0 && resolution.is_multiple_of(self.patch),
            "resolution {resolution} must be a positive multiple of the {} patch",
            self.patch
        );
        (resolution / self.patch).pow(2) + 1
    }

    /// The operator graph of one forward pass at `(batch, resolution)`.
    ///
    /// The patch embedding is a `patch x patch` stride-`patch` convolution;
    /// the encoder layers are the standard six GEMMs per layer; the head is
    /// one classifier GEMM.
    pub fn graph(&self, batch: usize, resolution: usize) -> ModelGraph {
        assert!(batch > 0, "batch must be positive");
        let seq = self.tokens(resolution);
        let m = batch * seq;
        let h = self.hidden;
        let d = h / self.heads;
        let embed = Conv2dShape::new(
            batch, 3, resolution, resolution, h, self.patch, self.patch, self.patch, 0,
        );
        let mut ops = vec![ModelOp::new("patch_embed", Operator::conv2d(embed), 1)];
        ops.extend([
            ModelOp::new(
                "encoder.qkv_proj",
                Operator::gemm(GemmShape::new(m, 3 * h, h)),
                self.layers,
            ),
            ModelOp::new(
                "encoder.attn.scores",
                Operator::batched_gemm(batch * self.heads, GemmShape::new(seq, seq, d)),
                self.layers,
            ),
            ModelOp::new(
                "encoder.attn.context",
                Operator::batched_gemm(batch * self.heads, GemmShape::new(seq, d, seq)),
                self.layers,
            ),
            ModelOp::new(
                "encoder.out_proj",
                Operator::gemm(GemmShape::new(m, h, h)),
                self.layers,
            ),
            ModelOp::new(
                "encoder.mlp.up",
                Operator::gemm(GemmShape::new(m, self.intermediate, h)),
                self.layers,
            ),
            ModelOp::new(
                "encoder.mlp.down",
                Operator::gemm(GemmShape::new(m, h, self.intermediate)),
                self.layers,
            ),
            ModelOp::new(
                "head",
                Operator::gemm(GemmShape::new(batch, self.classes, h)),
                1,
            ),
        ]);
        ModelGraph::new(format!("{}@b{}r{}", self.name, batch, resolution), ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_count_follows_resolution() {
        let v = VitConfig::vit_b16();
        assert_eq!(v.tokens(224), 14 * 14 + 1);
        assert_eq!(v.tokens(384), 24 * 24 + 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the 16 patch")]
    fn non_multiple_resolution_rejected() {
        let _ = VitConfig::vit_b16().tokens(100);
    }

    #[test]
    fn flops_grow_superlinearly_with_resolution() {
        let v = VitConfig::vit_b16();
        let lo = v.graph(1, 224).total_flops();
        let hi = v.graph(1, 448).total_flops();
        // Tokens x4 and attention x16.
        assert!(hi / lo > 4.0, "ratio = {}", hi / lo);
    }

    #[test]
    fn vit_b16_flops_match_public_numbers() {
        // ViT-B/16 at 224: ~35 GFLOPs (17.6 GMACs).
        let gflops = VitConfig::vit_b16().graph(1, 224).total_flops() / 1e9;
        assert!(
            (25.0..45.0).contains(&gflops),
            "vit-b16@224 = {gflops} GFLOPs"
        );
    }

    #[test]
    fn patch_embed_is_a_stride_patch_conv() {
        let g = VitConfig::vit_b16().graph(2, 224);
        match g.ops[0].operator {
            Operator::Conv2d { shape, .. } => {
                assert_eq!(shape.stride, 16);
                assert_eq!(shape.out_h(), 14);
                assert_eq!(shape.out_channels, 768);
            }
            _ => panic!("patch embed must be a conv"),
        }
    }
}
