//! # mikpoly-baselines — the comparators of the MikPoly evaluation
//!
//! Every system the paper compares against, behind one [`Backend`] trait:
//!
//! * [`VendorLibrary`] — cuBLAS / cuDNN / CANN-like hand-crafted kernel
//!   menus with heuristic selection (the Fig. 6/7 baselines);
//! * [`CutlassLibrary`] — template library with a fixed default heuristic
//!   and no cost model;
//! * [`DietCode`] — shape-range auto-scheduler with pre-compiled programs
//!   and invalid runs outside its range (Fig. 10, Table 5);
//! * [`Nimble`] — one conservative shape-generic program plus VM dispatch;
//! * [`MikPolyBackend`] / [`FasterTransformer`] — adapters putting MikPoly
//!   and the Llama2 baseline behind the same interface.
//!
//! # Example
//!
//! ```
//! use accel_sim::MachineModel;
//! use mikpoly_baselines::{Backend, VendorLibrary};
//! use tensor_ir::{GemmShape, Operator};
//!
//! let cublas = VendorLibrary::cublas(MachineModel::a100());
//! let run = cublas.run(&Operator::gemm(GemmShape::new(4096, 4096, 4096)))?;
//! assert!(run.tflops() > 100.0);
//! # Ok::<(), mikpoly_baselines::BackendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod backend;
mod cutlass;
mod dietcode;
mod nimble;
mod vendor;

pub use adapter::{FasterTransformer, MikPolyBackend};
pub use backend::{Backend, BackendError, BackendRun};
pub use cutlass::CutlassLibrary;
pub use dietcode::{DietCode, GemmRanges};
pub use nimble::Nimble;
pub use vendor::{VendorKernel, VendorLibrary};
