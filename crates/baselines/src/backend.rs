//! The common interface every comparator implements.

use accel_sim::{MachineModel, SimReport};
use tensor_ir::Operator;

/// Why a backend could not execute an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The runtime shape falls outside the dynamic-dimension range the
    /// backend was compiled for. DietCode and Nimble "can yield errors or
    /// incorrect outcomes when the runtime size of a tensor operator falls
    /// outside its predefined range" (Section 5.2.3) — these are the
    /// *invalid runs* of Table 5.
    OutOfRange {
        /// The offending dimension name (`"M"`, `"N"`, `"K"`).
        dimension: &'static str,
        /// The value that fell outside the compiled range.
        value: usize,
        /// The compiled inclusive range.
        range: (usize, usize),
    },
    /// The backend does not implement this operator kind.
    Unsupported(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::OutOfRange {
                dimension,
                value,
                range,
            } => write!(
                f,
                "invalid run: dimension {dimension} = {value} outside compiled range [{}, {}]",
                range.0, range.1
            ),
            BackendError::Unsupported(what) => write!(f, "unsupported operator: {what}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// One backend execution of one operator.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Simulated device timing.
    pub report: SimReport,
    /// Host-side overhead the backend paid before launching (heuristic
    /// selection, VM dispatch, cost-model search), in nanoseconds.
    pub overhead_ns: f64,
}

impl BackendRun {
    /// Device time plus host overhead.
    pub fn total_ns(&self) -> f64 {
        self.report.time_ns + self.overhead_ns
    }

    /// Achieved TFLOPS including host overhead.
    pub fn tflops(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            return 0.0;
        }
        self.report.total_flops / self.total_ns() / 1e3
    }
}

/// A tensor-operator execution engine: a vendor library, a dynamic-shape
/// compiler, or MikPoly itself behind the same interface.
pub trait Backend {
    /// Display name used in experiment tables.
    fn name(&self) -> &str;

    /// The machine this backend targets.
    fn machine(&self) -> &MachineModel;

    /// Executes one operator with a runtime-known shape.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::OutOfRange`] for shapes outside a compiled
    /// dynamic range, or [`BackendError::Unsupported`] for operator kinds
    /// the backend cannot handle.
    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_descriptive() {
        let e = BackendError::OutOfRange {
            dimension: "M",
            value: 9000,
            range: (1, 4096),
        };
        let s = e.to_string();
        assert!(s.contains("invalid run"));
        assert!(s.contains("9000"));
        assert!(s.contains("[1, 4096]"));
    }

    #[test]
    fn total_includes_overhead() {
        let mut report = SimReport::empty(1);
        report.time_ns = 100.0;
        report.total_flops = 1e6;
        let run = BackendRun {
            report,
            overhead_ns: 50.0,
        };
        assert_eq!(run.total_ns(), 150.0);
        assert!(run.tflops() > 0.0);
    }
}
