//! Vendor-library comparators: cuBLAS / cuDNN on the GPU, CANN on the NPU.
//!
//! A vendor library ships a *menu* of hand-crafted kernels, each tuned for
//! large, well-aligned shapes, and a heuristic that picks one kernel per
//! call — with no awareness of wave quantization. Hand-written assembly
//! buys the kernels a few percent of extra sustained peak (the
//! `quality` factor), so the library wins on its golden shapes; on odd
//! dynamic shapes it loses to padding waste and tail-wave imbalance — the
//! exact behaviour of Fig. 1 (262 TFLOPS at (4096, 4096, 4096) vs 22 TFLOPS
//! at (105, 1024, 12544)).

use accel_sim::{
    pipelined_task_ns, simulate, AllocationPolicy, Launch, MachineModel, TaskGroup, TaskShape,
    TaskSpec, TimingMode,
};
use tensor_ir::{GemmView, Operator};

use crate::backend::{Backend, BackendError, BackendRun};

/// One hand-crafted kernel in the vendor menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorKernel {
    /// Tile rows.
    pub um: usize,
    /// Tile columns.
    pub un: usize,
    /// Tile reduction depth.
    pub uk: usize,
    /// Warps per thread block.
    pub warps: usize,
}

impl VendorKernel {
    const fn new(um: usize, un: usize, uk: usize, warps: usize) -> Self {
        Self { um, un, uk, warps }
    }

    fn task_spec(&self, view: &GemmView, quality: f64) -> TaskSpec {
        let in_bytes = view.dtype.bytes();
        let shape = TaskShape::gemm_tile(self.um, self.un, self.uk, in_bytes, in_bytes, 4)
            .with_load_scale(view.load_scale)
            .with_quality(quality);
        TaskSpec::new(shape, self.warps, view.shape.k.div_ceil(self.uk))
    }
}

/// A vendor library backend.
#[derive(Debug, Clone)]
pub struct VendorLibrary {
    name: String,
    machine: MachineModel,
    menu: Vec<VendorKernel>,
    quality: f64,
}

impl VendorLibrary {
    /// The cuBLAS-like GEMM library for the Tensor-Core GPU.
    pub fn cublas(machine: MachineModel) -> Self {
        Self {
            name: "cuBLAS".into(),
            menu: gpu_menu(),
            quality: 1.10,
            machine,
        }
    }

    /// The cuDNN-like convolution library (implicit-GEMM algorithm, as the
    /// paper selects for fairness).
    pub fn cudnn(machine: MachineModel) -> Self {
        Self {
            name: "cuDNN".into(),
            menu: gpu_menu(),
            quality: 1.08,
            machine,
        }
    }

    /// The CANN-like library for the Ascend NPU.
    pub fn cann(machine: MachineModel) -> Self {
        Self {
            name: "CANN".into(),
            menu: npu_menu(),
            quality: 1.08,
            machine,
        }
    }

    /// The kernel the selection heuristic picks for a view.
    ///
    /// Vendor heuristics are *bucketed*: a dimension below the largest tile
    /// size selects the smallest tile that still covers it (the dimension's
    /// bucket), and only the remaining degrees of freedom are ranked by the
    /// library's performance table. Bucketing is what produces Fig. 1's
    /// cliffs — `M = 105` lands in the 128-row bucket and launches a grid
    /// of 8 thread blocks on 108 SMs — and, together with the smooth
    /// (un-quantized) performance model, what MikPoly's wave-aware
    /// polymerization beats.
    pub fn select(&self, view: &GemmView) -> VendorKernel {
        let fits = |k: &&VendorKernel| {
            k.task_spec(view, self.quality).shape.fits(&self.machine)
                && k.warps <= self.machine.warp_cap_per_pe
        };
        let bucket = |extent: usize, sizes: &mut Vec<usize>| -> Option<usize> {
            sizes.sort_unstable();
            sizes.dedup();
            sizes.iter().copied().find(|&s| s >= extent)
        };
        let mut ums: Vec<usize> = self.menu.iter().filter(fits).map(|k| k.um).collect();
        let mut uns: Vec<usize> = self.menu.iter().filter(fits).map(|k| k.un).collect();
        let um_bucket = bucket(view.shape.m, &mut ums);
        let un_bucket = bucket(view.shape.n, &mut uns);

        let candidates: Vec<&VendorKernel> = self
            .menu
            .iter()
            .filter(fits)
            .filter(|k| um_bucket.is_none_or(|b| k.um == b))
            .filter(|k| un_bucket.is_none_or(|b| k.un == b))
            .collect();
        let pool: Vec<&VendorKernel> = if candidates.is_empty() {
            self.menu.iter().filter(fits).collect()
        } else {
            candidates
        };
        **pool
            .iter()
            .min_by(|a, b| {
                let score = |k: &VendorKernel| self.smooth_time_estimate(k, view);
                score(a)
                    .total_cmp(&score(b))
                    .then((b.um * b.un).cmp(&(a.um * a.un)))
            })
            .expect("vendor menu always contains a fitting kernel")
    }

    /// The library's performance-table time estimate for one kernel:
    /// single-task duration times the continuous (un-quantized) wave count.
    fn smooth_time_estimate(&self, k: &VendorKernel, view: &GemmView) -> f64 {
        let spec = k.task_spec(view, self.quality);
        let tasks = view.shape.m.div_ceil(k.um) * view.shape.n.div_ceil(k.un);
        let parallel = (tasks as f64 / self.machine.num_pes as f64).max(1.0);
        parallel * pipelined_task_ns(&self.machine, &spec)
    }

    /// The launch the library would issue for this view.
    pub fn launch_for(&self, view: &GemmView) -> Launch {
        let kernel = self.select(view);
        let spec = kernel.task_spec(view, self.quality);
        let count = view.shape.m.div_ceil(kernel.um) * view.shape.n.div_ceil(kernel.un);
        match self.machine.allocation {
            AllocationPolicy::DynamicHardware => Launch::grid(spec, count),
            AllocationPolicy::StaticCompilerAssigned => {
                // Vendor NPU runtime: plain round-robin placement.
                let assignment = (0..count).map(|i| i % self.machine.num_pes).collect();
                Launch::from_groups(vec![TaskGroup::with_assignment(spec, assignment)])
            }
        }
    }
}

impl Backend for VendorLibrary {
    fn name(&self) -> &str {
        &self.name
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        let view = operator.gemm_view();
        let launch = self.launch_for(&view);
        let report = simulate(&self.machine, &launch, TimingMode::Evaluate);
        Ok(BackendRun {
            report,
            // Heuristic dispatch is a table lookup.
            overhead_ns: 200.0,
        })
    }
}

fn gpu_menu() -> Vec<VendorKernel> {
    vec![
        VendorKernel::new(256, 128, 32, 8),
        VendorKernel::new(128, 256, 32, 8),
        VendorKernel::new(128, 128, 32, 8),
        VendorKernel::new(128, 128, 64, 8),
        VendorKernel::new(256, 64, 32, 8),
        VendorKernel::new(64, 256, 32, 8),
        VendorKernel::new(128, 64, 32, 4),
        VendorKernel::new(64, 128, 32, 4),
        VendorKernel::new(64, 64, 64, 4),
        VendorKernel::new(64, 64, 32, 4),
        VendorKernel::new(32, 64, 64, 4),
        VendorKernel::new(32, 32, 64, 4),
    ]
}

fn npu_menu() -> Vec<VendorKernel> {
    vec![
        VendorKernel::new(256, 256, 64, 1),
        VendorKernel::new(256, 128, 64, 1),
        VendorKernel::new(128, 256, 64, 1),
        VendorKernel::new(128, 128, 128, 1),
        VendorKernel::new(128, 128, 64, 1),
        VendorKernel::new(128, 64, 128, 1),
        VendorKernel::new(64, 128, 64, 1),
        VendorKernel::new(128, 64, 64, 1),
        VendorKernel::new(64, 64, 128, 1),
        VendorKernel::new(64, 64, 64, 1),
        VendorKernel::new(64, 64, 32, 1),
        VendorKernel::new(32, 64, 64, 1),
        VendorKernel::new(32, 32, 128, 1),
        VendorKernel::new(32, 32, 64, 1),
        VendorKernel::new(32, 32, 32, 1),
        VendorKernel::new(16, 16, 32, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::{Conv2dShape, GemmShape};

    #[test]
    fn cublas_is_fast_on_golden_shapes() {
        let lib = VendorLibrary::cublas(MachineModel::a100());
        let run = lib
            .run(&Operator::gemm(GemmShape::new(4096, 4096, 4096)))
            .expect("run");
        // Fig. 1 reports 262 TFLOPS; our reproduction should be well over
        // half of peak.
        assert!(run.tflops() > 150.0, "got {} TFLOPS", run.tflops());
    }

    #[test]
    fn cublas_collapses_on_skinny_shapes() {
        // Fig. 1's pathological case: (105, 1024, 12544) at 22 TFLOPS.
        let lib = VendorLibrary::cublas(MachineModel::a100());
        let good = lib
            .run(&Operator::gemm(GemmShape::new(4096, 4096, 4096)))
            .expect("run");
        let bad = lib
            .run(&Operator::gemm(GemmShape::new(105, 1024, 12544)))
            .expect("run");
        assert!(
            bad.tflops() < good.tflops() / 4.0,
            "skinny {} vs golden {}",
            bad.tflops(),
            good.tflops()
        );
    }

    #[test]
    fn selection_prefers_low_padding() {
        let lib = VendorLibrary::cublas(MachineModel::a100());
        let skinny = Operator::gemm(GemmShape::new(64, 4096, 4096)).gemm_view();
        let k = lib.select(&skinny);
        assert!(k.um <= 64, "picked um = {} for a 64-row GEMM", k.um);
    }

    #[test]
    fn cudnn_runs_convolutions() {
        let lib = VendorLibrary::cudnn(MachineModel::a100());
        let conv = Operator::conv2d(Conv2dShape::square(8, 64, 56, 64, 3, 1));
        let run = lib.run(&conv).expect("run");
        assert!(run.report.time_ns > 0.0);
        // Padded tile work can exceed the exact operator FLOPs, never fall
        // below them.
        assert!(run.report.total_flops >= conv.flops());
    }

    #[test]
    fn cann_uses_static_round_robin() {
        let lib = VendorLibrary::cann(MachineModel::ascend910a());
        let launch = lib.launch_for(&Operator::gemm(GemmShape::new(2048, 2048, 512)).gemm_view());
        let group = &launch.groups[0];
        let a = group.assignment.as_ref().expect("static assignment");
        assert_eq!(a[0], 0);
        assert_eq!(a[32], 0);
        assert_eq!(a[33], 1);
    }

    #[test]
    fn menu_kernels_all_fit_their_machines() {
        let a100 = MachineModel::a100();
        let view = Operator::gemm(GemmShape::new(128, 128, 128)).gemm_view();
        for k in gpu_menu() {
            assert!(k.task_spec(&view, 1.1).shape.fits(&a100), "{k:?}");
        }
        let npu = MachineModel::ascend910a();
        for k in npu_menu() {
            assert!(k.task_spec(&view, 1.08).shape.fits(&npu), "{k:?}");
        }
    }
}
