//! The Nimble-like dynamic-shape compiler.
//!
//! Nimble [MLSys 2021] compiles a *single* shape-generic program per
//! operator for the declared dynamic range and executes models through a
//! virtual machine. Portability over peak performance: the one-size-fits-
//! all program uses a conservative tile with full boundary checking, and
//! every operator call pays VM dispatch overhead. Fig. 10 measures MikPoly
//! at 7.54x over Nimble on CUDA cores.

use accel_sim::{simulate, Launch, MachineModel, TaskShape, TaskSpec, TimingMode};
use tensor_ir::Operator;

use crate::backend::{Backend, BackendError, BackendRun};
use crate::dietcode::GemmRanges;

/// The Nimble-like backend.
#[derive(Debug, Clone)]
pub struct Nimble {
    machine: MachineModel,
    ranges: GemmRanges,
    tile: (usize, usize, usize),
    warps: usize,
}

/// Fully shape-generic TVM code: boundary checks on every tile edge and no
/// shape specialization at all — slightly below even DietCode's
/// range-specialized kernels.
const GENERIC_QUALITY: f64 = 0.55;

/// Per-operator virtual-machine dispatch overhead.
const VM_OVERHEAD_NS: f64 = 10_000.0;

impl Nimble {
    /// Compiles the single shape-generic program for the declared ranges.
    pub fn compile(machine: MachineModel, ranges: GemmRanges) -> Self {
        // The program must be safe for the smallest declared shape, so the
        // tile is conservative: 64x64x32 (or smaller if the range demands).
        let cap = |lo_hi: (usize, usize), default: usize| -> usize {
            default.min(lo_hi.1.next_power_of_two().max(16))
        };
        let tile = (cap(ranges.m, 64), cap(ranges.n, 64), 32);
        let warps = machine.warp_cap_per_pe;
        Self {
            machine,
            ranges,
            tile,
            warps,
        }
    }

    /// The single compiled tile.
    pub fn tile(&self) -> (usize, usize, usize) {
        self.tile
    }
}

impl Backend for Nimble {
    fn name(&self) -> &str {
        "Nimble"
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        let view = operator.gemm_view();
        let s = view.shape;
        let dims = [
            ("M", s.m, self.ranges.m),
            ("N", s.n, self.ranges.n),
            ("K", s.k, self.ranges.k),
        ];
        for (dimension, value, range) in dims {
            if value < range.0 || value > range.1 {
                return Err(BackendError::OutOfRange {
                    dimension,
                    value,
                    range,
                });
            }
        }
        let (um, un, uk) = self.tile;
        let in_bytes = view.dtype.bytes();
        let shape = TaskShape::gemm_tile(um, un, uk, in_bytes, in_bytes, 4)
            .with_load_scale(view.load_scale)
            .with_quality(GENERIC_QUALITY);
        let warps = self.warps.min(self.machine.warp_cap_per_pe);
        let spec = TaskSpec::new(shape, warps, s.k.div_ceil(uk));
        let count = s.m.div_ceil(um) * s.n.div_ceil(un);
        let report = simulate(
            &self.machine,
            &Launch::grid(spec, count),
            TimingMode::Evaluate,
        );
        Ok(BackendRun {
            report,
            overhead_ns: VM_OVERHEAD_NS,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    fn backend() -> Nimble {
        Nimble::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(1, 4096))
    }

    #[test]
    fn single_conservative_tile() {
        assert_eq!(backend().tile(), (64, 64, 32));
    }

    #[test]
    fn vm_overhead_dominates_small_ops() {
        let n = backend();
        let run = n
            .run(&Operator::gemm(GemmShape::new(16, 16, 16)))
            .expect("run");
        assert!(run.overhead_ns >= VM_OVERHEAD_NS);
        assert!(run.overhead_ns > run.report.time_ns / 2.0);
    }

    #[test]
    fn out_of_range_is_invalid() {
        let n = backend();
        assert!(n
            .run(&Operator::gemm(GemmShape::new(1, 1, 100_000)))
            .is_err());
    }

    #[test]
    fn runs_within_range() {
        let n = backend();
        let run = n
            .run(&Operator::gemm(GemmShape::new(1024, 1024, 1024)))
            .expect("run");
        assert!(run.report.time_ns > 0.0);
    }
}
