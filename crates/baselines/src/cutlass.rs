//! The CUTLASS-like template library.
//!
//! CUTLASS instantiates high-quality templated kernels but, used as a
//! library, picks its tile configuration with a fixed default heuristic and
//! "lacks the guidance of a cost model" (Section 5.3.2): the default
//! 128x128x32 threadblock, stepping down only when the problem is smaller
//! than the tile. Competitive on large shapes, far from optimal on small
//! and skinny dynamic shapes — 0.45x of Oracle on average in Fig. 12(b).

use accel_sim::{simulate, Launch, MachineModel, TaskShape, TaskSpec, TimingMode};
use tensor_ir::{GemmView, Operator};

use crate::backend::{Backend, BackendError, BackendRun};

/// The CUTLASS-like backend.
#[derive(Debug, Clone)]
pub struct CutlassLibrary {
    machine: MachineModel,
    quality: f64,
}

impl CutlassLibrary {
    /// Creates the backend for a GPU machine (Tensor-Core or CUDA-core
    /// variant).
    pub fn new(machine: MachineModel) -> Self {
        Self {
            machine,
            quality: 1.05,
        }
    }

    /// The default-heuristic tile for a view: 128x128x32, halving a
    /// dimension's tile only when the problem does not reach it.
    pub fn select(&self, view: &GemmView) -> (usize, usize, usize, usize) {
        let s = view.shape;
        let pick = |extent: usize, default: usize| -> usize {
            let mut t = default;
            while t > 32 && extent <= t / 2 {
                t /= 2;
            }
            t
        };
        let um = pick(s.m, 128);
        let un = pick(s.n, 128);
        let uk = 32;
        // Template defaults use a fixed thread organization (half the PE's
        // warp budget) regardless of problem shape.
        let warps = (self.machine.warp_cap_per_pe / 2).max(1);
        (um, un, uk, warps)
    }

    /// The launch CUTLASS would issue for a view.
    pub fn launch_for(&self, view: &GemmView) -> Launch {
        let (um, un, uk, warps) = self.select(view);
        let in_bytes = view.dtype.bytes();
        let shape = TaskShape::gemm_tile(um, un, uk, in_bytes, in_bytes, 4)
            .with_load_scale(view.load_scale)
            .with_quality(self.quality);
        let spec = TaskSpec::new(shape, warps, view.shape.k.div_ceil(uk));
        let count = view.shape.m.div_ceil(um) * view.shape.n.div_ceil(un);
        Launch::grid(spec, count)
    }
}

impl Backend for CutlassLibrary {
    fn name(&self) -> &str {
        "CUTLASS"
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        let view = operator.gemm_view();
        let launch = self.launch_for(&view);
        let report = simulate(&self.machine, &launch, TimingMode::Evaluate);
        Ok(BackendRun {
            report,
            overhead_ns: 100.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn default_tile_is_128x128() {
        let c = CutlassLibrary::new(MachineModel::a100());
        let view = Operator::gemm(GemmShape::new(4096, 4096, 4096)).gemm_view();
        let (um, un, uk, _) = c.select(&view);
        assert_eq!((um, un, uk), (128, 128, 32));
    }

    #[test]
    fn small_problems_step_the_tile_down() {
        let c = CutlassLibrary::new(MachineModel::a100());
        let view = Operator::gemm(GemmShape::new(48, 40, 512)).gemm_view();
        let (um, un, _, _) = c.select(&view);
        assert_eq!((um, un), (64, 64));
        let tiny = Operator::gemm(GemmShape::new(30, 12, 512)).gemm_view();
        let (um, un, _, _) = c.select(&tiny);
        assert_eq!((um, un), (32, 32));
    }

    #[test]
    fn runs_and_reports_time() {
        let c = CutlassLibrary::new(MachineModel::a100());
        let run = c
            .run(&Operator::gemm(GemmShape::new(1024, 1024, 1024)))
            .expect("run");
        assert!(run.report.time_ns > 0.0);
        assert!(run.tflops() > 10.0);
    }
}
