//! Adapters that put MikPoly itself (and a FasterTransformer-style wrapper)
//! behind the common [`Backend`] interface, so experiment harnesses can
//! sweep all systems uniformly.

use std::sync::Arc;

use accel_sim::MachineModel;
use mikpoly::MikPoly;
use tensor_ir::Operator;

use crate::backend::{Backend, BackendError, BackendRun};
use crate::vendor::VendorLibrary;

/// MikPoly behind the [`Backend`] interface. The reported overhead is the
/// online polymerization time (zero on program-cache hits), matching how
/// the paper accounts end-to-end latency.
#[derive(Debug, Clone)]
pub struct MikPolyBackend {
    name: String,
    compiler: Arc<MikPoly>,
}

impl MikPolyBackend {
    /// Wraps a compiler.
    pub fn new(compiler: Arc<MikPoly>) -> Self {
        Self {
            name: "MikPoly".into(),
            compiler,
        }
    }

    /// Wraps a compiler under a custom display name (e.g. `MikPoly-Wave`).
    pub fn named(name: impl Into<String>, compiler: Arc<MikPoly>) -> Self {
        Self {
            name: name.into(),
            compiler,
        }
    }

    /// The wrapped compiler.
    pub fn compiler(&self) -> &MikPoly {
        &self.compiler
    }
}

impl Backend for MikPolyBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn machine(&self) -> &MachineModel {
        self.compiler.machine()
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        let run = self.compiler.run(operator);
        Ok(BackendRun {
            report: run.report,
            overhead_ns: run.compile_ns as f64,
        })
    }
}

/// The FasterTransformer-style runner used as the Llama2 end-to-end
/// baseline (Fig. 11): vendor-library GEMMs behind a fused-transformer
/// runtime with negligible per-op framework overhead.
#[derive(Debug, Clone)]
pub struct FasterTransformer {
    inner: VendorLibrary,
}

impl FasterTransformer {
    /// Creates the baseline on a GPU machine.
    pub fn new(machine: MachineModel) -> Self {
        Self {
            inner: VendorLibrary::cublas(machine),
        }
    }
}

impl Backend for FasterTransformer {
    fn name(&self) -> &str {
        "FasterTransformer"
    }

    fn machine(&self) -> &MachineModel {
        self.inner.machine()
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        self.inner.run(operator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mikpoly::OfflineOptions;
    use tensor_ir::GemmShape;

    #[test]
    fn mikpoly_backend_reports_overhead_then_cache_hits() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let compiler = Arc::new(MikPoly::offline(MachineModel::a100(), &o));
        let b = MikPolyBackend::new(compiler);
        let op = Operator::gemm(GemmShape::new(700, 300, 200));
        let first = b.run(&op).expect("run");
        let second = b.run(&op).expect("run");
        assert!(first.overhead_ns > 0.0);
        assert_eq!(second.overhead_ns, 0.0);
        assert_eq!(first.report.time_ns, second.report.time_ns);
    }

    #[test]
    fn faster_transformer_delegates_to_vendor() {
        let ft = FasterTransformer::new(MachineModel::a100());
        let run = ft
            .run(&Operator::gemm(GemmShape::new(3840, 128, 5120)))
            .expect("run");
        assert!(run.report.time_ns > 0.0);
        assert_eq!(ft.name(), "FasterTransformer");
    }
}
