//! The DietCode-like dynamic-shape auto-scheduler.
//!
//! DietCode [ASPLOS 2022] refines the auto-scheduling search space for a
//! *declared* dynamic-dimension range: it tunes one program per
//! representative shape inside the range offline, and at runtime dispatches
//! to the pre-compiled program of the nearest representative. Two
//! consequences the paper leans on (Section 5.2.3):
//!
//! * shapes outside the declared range are **invalid runs** — there is no
//!   program to dispatch to;
//! * within the range, the dispatched program's tile was tuned for the
//!   representative shape, not the actual one, and its shape-generic loop
//!   code pays boundary checks instead of MikPoly's local padding.

use accel_sim::{
    pipelined_task_ns, simulate, Launch, MachineModel, TaskShape, TaskSpec, TimingMode,
};
use tensor_ir::{GemmShape, GemmView, Operator};

use crate::backend::{Backend, BackendError, BackendRun};

/// Inclusive ranges of the dynamic dimensions DietCode is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmRanges {
    /// Range of `M`.
    pub m: (usize, usize),
    /// Range of `N`.
    pub n: (usize, usize),
    /// Range of `K`.
    pub k: (usize, usize),
}

impl GemmRanges {
    /// A cube range covering `[lo, hi]` in every dimension.
    pub fn cube(lo: usize, hi: usize) -> Self {
        Self {
            m: (lo, hi),
            n: (lo, hi),
            k: (lo, hi),
        }
    }

    fn check(&self, shape: GemmShape) -> Result<(), BackendError> {
        let dims = [
            ("M", shape.m, self.m),
            ("N", shape.n, self.n),
            ("K", shape.k, self.k),
        ];
        for (dimension, value, range) in dims {
            if value < range.0 || value > range.1 {
                return Err(BackendError::OutOfRange {
                    dimension,
                    value,
                    range,
                });
            }
        }
        Ok(())
    }
}

/// A pre-tuned program: a representative shape and the tile selected for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TunedProgram {
    rep: GemmShape,
    um: usize,
    un: usize,
    uk: usize,
    warps: usize,
}

/// The DietCode-like backend.
#[derive(Debug, Clone)]
pub struct DietCode {
    machine: MachineModel,
    ranges: GemmRanges,
    programs: Vec<TunedProgram>,
    quality: f64,
}

/// Code-generation quality of DietCode's kernels relative to MikPoly's
/// CUTLASS-template-based micro-kernels: DietCode emits plain TVM CUDA
/// kernels with boundary checks, which sustain roughly half the per-SM
/// throughput of hand-shaped tile pipelines (the DietCode paper itself
/// reports roughly a third of hand-tuned throughput on CUDA cores).
const TVM_CODEGEN_QUALITY: f64 = 0.65;

impl DietCode {
    /// Auto-schedules programs for representative shapes within `ranges`
    /// (log-spaced samples per dynamic dimension), tuning each on the
    /// (simulated) device.
    pub fn compile(machine: MachineModel, ranges: GemmRanges) -> Self {
        let samples = |(lo, hi): (usize, usize)| -> Vec<usize> {
            let mut out = Vec::new();
            let mut v = lo.max(1).next_power_of_two();
            while v < hi {
                out.push(v.clamp(lo, hi));
                v *= 4;
            }
            out.push(hi);
            out.dedup();
            out
        };
        let mut programs = Vec::new();
        for &m in &samples(ranges.m) {
            for &n in &samples(ranges.n) {
                for &k in &samples(ranges.k) {
                    let rep = GemmShape::new(m, n, k);
                    programs.push(tune_for(&machine, rep, TVM_CODEGEN_QUALITY));
                }
            }
        }
        Self {
            machine,
            ranges,
            programs,
            quality: TVM_CODEGEN_QUALITY,
        }
    }

    /// Number of pre-compiled programs.
    pub fn num_programs(&self) -> usize {
        self.programs.len()
    }

    /// The declared ranges.
    pub fn ranges(&self) -> GemmRanges {
        self.ranges
    }

    fn dispatch(&self, shape: GemmShape) -> &TunedProgram {
        // Nearest representative in log space.
        let dist = |p: &TunedProgram| -> f64 {
            let d = |a: usize, b: usize| ((a as f64).ln() - (b as f64).ln()).abs();
            d(p.rep.m, shape.m) + d(p.rep.n, shape.n) + d(p.rep.k, shape.k)
        };
        self.programs
            .iter()
            .min_by(|a, b| dist(a).total_cmp(&dist(b)))
            .expect("at least one program is compiled")
    }
}

/// Tunes the best single-tile program for one representative shape by
/// measuring candidate tiles on the device (a condensed stand-in for
/// DietCode's auto-scheduling round).
fn tune_for(machine: &MachineModel, rep: GemmShape, quality: f64) -> TunedProgram {
    let mut best: Option<(f64, TunedProgram)> = None;
    for &um in &[16usize, 32, 64, 128, 256] {
        for &un in &[16usize, 32, 64, 128, 256] {
            for &uk in &[16usize, 32, 64] {
                let shape = TaskShape::gemm_tile_f16(um, un, uk).with_quality(quality);
                if !shape.fits(machine) {
                    continue;
                }
                // DietCode's auto-scheduler also tunes thread organization:
                // search the warp count per tile.
                let mut w = 1usize;
                while w <= machine.warp_cap_per_pe {
                    let spec = TaskSpec::new(shape, w, rep.k.div_ceil(uk));
                    // Analytic tuning proxy: waves x single-task duration.
                    let tasks = rep.m.div_ceil(um) * rep.n.div_ceil(un);
                    let waves = tasks.div_ceil(machine.num_pes) as f64;
                    let est = waves * pipelined_task_ns(machine, &spec);
                    let candidate = TunedProgram {
                        rep,
                        um,
                        un,
                        uk,
                        warps: w,
                    };
                    if best.as_ref().is_none_or(|(b, _)| est < *b) {
                        best = Some((est, candidate));
                    }
                    w *= 2;
                }
            }
        }
    }
    best.expect("some tile always fits").1
}

impl Backend for DietCode {
    fn name(&self) -> &str {
        "DietCode"
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn run(&self, operator: &Operator) -> Result<BackendRun, BackendError> {
        let view: GemmView = operator.gemm_view();
        self.ranges.check(view.shape)?;
        let p = self.dispatch(view.shape);
        let in_bytes = view.dtype.bytes();
        let shape = TaskShape::gemm_tile(p.um, p.un, p.uk, in_bytes, in_bytes, 4)
            .with_load_scale(view.load_scale)
            .with_quality(self.quality);
        let spec = TaskSpec::new(shape, p.warps, view.shape.k.div_ceil(p.uk));
        let count = view.shape.m.div_ceil(p.um) * view.shape.n.div_ceil(p.un);
        let report = simulate(
            &self.machine,
            &Launch::grid(spec, count),
            TimingMode::Evaluate,
        );
        Ok(BackendRun {
            report,
            // Nearest-representative dispatch over the pre-compiled program
            // table runs on every call (unlike MikPoly's cached programs).
            overhead_ns: 3_000.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> DietCode {
        DietCode::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(1, 4096))
    }

    #[test]
    fn in_range_shapes_run() {
        let d = backend();
        let run = d
            .run(&Operator::gemm(GemmShape::new(512, 512, 512)))
            .expect("run");
        assert!(run.report.time_ns > 0.0);
    }

    #[test]
    fn out_of_range_shapes_are_invalid_runs() {
        let d = backend();
        let err = d
            .run(&Operator::gemm(GemmShape::new(8192, 512, 512)))
            .expect_err("must fail");
        assert!(matches!(
            err,
            BackendError::OutOfRange {
                dimension: "M",
                value: 8192,
                ..
            }
        ));
    }

    #[test]
    fn dispatch_picks_nearby_representative() {
        let d = backend();
        let p = d.dispatch(GemmShape::new(1000, 1000, 1000));
        let close = |a: usize, b: usize| (a as f64 / b as f64).max(b as f64 / a as f64) <= 4.0;
        assert!(
            close(p.rep.m, 1000) && close(p.rep.n, 1000) && close(p.rep.k, 1000),
            "{p:?}"
        );
    }

    #[test]
    fn wider_ranges_mean_more_programs() {
        let narrow =
            DietCode::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(256, 1024));
        let wide = DietCode::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(1, 65536));
        assert!(wide.num_programs() > narrow.num_programs());
    }

    #[test]
    fn tuned_tiles_track_representative_size() {
        let m = MachineModel::a100_cuda_cores();
        let small = tune_for(&m, GemmShape::new(32, 32, 256), TVM_CODEGEN_QUALITY);
        let large = tune_for(&m, GemmShape::new(4096, 4096, 256), TVM_CODEGEN_QUALITY);
        assert!(small.um * small.un <= large.um * large.un);
    }
}
