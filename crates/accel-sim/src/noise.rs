//! Deterministic measurement noise.
//!
//! Real hardware measurements fluctuate run to run; the paper averages 20
//! runs after warm-up. To make the offline performance-model *fitting* a
//! genuine regression (instead of reading back the simulator's closed form),
//! the simulator perturbs durations in measurement mode with a deterministic
//! hash-based noise: the same (seed, task) pair always sees the same
//! perturbation, so every experiment is exactly reproducible.

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes an arbitrary list of integers into a uniform `f64` in `[0, 1)`.
pub fn hash_f64(seed: u64, words: &[u64]) -> f64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    // 53 mantissa bits -> uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic noise factor in `[1 - amplitude, 1 + amplitude]`.
///
/// `words` identifies the measurement (task dimensions, instance count, run
/// index, ...); identical inputs give identical noise.
pub fn unit_noise(seed: u64, words: &[u64], amplitude: f64) -> f64 {
    1.0 + (2.0 * hash_f64(seed, words) - 1.0) * amplitude
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_f64(7, &[1, 2, 3]), hash_f64(7, &[1, 2, 3]));
    }

    #[test]
    fn hash_is_sensitive_to_inputs() {
        assert_ne!(hash_f64(7, &[1, 2, 3]), hash_f64(7, &[1, 2, 4]));
        assert_ne!(hash_f64(7, &[1, 2, 3]), hash_f64(8, &[1, 2, 3]));
    }

    #[test]
    fn hash_in_unit_interval() {
        for i in 0..1000u64 {
            let v = hash_f64(42, &[i]);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn hash_is_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| hash_f64(1, &[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn noise_respects_amplitude() {
        for i in 0..1000u64 {
            let v = unit_noise(3, &[i], 0.02);
            assert!((0.98..=1.02).contains(&v));
        }
    }

    #[test]
    fn zero_amplitude_is_identity() {
        assert_eq!(unit_noise(3, &[9], 0.0), 1.0);
    }
}
