//! Event-driven execution of launches across PEs.
//!
//! Tasks are admitted to PEs as warp slots and `M_local` capacity permit,
//! mirroring the GPU's hardware block scheduler
//! ([`AllocationPolicy::DynamicHardware`]) or a compiler-provided static
//! placement ([`AllocationPolicy::StaticCompilerAssigned`], the NPU path).
//! Co-resident tasks on a PE occupy disjoint warp slots (compute throughput
//! is warp-partitioned, see [`crate::KernelTiming`]); if their aggregate
//! memory demand exceeds the PE's bandwidth share, all residents slow down
//! proportionally (the congestion factor).
//!
//! This reproduces the paper's wave behaviour: a grid of `g` tasks that each
//! occupy a full PE executes in `ceil(g / |P_multi|)` waves, and a nearly
//! empty tail wave shows up as a drop in `sm_efficiency` (Fig. 15, Table 9).

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::counters::{PeUtilization, SimReport};
use crate::machine::{AllocationPolicy, MachineModel};
use crate::task::Launch;
use crate::timing::{measure_pipelined_task, TimingMode};

/// Completion-time comparison tolerance (ns). Tasks whose remaining work
/// differs by less than this complete in the same event, which keeps the
/// event count proportional to the number of waves for homogeneous grids.
const EPS_NS: f64 = 1e-6;

/// One task's lifetime in a traced simulation: which PE ran it, when, and
/// how many warps it occupied — the raw material of the paper's Fig. 15(b)
/// warp-time rectangles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// PE the task ran on.
    pub pe: usize,
    /// Index of the task's group within the launch.
    pub group: usize,
    /// Admission time, ns.
    pub start_ns: f64,
    /// Completion time, ns.
    pub end_ns: f64,
    /// Warps occupied while resident.
    pub warps: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingTask {
    base_ns: f64,
    warps: usize,
    local_mem: usize,
    avg_bw: f64,
    group: usize,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    remaining_base_ns: f64,
    warps: usize,
    local_mem: usize,
    avg_bw: f64,
    group: usize,
    start_ns: f64,
}

#[derive(Debug, Default)]
struct PeState {
    residents: Vec<Resident>,
    used_warps: usize,
    used_mem: usize,
    bw_demand: f64,
    factor: f64,
    util: PeUtilization,
}

impl PeState {
    fn recompute_factor(&mut self, pe_bw: f64) {
        self.factor = (self.bw_demand / pe_bw).max(1.0);
    }

    fn fits(&self, machine: &MachineModel, t: &PendingTask) -> bool {
        self.used_warps + t.warps <= machine.warp_cap_per_pe
            && self.used_mem + t.local_mem <= machine.local_mem_bytes
    }

    fn admit(&mut self, t: &PendingTask, pe_bw: f64, now: f64) {
        self.residents.push(Resident {
            remaining_base_ns: t.base_ns,
            warps: t.warps,
            local_mem: t.local_mem,
            avg_bw: t.avg_bw,
            group: t.group,
            start_ns: now,
        });
        self.used_warps += t.warps;
        self.used_mem += t.local_mem;
        self.bw_demand += t.avg_bw;
        self.recompute_factor(pe_bw);
    }

    fn next_completion_ns(&self) -> Option<f64> {
        self.residents
            .iter()
            .map(|r| r.remaining_base_ns * self.factor)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Advances by `dt` ns; returns `true` if any resident finished.
    /// Completed tasks are appended to `trace` when tracing is on.
    fn advance(
        &mut self,
        dt: f64,
        pe_bw: f64,
        now: f64,
        pe_index: usize,
        trace: Option<&mut Vec<TraceEvent>>,
    ) -> bool {
        if self.residents.is_empty() {
            return false;
        }
        self.util.busy_ns += dt;
        self.util.warp_ns += dt * self.used_warps as f64;
        let progress = dt / self.factor;
        let mut finished = false;
        for r in &mut self.residents {
            r.remaining_base_ns -= progress;
        }
        let mut events = trace;
        self.residents.retain(|r| {
            if r.remaining_base_ns <= EPS_NS {
                self.used_warps -= r.warps;
                self.used_mem -= r.local_mem;
                self.bw_demand -= r.avg_bw;
                self.util.tasks += 1;
                if let Some(events) = events.as_deref_mut() {
                    events.push(TraceEvent {
                        pe: pe_index,
                        group: r.group,
                        start_ns: r.start_ns,
                        end_ns: now,
                        warps: r.warps,
                    });
                }
                finished = true;
                false
            } else {
                true
            }
        });
        if finished {
            self.recompute_factor(pe_bw);
        }
        finished
    }
}

/// Self-profile of one simulator run: event-loop counters plus real
/// wall-clock attribution per phase of the hot loop. Collected only by
/// [`simulate_profiled`] — the plain [`simulate`] path takes no clock
/// reads and pays nothing.
///
/// The per-phase times come from a single relayed lap timer (one
/// `Instant::now()` per phase boundary), so
/// [`SimProfile::attributed_ns`] accounts for the whole run by
/// construction; the only unattributed time is the clock reads
/// themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimProfile {
    /// Event-loop iterations, including the final empty pass that
    /// detects completion.
    pub iterations: u64,
    /// Tasks admitted to a PE (equals the grid size at completion).
    pub admissions: u64,
    /// Iterations in which some PE drained to idle — wave boundaries.
    pub wave_closes: u64,
    /// Flattening the launch and building the pending queues, ns.
    pub setup_ns: u64,
    /// Admitting pending tasks to PEs, ns.
    pub admission_ns: u64,
    /// Finding the earliest completion across PEs, ns.
    pub pick_ns: u64,
    /// Advancing PE residents and retiring completions, ns.
    pub advance_ns: u64,
    /// Aggregating utilization counters into the report, ns.
    pub finalize_ns: u64,
}

impl SimProfile {
    /// Total wall time attributed to a phase. Within clock-read noise of
    /// the run's true wall time (the lap timer is relayed, never reset).
    pub fn attributed_ns(&self) -> u64 {
        self.setup_ns + self.admission_ns + self.pick_ns + self.advance_ns + self.finalize_ns
    }
}

/// Relays the lap timer: charges the time since the last boundary to the
/// bucket `pick` selects. No-op (and no clock read) when not profiling.
fn lap(
    last: &mut Option<Instant>,
    profile: &mut Option<&mut SimProfile>,
    pick: fn(&mut SimProfile) -> &mut u64,
) {
    if let (Some(last), Some(p)) = (last.as_mut(), profile.as_deref_mut()) {
        let now = Instant::now();
        *pick(p) += now.duration_since(*last).as_nanos() as u64;
        *last = now;
    }
}

fn flatten(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Vec<(PendingTask, Option<usize>)> {
    let mut out = Vec::with_capacity(launch.grid_size());
    for (group_index, group) in launch.groups.iter().enumerate() {
        let spec = &group.spec;
        assert!(
            spec.warps <= machine.warp_cap_per_pe,
            "task needs {} warps but {} caps PEs at {}",
            spec.warps,
            machine.name,
            machine.warp_cap_per_pe
        );
        assert!(
            spec.shape.fits(machine),
            "task local-memory footprint {} B exceeds M_local = {} B on {}",
            spec.shape.local_mem_bytes(),
            machine.local_mem_bytes,
            machine.name
        );
        if let Some(assignment) = &group.assignment {
            assert_eq!(
                assignment.len(),
                group.count,
                "static assignment length must equal group count"
            );
        }
        let base = measure_pipelined_task(machine, spec, mode);
        let bytes = spec.total_bytes();
        for i in 0..group.count {
            // In Measure mode each task gets its own perturbation so the
            // schedule is not artificially lock-stepped.
            let base_ns = match mode {
                TimingMode::Evaluate => base,
                TimingMode::Measure { seed } => {
                    base * crate::noise::unit_noise(seed ^ 0x5151, &[i as u64], 0.01)
                }
            };
            let task = PendingTask {
                base_ns,
                warps: spec.warps,
                local_mem: spec.shape.local_mem_bytes(),
                avg_bw: bytes / base_ns,
                group: group_index,
            };
            let pe = group.assignment.as_ref().map(|a| {
                assert!(a[i] < machine.num_pes, "assignment targets PE out of range");
                a[i]
            });
            out.push((task, pe));
        }
    }
    out
}

/// Simulates one launch on the machine, returning timing and counters.
///
/// # Panics
///
/// Panics if a task exceeds the PE warp cap or `M_local`, if a static
/// assignment is malformed, or if the machine requires static placement but
/// a group has none.
pub fn simulate(machine: &MachineModel, launch: &Launch, mode: TimingMode) -> SimReport {
    simulate_impl(machine, launch, mode, None, None)
}

/// Like [`simulate`], additionally self-profiling the event loop: phase
/// wall-clock attribution and iteration/admission/wave counters. The
/// returned report is bit-identical to the unprofiled one (profiling
/// never touches the virtual timeline).
pub fn simulate_profiled(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, SimProfile) {
    let mut profile = SimProfile::default();
    let report = simulate_impl(machine, launch, mode, None, Some(&mut profile));
    (report, profile)
}

/// Like [`simulate`], additionally returning every task's `(pe, start,
/// end, warps)` lifetime — the data behind the paper's Fig. 15(b)
/// warp-over-time view.
pub fn simulate_traced(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, Vec<TraceEvent>) {
    let mut trace = Vec::with_capacity(launch.grid_size());
    let report = simulate_impl(machine, launch, mode, Some(&mut trace), None);
    trace.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.pe.cmp(&b.pe)));
    (report, trace)
}

fn simulate_impl(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
    mut trace: Option<&mut Vec<TraceEvent>>,
    mut profile: Option<&mut SimProfile>,
) -> SimReport {
    let mut last_lap = profile.as_ref().map(|_| Instant::now());
    let tasks = flatten(machine, launch, mode);
    let pe_bw = machine.pe_bandwidth_bytes_per_ns();
    let mut pes: Vec<PeState> = (0..machine.num_pes)
        .map(|_| PeState {
            factor: 1.0,
            ..PeState::default()
        })
        .collect();

    // Build pending queues: one FIFO for dynamic placement, per-PE FIFOs for
    // static placement.
    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    let mut global_queue: VecDeque<PendingTask> = VecDeque::new();
    let mut pe_queues: Vec<VecDeque<PendingTask>> = vec![VecDeque::new(); machine.num_pes];
    let total_tasks = tasks.len();
    for (task, pe) in tasks {
        match (static_alloc, pe) {
            (true, Some(p)) => pe_queues[p].push_back(task),
            (true, None) => panic!(
                "machine {} requires compiler-assigned placement but a task group has none",
                machine.name
            ),
            (false, _) => global_queue.push_back(task),
        }
    }

    let mut now = 0.0f64;
    let mut remaining = total_tasks;
    let mut running = 0usize;
    // Loop counters are plain locals (no clock reads, no atomics) and are
    // published into the profile only at finalize, so the unprofiled path
    // stays hot-loop clean.
    let mut iterations = 0u64;
    let mut admissions = 0u64;
    let mut wave_closes = 0u64;
    lap(&mut last_lap, &mut profile, |p| &mut p.setup_ns);

    loop {
        iterations += 1;
        // Admission phase.
        if static_alloc {
            for (pe, queue) in pes.iter_mut().zip(pe_queues.iter_mut()) {
                while let Some(head) = queue.front() {
                    if pe.fits(machine, head) {
                        let t = queue.pop_front().expect("front checked");
                        pe.admit(&t, pe_bw, now);
                        running += 1;
                        admissions += 1;
                    } else {
                        break;
                    }
                }
            }
        } else {
            while let Some(head) = global_queue.front() {
                // Pick the PE with the most free warp slots (ties: lowest
                // index), matching the hardware scheduler's load-levelling.
                let candidate = pes
                    .iter()
                    .enumerate()
                    .filter(|(_, pe)| pe.fits(machine, head))
                    .max_by_key(|(i, pe)| {
                        (machine.warp_cap_per_pe - pe.used_warps, usize::MAX - *i)
                    })
                    .map(|(i, _)| i);
                match candidate {
                    Some(i) => {
                        let t = global_queue.pop_front().expect("front checked");
                        pes[i].admit(&t, pe_bw, now);
                        running += 1;
                        admissions += 1;
                    }
                    None => break,
                }
            }
        }

        lap(&mut last_lap, &mut profile, |p| &mut p.admission_ns);

        if running == 0 {
            assert_eq!(remaining, 0, "deadlock: pending tasks fit on no PE");
            break;
        }

        // Find the earliest completion across PEs.
        let dt = pes
            .iter()
            .filter_map(PeState::next_completion_ns)
            .min_by(|a, b| a.total_cmp(b))
            .expect("running > 0 implies a completion exists");
        let dt = dt.max(EPS_NS);
        now += dt;
        lap(&mut last_lap, &mut profile, |p| &mut p.pick_ns);

        let mut wave_closed = false;
        for (pe_index, pe) in pes.iter_mut().enumerate() {
            let before = pe.residents.len();
            pe.advance(dt, pe_bw, now, pe_index, trace.as_deref_mut());
            let done = before - pe.residents.len();
            running -= done;
            remaining -= done;
            wave_closed |= done > 0 && pe.residents.is_empty();
        }
        wave_closes += u64::from(wave_closed);
        lap(&mut last_lap, &mut profile, |p| &mut p.advance_ns);
    }

    let device_ns = now;
    let time_ns = device_ns + machine.launch_overhead_ns;
    let busy: f64 = pes.iter().map(|p| p.util.busy_ns).sum();
    let warp_ns: f64 = pes.iter().map(|p| p.util.warp_ns).sum();
    let sm_efficiency = if device_ns > 0.0 {
        busy / (device_ns * machine.num_pes as f64)
    } else {
        0.0
    };
    let achieved_occupancy = if busy > 0.0 {
        warp_ns / (busy * machine.warp_cap_per_pe as f64)
    } else {
        0.0
    };

    let report = SimReport {
        time_ns,
        device_ns,
        grid_size: total_tasks,
        sm_efficiency,
        elapsed_cycles_sm: device_ns * machine.clock_ghz * machine.num_pes as f64,
        achieved_occupancy,
        total_flops: launch.total_flops(),
        per_pe: pes.into_iter().map(|p| p.util).collect(),
    };
    if let Some(p) = profile.as_deref_mut() {
        p.iterations = iterations;
        p.admissions = admissions;
        p.wave_closes = wave_closes;
    }
    lap(&mut last_lap, &mut profile, |p| &mut p.finalize_ns);
    report
}

/// Simulates a sequence of launches executed back to back (one operator
/// region sequence, or a whole model's operator list).
pub fn simulate_launches(
    machine: &MachineModel,
    launches: &[Launch],
    mode: TimingMode,
) -> SimReport {
    let mut acc = SimReport::empty(machine.num_pes);
    for launch in launches {
        acc = acc.chain(&simulate(machine, launch, mode));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskGroup, TaskShape, TaskSpec};
    use crate::timing::pipelined_task_ns;

    fn spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
        TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
    }

    #[test]
    fn single_task_matches_closed_form() {
        let m = MachineModel::a100();
        let s = spec(128, 128, 32, 8, 64);
        let report = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let expected = pipelined_task_ns(&m, &s) + m.launch_overhead_ns;
        assert!((report.time_ns - expected).abs() < 1.0, "{report:?}");
    }

    #[test]
    fn full_wave_runs_in_one_task_duration() {
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 64); // occupies a full PE
        let one = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let wave = simulate(&m, &Launch::grid(s, m.num_pes), TimingMode::Evaluate);
        assert!(
            wave.device_ns < one.device_ns * 1.2,
            "a full wave should take about one task duration: {} vs {}",
            wave.device_ns,
            one.device_ns
        );
        assert!(wave.sm_efficiency > 0.99);
    }

    #[test]
    fn tail_wave_halves_efficiency() {
        // 109 tasks on 108 PEs: the second wave runs a single task. This is
        // the paper's load-imbalance phenomenon (Fig. 15).
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 64);
        let full = simulate(&m, &Launch::grid(s, m.num_pes), TimingMode::Evaluate);
        let spill = simulate(&m, &Launch::grid(s, m.num_pes + 1), TimingMode::Evaluate);
        assert!(spill.device_ns > full.device_ns * 1.8);
        assert!(spill.sm_efficiency < 0.6);
    }

    #[test]
    fn half_warp_tasks_co_reside() {
        // 4-warp tasks on an 8-warp PE: two co-resident tasks per PE, so
        // 2 * num_pes tasks still finish in roughly one task duration.
        let m = MachineModel::a100();
        let s = spec(64, 64, 64, 4, 64);
        let one = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let two_waves_worth = simulate(&m, &Launch::grid(s, 2 * m.num_pes), TimingMode::Evaluate);
        assert!(
            two_waves_worth.device_ns < one.device_ns * 1.6,
            "{} vs {}",
            two_waves_worth.device_ns,
            one.device_ns
        );
    }

    #[test]
    fn mixed_groups_share_the_machine() {
        let m = MachineModel::a100();
        let a = TaskGroup::new(spec(256, 128, 32, 8, 64), 96);
        let b = TaskGroup::new(spec(64, 64, 64, 4, 32), 256);
        let report = simulate(&m, &Launch::from_groups(vec![a, b]), TimingMode::Evaluate);
        assert_eq!(report.grid_size, 352);
        assert!(report.time_ns > 0.0);
        assert!(report.sm_efficiency > 0.3);
    }

    #[test]
    fn static_assignment_respected_on_npu() {
        let m = MachineModel::ascend910a();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
        // All tasks forced onto PE 0: serial execution.
        let serial = Launch::from_groups(vec![TaskGroup::with_assignment(s, vec![0; 8])]);
        // Spread across 8 PEs: parallel execution.
        let spread = Launch::from_groups(vec![TaskGroup::with_assignment(s, (0..8).collect())]);
        let r_serial = simulate(&m, &serial, TimingMode::Evaluate);
        let r_spread = simulate(&m, &spread, TimingMode::Evaluate);
        assert!(r_serial.device_ns > 6.0 * r_spread.device_ns);
        assert_eq!(r_serial.per_pe[0].tasks, 8);
        assert_eq!(r_spread.per_pe[3].tasks, 1);
    }

    #[test]
    #[should_panic(expected = "requires compiler-assigned placement")]
    fn npu_rejects_unassigned_groups() {
        let m = MachineModel::ascend910a();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
        let _ = simulate(&m, &Launch::grid(s, 4), TimingMode::Evaluate);
    }

    #[test]
    #[should_panic(expected = "exceeds M_local")]
    fn oversized_task_rejected() {
        let m = MachineModel::a100();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(512, 512, 64), 8, 4);
        let _ = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
    }

    #[test]
    fn empty_launch_costs_only_launch_overhead() {
        let m = MachineModel::a100();
        let report = simulate(&m, &Launch::default(), TimingMode::Evaluate);
        assert_eq!(report.device_ns, 0.0);
        assert_eq!(report.time_ns, m.launch_overhead_ns);
        assert_eq!(report.grid_size, 0);
    }

    #[test]
    fn measure_mode_close_to_evaluate_mode() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 32), 200);
        let eval = simulate(&m, &launch, TimingMode::Evaluate);
        let meas = simulate(&m, &launch, TimingMode::Measure { seed: 3 });
        assert!((meas.device_ns / eval.device_ns - 1.0).abs() < 0.1);
    }

    #[test]
    fn large_grid_scales_linearly() {
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 16);
        let small = simulate(&m, &Launch::grid(s, 10 * m.num_pes), TimingMode::Evaluate);
        let large = simulate(&m, &Launch::grid(s, 20 * m.num_pes), TimingMode::Evaluate);
        let ratio = large.device_ns / small.device_ns;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn trace_covers_every_task_exactly_once() {
        let m = MachineModel::a100();
        let a = TaskGroup::new(spec(256, 128, 32, 8, 64), 96);
        let b = TaskGroup::new(spec(64, 64, 64, 4, 32), 64);
        let launch = Launch::from_groups(vec![a, b]);
        let (report, trace) = crate::scheduler::simulate_traced(&m, &launch, TimingMode::Evaluate);
        assert_eq!(trace.len(), 160);
        assert_eq!(trace.iter().filter(|e| e.group == 0).count(), 96);
        assert_eq!(trace.iter().filter(|e| e.group == 1).count(), 64);
        for e in &trace {
            assert!(e.pe < m.num_pes);
            assert!(e.end_ns > e.start_ns, "{e:?}");
            assert!(e.end_ns <= report.device_ns + 1e-6);
        }
        // The traced run must time identically to the untraced one.
        let plain = simulate(&m, &launch, TimingMode::Evaluate);
        assert!((plain.device_ns - report.device_ns).abs() < 1e-9);
    }

    #[test]
    fn trace_respects_warp_capacity_at_every_instant() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(64, 64, 64, 4, 16), 300);
        let (_, trace) = crate::scheduler::simulate_traced(&m, &launch, TimingMode::Evaluate);
        // Sample instants: at each event start, per-PE resident warps must
        // not exceed the cap.
        for probe in trace.iter().step_by(17) {
            let t = (probe.start_ns + probe.end_ns) / 2.0;
            let mut per_pe = vec![0usize; m.num_pes];
            for e in &trace {
                if e.start_ns <= t && t < e.end_ns {
                    per_pe[e.pe] += e.warps;
                }
            }
            assert!(per_pe.iter().all(|&w| w <= m.warp_cap_per_pe));
        }
    }

    #[test]
    fn profiled_run_matches_plain_and_attributes_time() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 16), 3 * m.num_pes + 1);
        let plain = simulate(&m, &launch, TimingMode::Evaluate);
        let wall = Instant::now();
        let (report, profile) = simulate_profiled(&m, &launch, TimingMode::Evaluate);
        let wall_ns = wall.elapsed().as_nanos() as u64;
        assert_eq!(plain, report, "profiling must not perturb the timeline");
        assert_eq!(profile.admissions, launch.grid_size() as u64);
        assert!(profile.iterations >= 4, "{profile:?}"); // >= one per wave
        assert!(
            (1..=profile.iterations).contains(&profile.wave_closes),
            "{profile:?}"
        );
        let attributed = profile.attributed_ns();
        assert!(attributed > 0);
        assert!(
            attributed <= wall_ns,
            "attribution cannot exceed the enclosing wall clock: {attributed} vs {wall_ns}"
        );
    }

    #[test]
    fn chained_launches_accumulate() {
        let m = MachineModel::a100();
        let l = Launch::grid(spec(128, 128, 32, 8, 16), 108);
        let one = simulate(&m, &l, TimingMode::Evaluate);
        let three = simulate_launches(&m, &[l.clone(), l.clone(), l], TimingMode::Evaluate);
        assert!((three.time_ns - 3.0 * one.time_ns).abs() < 1.0);
        assert_eq!(three.grid_size, 3 * one.grid_size);
    }
}
