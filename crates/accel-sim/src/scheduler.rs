//! Event-driven execution of launches across PEs.
//!
//! Tasks are admitted to PEs as warp slots and `M_local` capacity permit,
//! mirroring the GPU's hardware block scheduler
//! ([`AllocationPolicy::DynamicHardware`]) or a compiler-provided static
//! placement ([`AllocationPolicy::StaticCompilerAssigned`], the NPU path).
//! Co-resident tasks on a PE occupy disjoint warp slots (compute throughput
//! is warp-partitioned, see [`crate::KernelTiming`]); if their aggregate
//! memory demand exceeds the PE's bandwidth share, all residents slow down
//! proportionally (the congestion factor).
//!
//! This reproduces the paper's wave behaviour: a grid of `g` tasks that each
//! occupy a full PE executes in `ceil(g / |P_multi|)` waves, and a nearly
//! empty tail wave shows up as a drop in `sm_efficiency` (Fig. 15, Table 9).
//!
//! # The fast core and its oracle
//!
//! The loop here is the *event-driven fast core*: admission goes through
//! a free-warp bucket index with a homogeneous-batch fast path
//! ([`crate::admission`]), completion picking and advancing touch only
//! busy PEs via a bitset and a cached per-PE earliest resident
//! ([`crate::events`]), and per-group timing profiles are computed once
//! per launch instead of once per task. The original loop survives as
//! [`crate::reference::simulate_reference`] (under `cfg(test)` or the
//! `reference-sim` feature) and the differential-equivalence suite
//! asserts the two produce **bit-identical** reports and traces — the
//! fast core performs the same floating-point operations in the same
//! order, it just locates work with indexes instead of scans.

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::admission::{FreeWarpIndex, GroupRun, TaskStream};
use crate::counters::SimReport;
use crate::error::SimError;
use crate::events::{EventPe, PeSet, PendingTask, EPS_NS};
use crate::machine::{AllocationPolicy, MachineModel};
use crate::task::Launch;
use crate::timing::{measure_pipelined_task, TimingMode};

/// One task's lifetime in a traced simulation: which PE ran it, when, and
/// how many warps it occupied — the raw material of the paper's Fig. 15(b)
/// warp-time rectangles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// PE the task ran on.
    pub pe: usize,
    /// Index of the task's group within the launch.
    pub group: usize,
    /// Admission time, ns.
    pub start_ns: f64,
    /// Completion time, ns.
    pub end_ns: f64,
    /// Warps occupied while resident.
    pub warps: usize,
}

/// Self-profile of one simulator run: event-loop counters plus real
/// wall-clock attribution per phase of the hot loop. Collected only by
/// [`simulate_profiled`] — the plain [`simulate`] path takes no clock
/// reads and pays nothing.
///
/// The per-phase times come from a single relayed lap timer (one
/// `Instant::now()` per phase boundary), so
/// [`SimProfile::attributed_ns`] accounts for the whole run by
/// construction; the only unattributed time is the clock reads
/// themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimProfile {
    /// Event-loop iterations, including the final empty pass that
    /// detects completion.
    pub iterations: u64,
    /// Tasks admitted to a PE (equals the grid size at completion).
    pub admissions: u64,
    /// Iterations in which some PE drained to idle — wave boundaries.
    pub wave_closes: u64,
    /// Launch validation and per-group profile precomputation (timing
    /// model, footprints, static queues, admission index), ns. Unlike
    /// the pre-event-core loop this does *not* scale with the grid
    /// size on dynamic machines — tasks are materialized lazily during
    /// admission.
    pub setup_ns: u64,
    /// Admitting pending tasks to PEs, ns. In the event core this
    /// includes materializing each task from its group profile and
    /// maintaining the free-warp bucket index.
    pub admission_ns: u64,
    /// Finding the earliest completion, ns — a scan of the cached
    /// next-completion of each *busy* PE, not of every resident.
    pub pick_ns: u64,
    /// Advancing busy-PE residents and retiring completions (including
    /// busy-set and index maintenance), ns.
    pub advance_ns: u64,
    /// Aggregating utilization counters into the report, ns.
    pub finalize_ns: u64,
}

impl SimProfile {
    /// Total wall time attributed to a phase. Within clock-read noise of
    /// the run's true wall time (the lap timer is relayed, never reset).
    pub fn attributed_ns(&self) -> u64 {
        self.setup_ns + self.admission_ns + self.pick_ns + self.advance_ns + self.finalize_ns
    }
}

/// Relays the lap timer: charges the time since the last boundary to the
/// bucket `pick` selects. No-op (and no clock read) when not profiling.
pub(crate) fn lap(
    last: &mut Option<Instant>,
    profile: &mut Option<&mut SimProfile>,
    pick: fn(&mut SimProfile) -> &mut u64,
) {
    if let (Some(last), Some(p)) = (last.as_mut(), profile.as_deref_mut()) {
        let now = Instant::now();
        *pick(p) += now.duration_since(*last).as_nanos() as u64;
        *last = now;
    }
}

/// Validates the launch and computes one [`GroupRun`] per group —
/// timing model and footprint evaluated once per *group*, not per task.
/// Check order matches the reference flatten pass exactly (warp cap,
/// `M_local`, assignment length, assignment range; group by group) so
/// a launch with several defects reports the same one first.
fn build_group_runs(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Result<Vec<GroupRun>, SimError> {
    let mut runs = Vec::with_capacity(launch.groups.len());
    for (group_index, group) in launch.groups.iter().enumerate() {
        let spec = &group.spec;
        if spec.warps > machine.warp_cap_per_pe {
            return Err(SimError::WarpCapExceeded {
                warps: spec.warps,
                cap: machine.warp_cap_per_pe,
                machine: machine.name.clone(),
            });
        }
        if !spec.shape.fits(machine) {
            return Err(SimError::LocalMemExceeded {
                bytes: spec.shape.local_mem_bytes(),
                capacity: machine.local_mem_bytes,
                machine: machine.name.clone(),
            });
        }
        if let Some(assignment) = &group.assignment {
            if assignment.len() != group.count {
                return Err(SimError::AssignmentLengthMismatch {
                    len: assignment.len(),
                    count: group.count,
                });
            }
            if let Some(&pe) = assignment.iter().find(|&&pe| pe >= machine.num_pes) {
                return Err(SimError::AssignmentOutOfRange {
                    pe,
                    num_pes: machine.num_pes,
                });
            }
        }
        runs.push(GroupRun {
            base_ns: measure_pipelined_task(machine, spec, mode),
            bytes: spec.total_bytes(),
            warps: spec.warps,
            local_mem: spec.shape.local_mem_bytes(),
            count: group.count,
            group: group_index,
        });
    }
    Ok(runs)
}

/// Simulates one launch on the machine, returning timing and counters.
///
/// # Panics
///
/// Panics if a task exceeds the PE warp cap or `M_local`, if a static
/// assignment is malformed, or if the machine requires static placement but
/// a group has none — see [`try_simulate`] for the non-panicking form.
pub fn simulate(machine: &MachineModel, launch: &Launch, mode: TimingMode) -> SimReport {
    try_simulate(machine, launch, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`simulate`], but reports a malformed launch as a typed
/// [`SimError`] instead of panicking — the form serving workers use so
/// a bad launch cannot take a worker down outside its `catch_unwind`
/// boundary.
///
/// # Errors
///
/// Every [`SimError`] variant: warp-cap or `M_local` overflow, a
/// malformed or missing static assignment, or an admission deadlock.
pub fn try_simulate(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Result<SimReport, SimError> {
    simulate_impl(machine, launch, mode, None, None)
}

/// Like [`simulate`], additionally self-profiling the event loop: phase
/// wall-clock attribution and iteration/admission/wave counters. The
/// returned report is bit-identical to the unprofiled one (profiling
/// never touches the virtual timeline).
pub fn simulate_profiled(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, SimProfile) {
    let mut profile = SimProfile::default();
    let report = simulate_impl(machine, launch, mode, None, Some(&mut profile))
        .unwrap_or_else(|e| panic!("{e}"));
    (report, profile)
}

/// Like [`simulate`], additionally returning every task's `(pe, start,
/// end, warps)` lifetime — the data behind the paper's Fig. 15(b)
/// warp-over-time view.
pub fn simulate_traced(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, Vec<TraceEvent>) {
    try_simulate_traced(machine, launch, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_traced`].
///
/// # Errors
///
/// Exactly those of [`try_simulate`].
pub fn try_simulate_traced(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Result<(SimReport, Vec<TraceEvent>), SimError> {
    let mut trace = Vec::with_capacity(launch.grid_size());
    let report = simulate_impl(machine, launch, mode, Some(&mut trace), None)?;
    trace.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.pe.cmp(&b.pe)));
    Ok((report, trace))
}

fn simulate_impl(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
    mut trace: Option<&mut Vec<TraceEvent>>,
    mut profile: Option<&mut SimProfile>,
) -> Result<SimReport, SimError> {
    let mut last_lap = profile.as_ref().map(|_| Instant::now());
    let runs = build_group_runs(machine, launch, mode)?;
    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    let pe_bw = machine.pe_bandwidth_bytes_per_ns();
    let warp_cap = machine.warp_cap_per_pe;
    let mut pes: Vec<EventPe> = (0..machine.num_pes).map(|_| EventPe::idle()).collect();
    let mut busy = PeSet::new(machine.num_pes);
    let total_tasks = launch.grid_size();

    // Static placement: materialize per-PE FIFOs up front (the order a
    // compiler-assigned queue executes in is part of the contract).
    // Dynamic placement: tasks stay virtual in the group runs and are
    // materialized lazily at admission.
    let mut index = FreeWarpIndex::new(machine);
    let mut dirty = PeSet::new(machine.num_pes);
    let mut pe_queues: Vec<VecDeque<PendingTask>> = Vec::new();
    let mut stream = TaskStream::new(&runs, mode);
    if static_alloc {
        pe_queues = vec![VecDeque::new(); machine.num_pes];
        for (run, group) in runs.iter().zip(&launch.groups) {
            let Some(assignment) = &group.assignment else {
                if run.count == 0 {
                    continue;
                }
                return Err(SimError::MissingAssignment {
                    machine: machine.name.clone(),
                });
            };
            for (i, &pe) in assignment.iter().enumerate() {
                pe_queues[pe].push_back(run.task(i, mode));
            }
        }
        for (pe, queue) in pe_queues.iter().enumerate() {
            if !queue.is_empty() {
                dirty.insert(pe);
            }
        }
    }

    let mut now = 0.0f64;
    let mut remaining = total_tasks;
    let mut running = 0usize;
    // Loop counters are plain locals (no clock reads, no atomics) and are
    // published into the profile only at finalize, so the unprofiled path
    // stays hot-loop clean.
    let mut iterations = 0u64;
    let mut admissions = 0u64;
    let mut wave_closes = 0u64;
    lap(&mut last_lap, &mut profile, |p| &mut p.setup_ns);

    loop {
        iterations += 1;
        // Admission phase.
        if static_alloc {
            // Only PEs whose state changed since their last check (or
            // that were never checked) can newly admit their head task;
            // everything else would reproduce its previous veto.
            for wi in 0..dirty.word_count() {
                let mut bits = dirty.word(wi);
                while bits != 0 {
                    let pe_i = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    dirty.remove(pe_i);
                    let pe = &mut pes[pe_i];
                    while let Some(head) = pe_queues[pe_i].front() {
                        if pe.fits(machine, head) {
                            let t = pe_queues[pe_i].pop_front().expect("front checked");
                            pe.admit(&t, pe_bw, now);
                            busy.insert(pe_i);
                            running += 1;
                            admissions += 1;
                        } else {
                            break;
                        }
                    }
                }
            }
        } else {
            // Pick the PE with the most free warp slots (ties: lowest
            // index), matching the hardware scheduler's load-levelling —
            // located through the bucket index. Within one run of
            // identical-footprint tasks the bucket scan never restarts:
            // admissions only move PEs to lower buckets, and a PE that
            // failed the M_local veto for this footprint keeps failing it.
            'admit: while let Some((warps, local_mem)) = stream.head_footprint() {
                let mut bucket = index.cap;
                loop {
                    let mut wi = 0;
                    while wi < busy.word_count() {
                        let mut bits = index.bucket(bucket)[wi];
                        while bits != 0 {
                            let pe_i = wi * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            if !pes[pe_i].fits_mem(machine, local_mem) {
                                continue;
                            }
                            let t = stream.take();
                            pes[pe_i].admit(&t, pe_bw, now);
                            index.relocate(pe_i, bucket, warp_cap - pes[pe_i].used_warps);
                            busy.insert(pe_i);
                            running += 1;
                            admissions += 1;
                            match stream.head_footprint() {
                                None => break 'admit,
                                // Footprint changed (next group): restart
                                // the bucket scan from the top.
                                Some(fp) if fp != (warps, local_mem) => continue 'admit,
                                Some(_) => {}
                            }
                        }
                        wi += 1;
                    }
                    if bucket == warps {
                        // The head task fits no PE right now; admission
                        // stalls until a completion frees capacity.
                        break 'admit;
                    }
                    bucket -= 1;
                }
            }
        }

        lap(&mut last_lap, &mut profile, |p| &mut p.admission_ns);

        if running == 0 {
            if remaining != 0 {
                return Err(SimError::Deadlock { pending: remaining });
            }
            break;
        }

        // Find the earliest completion across busy PEs. Each PE's next
        // completion is cached (see `EventPe::next_completion_ns`), so
        // this is O(busy PEs), not O(residents).
        let mut dt = f64::INFINITY;
        busy.for_each(|pe_i| {
            let c = pes[pe_i].next_completion_ns();
            if c.total_cmp(&dt).is_lt() {
                dt = c;
            }
        });
        let dt = dt.max(EPS_NS);
        now += dt;
        lap(&mut last_lap, &mut profile, |p| &mut p.pick_ns);

        // Advance only busy PEs, in ascending index order (trace events
        // are pushed in the same order the reference's full sweep used).
        let mut wave_closed = false;
        for wi in 0..busy.word_count() {
            let mut bits = busy.word(wi);
            while bits != 0 {
                let pe_i = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let before = pes[pe_i].resident_count();
                let old_free = warp_cap - pes[pe_i].used_warps;
                let finished = pes[pe_i].advance(dt, pe_bw, now, pe_i, trace.as_deref_mut());
                if finished {
                    let done = before - pes[pe_i].resident_count();
                    running -= done;
                    remaining -= done;
                    if static_alloc {
                        dirty.insert(pe_i);
                    } else {
                        index.relocate(pe_i, old_free, warp_cap - pes[pe_i].used_warps);
                    }
                    if !pes[pe_i].is_busy() {
                        busy.remove(pe_i);
                        wave_closed = true;
                    }
                }
            }
        }
        wave_closes += u64::from(wave_closed);
        lap(&mut last_lap, &mut profile, |p| &mut p.advance_ns);
    }

    let device_ns = now;
    let time_ns = device_ns + machine.launch_overhead_ns;
    let busy_ns: f64 = pes.iter().map(|p| p.util.busy_ns).sum();
    let warp_ns: f64 = pes.iter().map(|p| p.util.warp_ns).sum();
    let sm_efficiency = if device_ns > 0.0 {
        busy_ns / (device_ns * machine.num_pes as f64)
    } else {
        0.0
    };
    let achieved_occupancy = if busy_ns > 0.0 {
        warp_ns / (busy_ns * machine.warp_cap_per_pe as f64)
    } else {
        0.0
    };

    let report = SimReport {
        time_ns,
        device_ns,
        grid_size: total_tasks,
        sm_efficiency,
        elapsed_cycles_sm: device_ns * machine.clock_ghz * machine.num_pes as f64,
        achieved_occupancy,
        total_flops: launch.total_flops(),
        per_pe: pes.into_iter().map(|p| p.util).collect(),
    };
    if let Some(p) = profile.as_deref_mut() {
        p.iterations = iterations;
        p.admissions = admissions;
        p.wave_closes = wave_closes;
    }
    lap(&mut last_lap, &mut profile, |p| &mut p.finalize_ns);
    Ok(report)
}

/// Simulates a sequence of launches executed back to back (one operator
/// region sequence, or a whole model's operator list).
///
/// # Panics
///
/// Panics on the same malformed launches as [`simulate`]; see
/// [`try_simulate_launches`].
pub fn simulate_launches(
    machine: &MachineModel,
    launches: &[Launch],
    mode: TimingMode,
) -> SimReport {
    try_simulate_launches(machine, launches, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_launches`].
///
/// # Errors
///
/// Exactly those of [`try_simulate`], from the first malformed launch.
pub fn try_simulate_launches(
    machine: &MachineModel,
    launches: &[Launch],
    mode: TimingMode,
) -> Result<SimReport, SimError> {
    let mut acc = SimReport::empty(machine.num_pes);
    for launch in launches {
        acc = acc.chain(&try_simulate(machine, launch, mode)?);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{simulate_reference, simulate_reference_profiled};
    use crate::task::{TaskGroup, TaskShape, TaskSpec};
    use crate::timing::pipelined_task_ns;

    fn spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
        TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
    }

    #[test]
    fn single_task_matches_closed_form() {
        let m = MachineModel::a100();
        let s = spec(128, 128, 32, 8, 64);
        let report = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let expected = pipelined_task_ns(&m, &s) + m.launch_overhead_ns;
        assert!((report.time_ns - expected).abs() < 1.0, "{report:?}");
    }

    #[test]
    fn full_wave_runs_in_one_task_duration() {
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 64); // occupies a full PE
        let one = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let wave = simulate(&m, &Launch::grid(s, m.num_pes), TimingMode::Evaluate);
        assert!(
            wave.device_ns < one.device_ns * 1.2,
            "a full wave should take about one task duration: {} vs {}",
            wave.device_ns,
            one.device_ns
        );
        assert!(wave.sm_efficiency > 0.99);
    }

    #[test]
    fn tail_wave_halves_efficiency() {
        // 109 tasks on 108 PEs: the second wave runs a single task. This is
        // the paper's load-imbalance phenomenon (Fig. 15).
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 64);
        let full = simulate(&m, &Launch::grid(s, m.num_pes), TimingMode::Evaluate);
        let spill = simulate(&m, &Launch::grid(s, m.num_pes + 1), TimingMode::Evaluate);
        assert!(spill.device_ns > full.device_ns * 1.8);
        assert!(spill.sm_efficiency < 0.6);
    }

    #[test]
    fn half_warp_tasks_co_reside() {
        // 4-warp tasks on an 8-warp PE: two co-resident tasks per PE, so
        // 2 * num_pes tasks still finish in roughly one task duration.
        let m = MachineModel::a100();
        let s = spec(64, 64, 64, 4, 64);
        let one = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
        let two_waves_worth = simulate(&m, &Launch::grid(s, 2 * m.num_pes), TimingMode::Evaluate);
        assert!(
            two_waves_worth.device_ns < one.device_ns * 1.6,
            "{} vs {}",
            two_waves_worth.device_ns,
            one.device_ns
        );
    }

    #[test]
    fn mixed_groups_share_the_machine() {
        let m = MachineModel::a100();
        let a = TaskGroup::new(spec(256, 128, 32, 8, 64), 96);
        let b = TaskGroup::new(spec(64, 64, 64, 4, 32), 256);
        let report = simulate(&m, &Launch::from_groups(vec![a, b]), TimingMode::Evaluate);
        assert_eq!(report.grid_size, 352);
        assert!(report.time_ns > 0.0);
        assert!(report.sm_efficiency > 0.3);
    }

    #[test]
    fn static_assignment_respected_on_npu() {
        let m = MachineModel::ascend910a();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
        // All tasks forced onto PE 0: serial execution.
        let serial = Launch::from_groups(vec![TaskGroup::with_assignment(s, vec![0; 8])]);
        // Spread across 8 PEs: parallel execution.
        let spread = Launch::from_groups(vec![TaskGroup::with_assignment(s, (0..8).collect())]);
        let r_serial = simulate(&m, &serial, TimingMode::Evaluate);
        let r_spread = simulate(&m, &spread, TimingMode::Evaluate);
        assert!(r_serial.device_ns > 6.0 * r_spread.device_ns);
        assert_eq!(r_serial.per_pe[0].tasks, 8);
        assert_eq!(r_spread.per_pe[3].tasks, 1);
    }

    #[test]
    #[should_panic(expected = "requires compiler-assigned placement")]
    fn npu_rejects_unassigned_groups() {
        let m = MachineModel::ascend910a();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
        let _ = simulate(&m, &Launch::grid(s, 4), TimingMode::Evaluate);
    }

    #[test]
    #[should_panic(expected = "exceeds M_local")]
    fn oversized_task_rejected() {
        let m = MachineModel::a100();
        let s = TaskSpec::new(TaskShape::gemm_tile_f16(512, 512, 64), 8, 4);
        let _ = simulate(&m, &Launch::grid(s, 1), TimingMode::Evaluate);
    }

    #[test]
    fn malformed_launches_are_typed_errors() {
        let gpu = MachineModel::a100();
        let npu = MachineModel::ascend910a();
        let small = TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16);
        let cases: Vec<(&MachineModel, Launch, SimError)> = vec![
            (
                &gpu,
                Launch::grid(
                    TaskSpec::new(TaskShape::gemm_tile_f16(512, 512, 64), 8, 4),
                    1,
                ),
                SimError::LocalMemExceeded {
                    bytes: TaskShape::gemm_tile_f16(512, 512, 64).local_mem_bytes(),
                    capacity: gpu.local_mem_bytes,
                    machine: gpu.name.clone(),
                },
            ),
            (
                &npu,
                Launch::grid(
                    TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 2, 16),
                    1,
                ),
                SimError::WarpCapExceeded {
                    warps: 2,
                    cap: npu.warp_cap_per_pe,
                    machine: npu.name.clone(),
                },
            ),
            (
                &npu,
                Launch::grid(small, 4),
                SimError::MissingAssignment {
                    machine: npu.name.clone(),
                },
            ),
            (
                &npu,
                Launch::from_groups(vec![TaskGroup {
                    spec: small,
                    count: 4,
                    assignment: Some(vec![0; 3]),
                }]),
                SimError::AssignmentLengthMismatch { len: 3, count: 4 },
            ),
            (
                &npu,
                Launch::from_groups(vec![TaskGroup::with_assignment(small, vec![99; 2])]),
                SimError::AssignmentOutOfRange {
                    pe: 99,
                    num_pes: npu.num_pes,
                },
            ),
        ];
        for (machine, launch, expected) in cases {
            match try_simulate(machine, &launch, TimingMode::Evaluate) {
                Err(got) => assert_eq!(got, expected, "{launch:?}"),
                Ok(r) => panic!("malformed launch simulated: {r:?}"),
            }
        }
    }

    #[test]
    fn empty_launch_costs_only_launch_overhead() {
        let m = MachineModel::a100();
        let report = simulate(&m, &Launch::default(), TimingMode::Evaluate);
        assert_eq!(report.device_ns, 0.0);
        assert_eq!(report.time_ns, m.launch_overhead_ns);
        assert_eq!(report.grid_size, 0);
    }

    #[test]
    fn measure_mode_close_to_evaluate_mode() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 32), 200);
        let eval = simulate(&m, &launch, TimingMode::Evaluate);
        let meas = simulate(&m, &launch, TimingMode::Measure { seed: 3 });
        assert!((meas.device_ns / eval.device_ns - 1.0).abs() < 0.1);
    }

    #[test]
    fn large_grid_scales_linearly() {
        let m = MachineModel::a100();
        let s = spec(256, 128, 32, 8, 16);
        let small = simulate(&m, &Launch::grid(s, 10 * m.num_pes), TimingMode::Evaluate);
        let large = simulate(&m, &Launch::grid(s, 20 * m.num_pes), TimingMode::Evaluate);
        let ratio = large.device_ns / small.device_ns;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn trace_covers_every_task_exactly_once() {
        let m = MachineModel::a100();
        let a = TaskGroup::new(spec(256, 128, 32, 8, 64), 96);
        let b = TaskGroup::new(spec(64, 64, 64, 4, 32), 64);
        let launch = Launch::from_groups(vec![a, b]);
        let (report, trace) = crate::scheduler::simulate_traced(&m, &launch, TimingMode::Evaluate);
        assert_eq!(trace.len(), 160);
        assert_eq!(trace.iter().filter(|e| e.group == 0).count(), 96);
        assert_eq!(trace.iter().filter(|e| e.group == 1).count(), 64);
        for e in &trace {
            assert!(e.pe < m.num_pes);
            assert!(e.end_ns > e.start_ns, "{e:?}");
            assert!(e.end_ns <= report.device_ns + 1e-6);
        }
        // The traced run must time identically to the untraced one.
        let plain = simulate(&m, &launch, TimingMode::Evaluate);
        assert!((plain.device_ns - report.device_ns).abs() < 1e-9);
    }

    #[test]
    fn trace_respects_warp_capacity_at_every_instant() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(64, 64, 64, 4, 16), 300);
        let (_, trace) = crate::scheduler::simulate_traced(&m, &launch, TimingMode::Evaluate);
        // Sample instants: at each event start, per-PE resident warps must
        // not exceed the cap.
        for probe in trace.iter().step_by(17) {
            let t = (probe.start_ns + probe.end_ns) / 2.0;
            let mut per_pe = vec![0usize; m.num_pes];
            for e in &trace {
                if e.start_ns <= t && t < e.end_ns {
                    per_pe[e.pe] += e.warps;
                }
            }
            assert!(per_pe.iter().all(|&w| w <= m.warp_cap_per_pe));
        }
    }

    #[test]
    fn profiled_run_matches_plain_and_attributes_time() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 16), 3 * m.num_pes + 1);
        let plain = simulate(&m, &launch, TimingMode::Evaluate);
        let wall = Instant::now();
        let (report, profile) = simulate_profiled(&m, &launch, TimingMode::Evaluate);
        let wall_ns = wall.elapsed().as_nanos() as u64;
        assert_eq!(plain, report, "profiling must not perturb the timeline");
        assert_eq!(profile.admissions, launch.grid_size() as u64);
        assert!(profile.iterations >= 4, "{profile:?}"); // >= one per wave
        assert!(
            (1..=profile.iterations).contains(&profile.wave_closes),
            "{profile:?}"
        );
        let attributed = profile.attributed_ns();
        assert!(attributed > 0);
        assert!(
            attributed <= wall_ns,
            "attribution cannot exceed the enclosing wall clock: {attributed} vs {wall_ns}"
        );
    }

    #[test]
    fn chained_launches_accumulate() {
        let m = MachineModel::a100();
        let l = Launch::grid(spec(128, 128, 32, 8, 16), 108);
        let one = simulate(&m, &l, TimingMode::Evaluate);
        let three = simulate_launches(&m, &[l.clone(), l.clone(), l], TimingMode::Evaluate);
        assert!((three.time_ns - 3.0 * one.time_ns).abs() < 1.0);
        assert_eq!(three.grid_size, 3 * one.grid_size);
    }

    /// The crate-local slice of the differential-equivalence suite: the
    /// workspace-level proptest suite is broader, but these pin the
    /// bit-identity contract where the fast core lives.
    #[test]
    fn fast_core_bit_identical_to_reference() {
        let gpu = MachineModel::a100();
        let npu = MachineModel::ascend910a();
        let launches: Vec<(&MachineModel, Launch)> = vec![
            // Homogeneous full-PE grid with a tail wave.
            (
                &gpu,
                Launch::grid(spec(256, 128, 32, 8, 64), 3 * gpu.num_pes + 1),
            ),
            // Deeply co-resident small tiles (bandwidth congestion).
            (
                &gpu,
                Launch::grid(spec(64, 64, 64, 4, 32), 2 * gpu.num_pes + 17),
            ),
            // Mixed groups: footprint changes mid-admission.
            (
                &gpu,
                Launch::from_groups(vec![
                    TaskGroup::new(spec(256, 128, 32, 8, 64), 96),
                    TaskGroup::new(spec(64, 64, 64, 4, 32), 256),
                    TaskGroup::new(spec(128, 64, 32, 2, 8), 33),
                    TaskGroup::new(spec(64, 64, 64, 4, 32), 0),
                ]),
            ),
            // Tiny launches (the oracle-enumeration shape).
            (&gpu, Launch::grid(spec(128, 128, 32, 8, 16), 1)),
            (&gpu, Launch::default()),
            // Static placement: skewed and round-robin queues.
            (
                &npu,
                Launch::from_groups(vec![
                    TaskGroup::with_assignment(
                        TaskSpec::new(TaskShape::gemm_tile_f16(128, 128, 64), 1, 16),
                        (0..64).map(|i| i % 7).collect(),
                    ),
                    TaskGroup::with_assignment(
                        TaskSpec::new(TaskShape::gemm_tile_f16(256, 128, 32), 1, 8),
                        (0..40).map(|i| 31 - (i % 32)).collect(),
                    ),
                ]),
            ),
        ];
        for (machine, launch) in &launches {
            for mode in [
                TimingMode::Evaluate,
                TimingMode::Measure { seed: 7 },
                TimingMode::Measure { seed: 0xDEAD },
            ] {
                let fast = try_simulate(machine, launch, mode).expect("valid launch");
                let slow = simulate_reference(machine, launch, mode);
                assert_eq!(fast, slow, "report diverged on {launch:?} {mode:?}");
                let (fast_t, fast_trace) =
                    try_simulate_traced(machine, launch, mode).expect("valid launch");
                let (slow_t, slow_trace) =
                    crate::reference::simulate_reference_traced(machine, launch, mode);
                assert_eq!(fast_t, slow_t);
                assert_eq!(
                    fast_trace, slow_trace,
                    "trace diverged on {launch:?} {mode:?}"
                );
                let (_, fast_p) = simulate_profiled(machine, launch, mode);
                let (_, slow_p) = simulate_reference_profiled(machine, launch, mode);
                assert_eq!(fast_p.iterations, slow_p.iterations);
                assert_eq!(fast_p.admissions, slow_p.admissions);
                assert_eq!(fast_p.wave_closes, slow_p.wave_closes);
            }
        }
    }

    #[test]
    fn fast_core_and_reference_deadlock_identically() {
        // A static queue whose second task never fits (first resident
        // pins M_local and the queue head needs more warps than remain)
        // cannot deadlock by construction on these machines; instead pin
        // the dynamic stall-until-completion path: a group whose tasks
        // each occupy the full warp cap admits exactly num_pes per wave.
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(256, 128, 32, 8, 64), m.num_pes * 2);
        let fast = try_simulate(&m, &launch, TimingMode::Evaluate).expect("valid");
        let slow = simulate_reference(&m, &launch, TimingMode::Evaluate);
        assert_eq!(fast, slow);
        assert!((fast.sm_efficiency - 1.0).abs() < 1e-9);
    }
}
