//! The frozen pre-event-core scheduler loop, kept as the differential
//! oracle for the fast core in [`crate::scheduler`].
//!
//! This module is a verbatim transplant of the original
//! `simulate_impl`: per-task `filter + max_by_key` admission scan,
//! per-iteration min-scan over every PE's residents, and an eager
//! per-task flatten pass. It is deliberately **not** maintained for
//! speed — its only job is to define ground truth. The equivalence
//! suite (`tests/simulator_equivalence.rs` at the workspace root, plus
//! in-crate tests here) asserts the fast core's `SimReport`s and trace
//! event sets are *bit-identical* to this loop's, so any semantic drift
//! in the fast core is caught as a float-level diff.
//!
//! Compiled only under `cfg(test)` or the `reference-sim` feature, so
//! production consumers pay nothing for it.

use std::collections::VecDeque;

use crate::counters::SimReport;
use crate::machine::{AllocationPolicy, MachineModel};
use crate::scheduler::{lap, SimProfile, TraceEvent};
use crate::task::Launch;
use crate::timing::{measure_pipelined_task, TimingMode};
use std::time::Instant;

const EPS_NS: f64 = 1e-6;

#[derive(Debug, Clone, Copy)]
struct PendingTask {
    base_ns: f64,
    warps: usize,
    local_mem: usize,
    avg_bw: f64,
    group: usize,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    remaining_base_ns: f64,
    warps: usize,
    local_mem: usize,
    avg_bw: f64,
    group: usize,
    start_ns: f64,
}

#[derive(Debug, Default)]
struct PeState {
    residents: Vec<Resident>,
    used_warps: usize,
    used_mem: usize,
    bw_demand: f64,
    factor: f64,
    util: crate::counters::PeUtilization,
}

impl PeState {
    fn recompute_factor(&mut self, pe_bw: f64) {
        self.factor = (self.bw_demand / pe_bw).max(1.0);
    }

    fn fits(&self, machine: &MachineModel, t: &PendingTask) -> bool {
        self.used_warps + t.warps <= machine.warp_cap_per_pe
            && self.used_mem + t.local_mem <= machine.local_mem_bytes
    }

    fn admit(&mut self, t: &PendingTask, pe_bw: f64, now: f64) {
        self.residents.push(Resident {
            remaining_base_ns: t.base_ns,
            warps: t.warps,
            local_mem: t.local_mem,
            avg_bw: t.avg_bw,
            group: t.group,
            start_ns: now,
        });
        self.used_warps += t.warps;
        self.used_mem += t.local_mem;
        self.bw_demand += t.avg_bw;
        self.recompute_factor(pe_bw);
    }

    fn next_completion_ns(&self) -> Option<f64> {
        self.residents
            .iter()
            .map(|r| r.remaining_base_ns * self.factor)
            .min_by(|a, b| a.total_cmp(b))
    }

    fn advance(
        &mut self,
        dt: f64,
        pe_bw: f64,
        now: f64,
        pe_index: usize,
        trace: Option<&mut Vec<TraceEvent>>,
    ) -> bool {
        if self.residents.is_empty() {
            return false;
        }
        self.util.busy_ns += dt;
        self.util.warp_ns += dt * self.used_warps as f64;
        let progress = dt / self.factor;
        let mut finished = false;
        for r in &mut self.residents {
            r.remaining_base_ns -= progress;
        }
        let mut events = trace;
        self.residents.retain(|r| {
            if r.remaining_base_ns <= EPS_NS {
                self.used_warps -= r.warps;
                self.used_mem -= r.local_mem;
                self.bw_demand -= r.avg_bw;
                self.util.tasks += 1;
                if let Some(events) = events.as_deref_mut() {
                    events.push(TraceEvent {
                        pe: pe_index,
                        group: r.group,
                        start_ns: r.start_ns,
                        end_ns: now,
                        warps: r.warps,
                    });
                }
                finished = true;
                false
            } else {
                true
            }
        });
        if finished {
            self.recompute_factor(pe_bw);
        }
        finished
    }
}

fn flatten(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Vec<(PendingTask, Option<usize>)> {
    let mut out = Vec::with_capacity(launch.grid_size());
    for (group_index, group) in launch.groups.iter().enumerate() {
        let spec = &group.spec;
        assert!(
            spec.warps <= machine.warp_cap_per_pe,
            "task needs {} warps but {} caps PEs at {}",
            spec.warps,
            machine.name,
            machine.warp_cap_per_pe
        );
        assert!(
            spec.shape.fits(machine),
            "task local-memory footprint {} B exceeds M_local = {} B on {}",
            spec.shape.local_mem_bytes(),
            machine.local_mem_bytes,
            machine.name
        );
        if let Some(assignment) = &group.assignment {
            assert_eq!(
                assignment.len(),
                group.count,
                "static assignment length must equal group count"
            );
        }
        let base = measure_pipelined_task(machine, spec, mode);
        let bytes = spec.total_bytes();
        for i in 0..group.count {
            let base_ns = match mode {
                TimingMode::Evaluate => base,
                TimingMode::Measure { seed } => {
                    base * crate::noise::unit_noise(seed ^ 0x5151, &[i as u64], 0.01)
                }
            };
            let task = PendingTask {
                base_ns,
                warps: spec.warps,
                local_mem: spec.shape.local_mem_bytes(),
                avg_bw: bytes / base_ns,
                group: group_index,
            };
            let pe = group.assignment.as_ref().map(|a| {
                assert!(a[i] < machine.num_pes, "assignment targets PE out of range");
                a[i]
            });
            out.push((task, pe));
        }
    }
    out
}

/// The original scheduler loop: simulates one launch and returns timing
/// and counters. Ground truth for the fast [`crate::simulate`].
///
/// # Panics
///
/// Panics on the same malformed launches as the original `simulate`
/// (warp cap, `M_local`, malformed or missing static assignment,
/// admission deadlock).
pub fn simulate_reference(machine: &MachineModel, launch: &Launch, mode: TimingMode) -> SimReport {
    reference_impl(machine, launch, mode, None, None)
}

/// [`simulate_reference`] with every task's trace event, sorted exactly
/// as [`crate::simulate_traced`] sorts its trace.
pub fn simulate_reference_traced(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, Vec<TraceEvent>) {
    let mut trace = Vec::with_capacity(launch.grid_size());
    let report = reference_impl(machine, launch, mode, Some(&mut trace), None);
    trace.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.pe.cmp(&b.pe)));
    (report, trace)
}

/// [`simulate_reference`] with the event-loop self-profile, for
/// counter-level (iterations/admissions/wave closes) comparisons and
/// for benchmarking the old loop against the fast core.
pub fn simulate_reference_profiled(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, SimProfile) {
    let mut profile = SimProfile::default();
    let report = reference_impl(machine, launch, mode, None, Some(&mut profile));
    (report, profile)
}

fn reference_impl(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
    mut trace: Option<&mut Vec<TraceEvent>>,
    mut profile: Option<&mut SimProfile>,
) -> SimReport {
    let mut last_lap = profile.as_ref().map(|_| Instant::now());
    let tasks = flatten(machine, launch, mode);
    let pe_bw = machine.pe_bandwidth_bytes_per_ns();
    let mut pes: Vec<PeState> = (0..machine.num_pes)
        .map(|_| PeState {
            factor: 1.0,
            ..PeState::default()
        })
        .collect();

    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    let mut global_queue: VecDeque<PendingTask> = VecDeque::new();
    let mut pe_queues: Vec<VecDeque<PendingTask>> = vec![VecDeque::new(); machine.num_pes];
    let total_tasks = tasks.len();
    for (task, pe) in tasks {
        match (static_alloc, pe) {
            (true, Some(p)) => pe_queues[p].push_back(task),
            (true, None) => panic!(
                "machine {} requires compiler-assigned placement but a task group has none",
                machine.name
            ),
            (false, _) => global_queue.push_back(task),
        }
    }

    let mut now = 0.0f64;
    let mut remaining = total_tasks;
    let mut running = 0usize;
    let mut iterations = 0u64;
    let mut admissions = 0u64;
    let mut wave_closes = 0u64;
    lap(&mut last_lap, &mut profile, |p| &mut p.setup_ns);

    loop {
        iterations += 1;
        if static_alloc {
            for (pe, queue) in pes.iter_mut().zip(pe_queues.iter_mut()) {
                while let Some(head) = queue.front() {
                    if pe.fits(machine, head) {
                        let t = queue.pop_front().expect("front checked");
                        pe.admit(&t, pe_bw, now);
                        running += 1;
                        admissions += 1;
                    } else {
                        break;
                    }
                }
            }
        } else {
            while let Some(head) = global_queue.front() {
                let candidate = pes
                    .iter()
                    .enumerate()
                    .filter(|(_, pe)| pe.fits(machine, head))
                    .max_by_key(|(i, pe)| {
                        (machine.warp_cap_per_pe - pe.used_warps, usize::MAX - *i)
                    })
                    .map(|(i, _)| i);
                match candidate {
                    Some(i) => {
                        let t = global_queue.pop_front().expect("front checked");
                        pes[i].admit(&t, pe_bw, now);
                        running += 1;
                        admissions += 1;
                    }
                    None => break,
                }
            }
        }

        lap(&mut last_lap, &mut profile, |p| &mut p.admission_ns);

        if running == 0 {
            assert_eq!(remaining, 0, "deadlock: pending tasks fit on no PE");
            break;
        }

        let dt = pes
            .iter()
            .filter_map(PeState::next_completion_ns)
            .min_by(|a, b| a.total_cmp(b))
            .expect("running > 0 implies a completion exists");
        let dt = dt.max(EPS_NS);
        now += dt;
        lap(&mut last_lap, &mut profile, |p| &mut p.pick_ns);

        let mut wave_closed = false;
        for (pe_index, pe) in pes.iter_mut().enumerate() {
            let before = pe.residents.len();
            pe.advance(dt, pe_bw, now, pe_index, trace.as_deref_mut());
            let done = before - pe.residents.len();
            running -= done;
            remaining -= done;
            wave_closed |= done > 0 && pe.residents.is_empty();
        }
        wave_closes += u64::from(wave_closed);
        lap(&mut last_lap, &mut profile, |p| &mut p.advance_ns);
    }

    let device_ns = now;
    let time_ns = device_ns + machine.launch_overhead_ns;
    let busy: f64 = pes.iter().map(|p| p.util.busy_ns).sum();
    let warp_ns: f64 = pes.iter().map(|p| p.util.warp_ns).sum();
    let sm_efficiency = if device_ns > 0.0 {
        busy / (device_ns * machine.num_pes as f64)
    } else {
        0.0
    };
    let achieved_occupancy = if busy > 0.0 {
        warp_ns / (busy * machine.warp_cap_per_pe as f64)
    } else {
        0.0
    };

    let report = SimReport {
        time_ns,
        device_ns,
        grid_size: total_tasks,
        sm_efficiency,
        elapsed_cycles_sm: device_ns * machine.clock_ghz * machine.num_pes as f64,
        achieved_occupancy,
        total_flops: launch.total_flops(),
        per_pe: pes.into_iter().map(|p| p.util).collect(),
    };
    if let Some(p) = profile.as_deref_mut() {
        p.iterations = iterations;
        p.admissions = admissions;
        p.wave_closes = wave_closes;
    }
    lap(&mut last_lap, &mut profile, |p| &mut p.finalize_ns);
    report
}
