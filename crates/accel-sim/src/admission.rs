//! Indexed task admission for the fast scheduler core.
//!
//! The reference loop re-ranks **every PE** per admitted task
//! (`filter + max_by_key` over free warp slots), which PR 7's
//! self-profiling measured at 85–92% of host time. The fast core
//! replaces the scan with a [`FreeWarpIndex`]: one bitset bucket per
//! exact free-warp count. Admission walks buckets from most-free
//! downward and takes the lowest set bit that passes the `M_local`
//! check — precisely the reference's argmax (most free warps, ties to
//! the lowest PE index), located instead of recomputed.
//!
//! Two further properties make a batch fast path sound for homogeneous
//! runs of tasks (the common case — launches are mostly grids of one
//! task shape):
//!
//! * admissions only *decrease* free warps, so while a run of identical
//!   tasks is being admitted no PE can enter a bucket above the one
//!   currently being drained — the scan never needs to restart upward
//!   until the task footprint changes;
//! * a PE that failed the `M_local` veto keeps failing it for the same
//!   footprint, so skipped bits stay skipped.
//!
//! The pending launch itself is a [`TaskStream`]: per-*group* timing
//! profiles are precomputed once (`measure_pipelined_task` per group,
//! not per task) and individual tasks are materialized lazily at
//! admission time, eliminating the reference's per-task flatten pass.

use crate::events::PendingTask;
use crate::machine::MachineModel;
use crate::timing::TimingMode;

/// One task group's precomputed launch profile: everything needed to
/// materialize any of its tasks in O(1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupRun {
    /// Noise-free pipelined-task duration, ns.
    pub base_ns: f64,
    /// Bytes moved by one task (feeds the bandwidth demand).
    pub bytes: f64,
    /// Warp slots per task.
    pub warps: usize,
    /// `M_local` footprint per task, bytes.
    pub local_mem: usize,
    /// Tasks in the group.
    pub count: usize,
    /// Index of the group within the launch.
    pub group: usize,
}

impl GroupRun {
    /// Materializes task `i` of this group — the same arithmetic, in
    /// the same order, as the reference flatten pass: Measure mode
    /// perturbs each task independently so the schedule is not
    /// artificially lock-stepped.
    pub fn task(&self, i: usize, mode: TimingMode) -> PendingTask {
        let base_ns = match mode {
            TimingMode::Evaluate => self.base_ns,
            TimingMode::Measure { seed } => {
                self.base_ns * crate::noise::unit_noise(seed ^ 0x5151, &[i as u64], 0.01)
            }
        };
        PendingTask {
            base_ns,
            warps: self.warps,
            local_mem: self.local_mem,
            avg_bw: self.bytes / base_ns,
            group: self.group,
        }
    }
}

/// A lazy cursor over the launch's pending tasks in group order.
#[derive(Debug)]
pub(crate) struct TaskStream<'a> {
    runs: &'a [GroupRun],
    run_idx: usize,
    /// Tasks already taken from the current run.
    offset: usize,
    mode: TimingMode,
}

impl<'a> TaskStream<'a> {
    /// A stream over `runs` in order, skipping empty groups.
    pub fn new(runs: &'a [GroupRun], mode: TimingMode) -> Self {
        let mut s = TaskStream {
            runs,
            run_idx: 0,
            offset: 0,
            mode,
        };
        s.skip_exhausted();
        s
    }

    fn skip_exhausted(&mut self) {
        while self.run_idx < self.runs.len() && self.offset >= self.runs[self.run_idx].count {
            self.run_idx += 1;
            self.offset = 0;
        }
    }

    /// Footprint `(warps, local_mem)` of the head task, or `None` when
    /// the stream is exhausted. Placement depends only on this pair —
    /// even in Measure mode the per-task noise perturbs durations, not
    /// footprints — which is what makes batch admission per footprint
    /// sound.
    pub fn head_footprint(&self) -> Option<(usize, usize)> {
        self.runs.get(self.run_idx).map(|r| (r.warps, r.local_mem))
    }

    /// Materializes and consumes the head task.
    pub fn take(&mut self) -> PendingTask {
        let run = &self.runs[self.run_idx];
        let t = run.task(self.offset, self.mode);
        self.offset += 1;
        self.skip_exhausted();
        t
    }
}

/// PEs bucketed by their exact count of free warp slots.
///
/// `bucket[f]` holds a bitset of the PEs with exactly `f` free slots;
/// buckets live in one flat word array (one allocation). PEs move
/// between buckets on admission and retirement via [`Self::relocate`].
#[derive(Debug)]
pub(crate) struct FreeWarpIndex {
    words: Vec<u64>,
    words_per_bucket: usize,
    /// The machine's warp cap (highest bucket index).
    pub cap: usize,
}

impl FreeWarpIndex {
    /// All `num_pes` PEs start fully free, in bucket `cap`.
    pub fn new(machine: &MachineModel) -> Self {
        let cap = machine.warp_cap_per_pe;
        let words_per_bucket = machine.num_pes.div_ceil(64);
        let mut words = vec![0u64; (cap + 1) * words_per_bucket];
        let full = cap * words_per_bucket;
        for pe in 0..machine.num_pes {
            words[full + pe / 64] |= 1 << (pe % 64);
        }
        FreeWarpIndex {
            words,
            words_per_bucket,
            cap,
        }
    }

    /// Moves `pe` from bucket `old_free` to bucket `new_free`.
    pub fn relocate(&mut self, pe: usize, old_free: usize, new_free: usize) {
        if old_free == new_free {
            return;
        }
        let (wi, bit) = (pe / 64, 1u64 << (pe % 64));
        self.words[old_free * self.words_per_bucket + wi] &= !bit;
        self.words[new_free * self.words_per_bucket + wi] |= bit;
    }

    /// The bitset words of bucket `free` (ascending PE order within).
    pub fn bucket(&self, free: usize) -> &[u64] {
        let start = free * self.words_per_bucket;
        &self.words[start..start + self.words_per_bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn ones(bucket: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &w) in bucket.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                out.push(wi * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out
    }

    #[test]
    fn index_starts_full_and_relocates() {
        let m = MachineModel::a100();
        let mut idx = FreeWarpIndex::new(&m);
        assert_eq!(ones(idx.bucket(m.warp_cap_per_pe)).len(), m.num_pes);
        idx.relocate(107, m.warp_cap_per_pe, 4);
        assert_eq!(ones(idx.bucket(4)), vec![107]);
        assert_eq!(ones(idx.bucket(m.warp_cap_per_pe)).len(), m.num_pes - 1);
        // No-op relocation leaves the index untouched.
        idx.relocate(107, 4, 4);
        assert_eq!(ones(idx.bucket(4)), vec![107]);
    }

    #[test]
    fn stream_materializes_tasks_in_group_order() {
        let runs = vec![
            GroupRun {
                base_ns: 100.0,
                bytes: 4096.0,
                warps: 8,
                local_mem: 1024,
                count: 2,
                group: 0,
            },
            GroupRun {
                base_ns: 50.0,
                bytes: 2048.0,
                warps: 4,
                local_mem: 512,
                count: 0, // empty groups are skipped
                group: 1,
            },
            GroupRun {
                base_ns: 25.0,
                bytes: 1024.0,
                warps: 2,
                local_mem: 256,
                count: 1,
                group: 2,
            },
        ];
        let mut s = TaskStream::new(&runs, TimingMode::Evaluate);
        assert_eq!(s.head_footprint(), Some((8, 1024)));
        assert_eq!(s.take().group, 0);
        assert_eq!(s.take().group, 0);
        assert_eq!(s.head_footprint(), Some((2, 256)));
        assert_eq!(s.take().group, 2);
        assert_eq!(s.head_footprint(), None);
    }

    #[test]
    fn measure_mode_noise_matches_reference_keying() {
        let run = GroupRun {
            base_ns: 100.0,
            bytes: 4096.0,
            warps: 8,
            local_mem: 1024,
            count: 4,
            group: 0,
        };
        let seed = 77;
        for i in 0..4usize {
            let t = run.task(i, TimingMode::Measure { seed });
            let expected = run.base_ns * crate::noise::unit_noise(seed ^ 0x5151, &[i as u64], 0.01);
            assert_eq!(t.base_ns, expected);
            assert_eq!(t.avg_bw, run.bytes / expected);
        }
    }
}
