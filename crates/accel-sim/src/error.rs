//! Typed simulation errors.
//!
//! The scheduler used to enforce launch well-formedness with `assert!`
//! and `panic!`, which meant a malformed launch reaching a serving
//! worker outside its `catch_unwind` boundary could take the worker
//! down. [`crate::try_simulate`] reports these as values instead; the
//! infallible [`crate::simulate`] wrapper preserves the historical
//! panic contract (and panic messages) for callers that treat a
//! malformed launch as a logic bug.

/// Why a launch could not be simulated.
///
/// Display strings deliberately match the panic messages the scheduler
/// raised before these were typed, so `#[should_panic(expected = ...)]`
/// pins and log scrapers keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task group requests more warps than one PE offers.
    WarpCapExceeded {
        /// Warps the task needs.
        warps: usize,
        /// The machine's per-PE warp cap.
        cap: usize,
        /// Machine name.
        machine: String,
    },
    /// A task's local-memory footprint exceeds `M_local`.
    LocalMemExceeded {
        /// The task's footprint in bytes.
        bytes: usize,
        /// `M_local` capacity in bytes.
        capacity: usize,
        /// Machine name.
        machine: String,
    },
    /// A static assignment's length disagrees with its group's count.
    AssignmentLengthMismatch {
        /// Assignment entries provided.
        len: usize,
        /// Tasks in the group.
        count: usize,
    },
    /// A static assignment names a PE the machine does not have.
    AssignmentOutOfRange {
        /// The offending PE index.
        pe: usize,
        /// PEs on the machine.
        num_pes: usize,
    },
    /// The machine requires compiler-assigned placement but a non-empty
    /// group carries none.
    MissingAssignment {
        /// Machine name.
        machine: String,
    },
    /// No pending task fits on any PE while work remains — the launch
    /// can never finish.
    Deadlock {
        /// Tasks still pending when progress stopped.
        pending: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WarpCapExceeded {
                warps,
                cap,
                machine,
            } => {
                write!(
                    f,
                    "task needs {warps} warps but {machine} caps PEs at {cap}"
                )
            }
            SimError::LocalMemExceeded {
                bytes,
                capacity,
                machine,
            } => write!(
                f,
                "task local-memory footprint {bytes} B exceeds M_local = {capacity} B on {machine}"
            ),
            SimError::AssignmentLengthMismatch { len, count } => write!(
                f,
                "static assignment length must equal group count ({len} entries for {count} tasks)"
            ),
            SimError::AssignmentOutOfRange { pe, num_pes } => write!(
                f,
                "assignment targets PE out of range (PE {pe} on a {num_pes}-PE machine)"
            ),
            SimError::MissingAssignment { machine } => write!(
                f,
                "machine {machine} requires compiler-assigned placement but a task group has none"
            ),
            SimError::Deadlock { pending } => {
                write!(
                    f,
                    "deadlock: pending tasks fit on no PE ({pending} pending)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_panic_messages() {
        // The exact substrings external `#[should_panic]` pins rely on.
        let cases: Vec<(SimError, &str)> = vec![
            (
                SimError::WarpCapExceeded {
                    warps: 9,
                    cap: 8,
                    machine: "a100".into(),
                },
                "task needs 9 warps but a100 caps PEs at 8",
            ),
            (
                SimError::LocalMemExceeded {
                    bytes: 300_000,
                    capacity: 196_608,
                    machine: "a100".into(),
                },
                "exceeds M_local",
            ),
            (
                SimError::AssignmentLengthMismatch { len: 3, count: 4 },
                "static assignment length must equal group count",
            ),
            (
                SimError::AssignmentOutOfRange {
                    pe: 40,
                    num_pes: 32,
                },
                "assignment targets PE out of range",
            ),
            (
                SimError::MissingAssignment {
                    machine: "ascend910a".into(),
                },
                "requires compiler-assigned placement",
            ),
            (
                SimError::Deadlock { pending: 7 },
                "deadlock: pending tasks fit on no PE",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
            let _: &dyn std::error::Error = &err;
        }
    }
}
