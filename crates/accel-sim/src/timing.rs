//! The machine's ground-truth timing model.
//!
//! Everything here is the simulator's *hardware behaviour*: how fast a given
//! micro-kernel tile actually runs on a PE. The MikPoly compiler never reads
//! these formulas — it only observes durations returned by
//! [`measure_pipelined_task`] (with measurement noise), mirroring how the
//! real system measures kernels on a real device and fits a piecewise-linear
//! performance model to the observations.
//!
//! Per-instance cost follows a pipelined roofline:
//!
//! * compute time = `flops / (pe_peak * warp_share * efficiency)`, where the
//!   efficiency term charges for MMA fragment padding, per-warp instruction
//!   level parallelism, and reduction-depth pipelining;
//! * load time = `bytes / pe_bandwidth_share`;
//! * with the load/compute/store pipeline of Section 3.3, the steady-state
//!   cost of one instance is `max(compute, load)`, plus a fill bubble and the
//!   final write-back.

use serde::{Deserialize, Serialize};

use crate::machine::MachineModel;
use crate::noise::unit_noise;
use crate::task::TaskSpec;

/// Whether durations include measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingMode {
    /// Noise-free ground truth; used for all reported experiment results.
    Evaluate,
    /// Deterministic ±2% noise keyed by the given seed; used when the
    /// offline stage "measures" kernels to fit performance models.
    Measure {
        /// Noise seed.
        seed: u64,
    },
}

impl TimingMode {
    fn noise(&self, words: &[u64]) -> f64 {
        match *self {
            TimingMode::Evaluate => 1.0,
            TimingMode::Measure { seed } => unit_noise(seed, words, 0.02),
        }
    }
}

/// Fraction of a PE's per-warp peak a tile sustains.
///
/// Three multiplicative factors below the machine's
/// [`base_efficiency`](MachineModel::base_efficiency):
///
/// 1. **MMA alignment** — tiles that are not multiples of the native MMA
///    fragment execute padded fragments;
/// 2. **per-warp ILP** — each warp needs several independent output
///    fragments in flight to cover the MMA pipeline latency;
/// 3. **reduction depth** — a deeper `uK` amortizes the accumulator
///    load/store and loop overhead across more MMAs.
pub fn compute_efficiency(
    machine: &MachineModel,
    um: usize,
    un: usize,
    uk: usize,
    warps: usize,
) -> f64 {
    let mma = machine.mma;
    let pad = |x: usize, q: usize| -> f64 {
        let padded = x.div_ceil(q) * q;
        x as f64 / padded as f64
    };
    let align = pad(um, mma.m) * pad(un, mma.n) * pad(uk, mma.k);

    let frags_per_warp = (um * un) as f64 / (warps as f64 * mma.area() as f64);
    let ilp = frags_per_warp / (frags_per_warp + 4.0);

    let depth = uk as f64 / mma.k as f64;
    let depth_eff = depth / (depth + 0.5);

    machine.base_efficiency * align * ilp * depth_eff
}

/// Ground-truth per-task rates on a given machine: how fast one resident
/// task progresses through its compute and memory work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Compute throughput available to the task, FLOPs/ns.
    pub compute_flops_per_ns: f64,
    /// Memory bandwidth available to the task when alone on its PE,
    /// bytes/ns.
    pub mem_bytes_per_ns: f64,
    /// Steady-state duration of one micro-kernel instance, ns.
    pub instance_ns: f64,
    /// Pipeline fill / drain plus fixed per-task overhead, ns.
    pub overhead_ns: f64,
}

impl KernelTiming {
    /// Derives the ground-truth rates for `spec` on `machine`.
    ///
    /// A task occupying `w` warps receives `min(w / warp_cap, 1)` of the
    /// PE's matrix-unit throughput: peak is only reached at full warp
    /// residency, so low-warp kernels lean on co-residency (occupancy) for
    /// whole-PE utilization, exactly the effect in the paper's Fig. 15.
    pub fn derive(machine: &MachineModel, spec: &TaskSpec) -> Self {
        let shape = &spec.shape;
        let warp_share = (spec.warps as f64 / machine.warp_cap_per_pe as f64).min(1.0);
        let eff =
            compute_efficiency(machine, shape.um, shape.un, shape.uk, spec.warps) * shape.quality;
        let compute_flops_per_ns = machine.pe_peak_flops() / 1e9 * warp_share * eff;
        let mem_bytes_per_ns = machine.pe_bandwidth_bytes_per_ns();

        let compute_ns = shape.flops_per_instance() / compute_flops_per_ns;
        let load_ns = shape.load_bytes_per_instance() / mem_bytes_per_ns;
        let instance_ns = compute_ns.max(load_ns);
        let store_ns = shape.store_bytes() / mem_bytes_per_ns;
        // Fill bubble: the first load and the first compute cannot overlap
        // anything; the store drains after the last instance.
        let overhead_ns = compute_ns + load_ns + store_ns + machine.task_overhead_ns;

        Self {
            compute_flops_per_ns,
            mem_bytes_per_ns,
            instance_ns,
            overhead_ns,
        }
    }

    /// Duration of the whole pipelined task when it runs alone on a PE.
    pub fn task_ns(&self, instances: usize) -> f64 {
        self.overhead_ns + self.instance_ns * instances as f64
    }
}

/// Ground-truth duration (ns) of one pipelined task running alone on one PE.
pub fn pipelined_task_ns(machine: &MachineModel, spec: &TaskSpec) -> f64 {
    KernelTiming::derive(machine, spec).task_ns(spec.instances)
}

/// "Measures" one pipelined task on a single PE, as the offline stage does
/// when learning `g_predict` (Section 3.3: "running K̃ with t from 1 to
/// n_pred on a single PE ... to learn its coefficients").
///
/// In [`TimingMode::Measure`] the result carries deterministic ±2% noise
/// keyed by the tile, warp count and instance count, so repeated experiments
/// are reproducible while model fitting still sees realistic scatter.
pub fn measure_pipelined_task(machine: &MachineModel, spec: &TaskSpec, mode: TimingMode) -> f64 {
    let truth = pipelined_task_ns(machine, spec);
    let words = [
        spec.shape.um as u64,
        spec.shape.un as u64,
        spec.shape.uk as u64,
        spec.warps as u64,
        spec.instances as u64,
    ];
    truth * mode.noise(&words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskShape;

    fn a100_spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
        TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
    }

    #[test]
    fn efficiency_in_unit_interval() {
        let m = MachineModel::a100();
        for &(um, un, uk, w) in &[
            (16, 16, 16, 1),
            (256, 128, 32, 8),
            (64, 64, 64, 4),
            (48, 80, 16, 2),
        ] {
            let e = compute_efficiency(&m, um, un, uk, w);
            assert!(e > 0.0 && e <= 1.0, "eff({um},{un},{uk},{w}) = {e}");
        }
    }

    #[test]
    fn misaligned_tiles_pay_padding() {
        let m = MachineModel::a100();
        let aligned = compute_efficiency(&m, 64, 64, 32, 4);
        let misaligned = compute_efficiency(&m, 60, 60, 30, 4);
        assert!(misaligned < aligned);
    }

    #[test]
    fn larger_tiles_have_better_per_warp_ilp() {
        let m = MachineModel::a100();
        let small = compute_efficiency(&m, 32, 32, 32, 4);
        let large = compute_efficiency(&m, 128, 128, 32, 4);
        assert!(large > small);
    }

    #[test]
    fn deeper_reduction_amortizes_overhead() {
        let m = MachineModel::a100();
        let shallow = compute_efficiency(&m, 64, 64, 16, 4);
        let deep = compute_efficiency(&m, 64, 64, 128, 4);
        assert!(deep > shallow);
    }

    #[test]
    fn task_duration_is_affine_in_instances() {
        let m = MachineModel::a100();
        let d1 = pipelined_task_ns(&m, &a100_spec(128, 128, 32, 8, 10));
        let d2 = pipelined_task_ns(&m, &a100_spec(128, 128, 32, 8, 20));
        let d3 = pipelined_task_ns(&m, &a100_spec(128, 128, 32, 8, 30));
        assert!((d3 - d2 - (d2 - d1)).abs() < 1e-6);
        assert!(d2 > d1);
    }

    #[test]
    fn case_study_kernel_a_magnitude_matches_paper() {
        // GEMM-A on (3072, 1024, 4096): 96 tasks of 128 instances each on
        // 108 SMs -> one wave; the paper reports ~0.11 ms. Our single-task
        // duration should be in the same order (tens of microseconds to
        // ~0.2 ms).
        let m = MachineModel::a100();
        let task = a100_spec(256, 128, 32, 8, 4096 / 32);
        let ns = pipelined_task_ns(&m, &task);
        assert!(
            (20_000.0..400_000.0).contains(&ns),
            "kernel-A pipelined task = {ns} ns"
        );
    }

    #[test]
    fn full_warp_tasks_get_full_pe() {
        let m = MachineModel::a100();
        let full = KernelTiming::derive(&m, &a100_spec(256, 128, 32, 8, 1));
        let half = KernelTiming::derive(&m, &a100_spec(256, 128, 32, 4, 1));
        assert!(full.compute_flops_per_ns > half.compute_flops_per_ns);
    }

    #[test]
    fn measurement_noise_is_small_and_deterministic() {
        let m = MachineModel::a100();
        let spec = a100_spec(128, 64, 32, 4, 64);
        let truth = pipelined_task_ns(&m, &spec);
        let mode = TimingMode::Measure { seed: 11 };
        let a = measure_pipelined_task(&m, &spec, mode);
        let b = measure_pipelined_task(&m, &spec, mode);
        assert_eq!(a, b);
        assert!((a / truth - 1.0).abs() <= 0.02 + 1e-12);
        assert_eq!(
            measure_pipelined_task(&m, &spec, TimingMode::Evaluate),
            truth
        );
    }

    #[test]
    fn h100_outruns_a100_on_the_same_task() {
        let a = MachineModel::a100();
        let h = MachineModel::h100();
        let spec = a100_spec(128, 128, 64, 8, 64);
        assert!(pipelined_task_ns(&h, &spec) < pipelined_task_ns(&a, &spec) * 0.7);
    }

    #[test]
    fn quality_scales_compute_bound_tasks() {
        let m = MachineModel::a100();
        // A compute-bound tile: quality should translate ~linearly into
        // steady-state instance time.
        let base = TaskShape::gemm_tile_f16(128, 128, 64);
        let boosted = base.with_quality(1.10);
        let t_base = KernelTiming::derive(&m, &TaskSpec::new(base, 8, 1));
        let t_boost = KernelTiming::derive(&m, &TaskSpec::new(boosted, 8, 1));
        let ratio = t_base.instance_ns / t_boost.instance_ns;
        assert!((ratio - 1.10).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn cuda_cores_have_no_alignment_penalty() {
        let cc = MachineModel::a100_cuda_cores();
        let aligned = compute_efficiency(&cc, 64, 64, 32, 8);
        let odd = compute_efficiency(&cc, 60, 60, 31, 8);
        // 4x4 lanes: only sub-4 remainders pay, and uk is free.
        assert!(odd / aligned > 0.95, "{odd} vs {aligned}");
    }

    #[test]
    fn tiny_tiles_are_memory_bound() {
        let m = MachineModel::a100();
        let spec = a100_spec(16, 16, 16, 1, 1);
        let t = KernelTiming::derive(&m, &spec);
        let compute_ns = spec.shape.flops_per_instance() / t.compute_flops_per_ns;
        let load_ns = spec.shape.load_bytes_per_instance() / t.mem_bytes_per_ns;
        // For a 16^3 tile at 1 warp, ILP efficiency collapses, so this tile
        // is actually compute-latency bound; what matters is that it is far
        // from peak either way.
        assert!(t.instance_ns >= compute_ns.min(load_ns));
        let achieved = spec.shape.flops_per_instance() / t.instance_ns;
        assert!(achieved < 0.05 * m.pe_peak_flops() / 1e9 * m.num_pes as f64);
    }
}
