//! Pipelined tasks and launches.
//!
//! A *pipelined task* is the paper's unit of PE work (Section 3.3): `t`
//! instances of a fixed-size micro-kernel executed back to back on one PE,
//! with loads from `M_global`, compute in `M_local`, and write-back
//! overlapped in a software pipeline. A [`Launch`] is a co-scheduled grid of
//! tasks — possibly drawn from several [`TaskGroup`]s with *different*
//! micro-kernels, which is exactly what micro-kernel polymerization emits.

use serde::{Deserialize, Serialize};

use crate::machine::MachineModel;

/// Static description of one micro-kernel instance's work, independent of
/// how many instances a task runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskShape {
    /// Tile rows (`uM`).
    pub um: usize,
    /// Tile columns (`uN`).
    pub un: usize,
    /// Tile reduction depth (`uK`).
    pub uk: usize,
    /// Bytes per input element (2 for fp16).
    pub in_elem_bytes: usize,
    /// Bytes per output element.
    pub out_elem_bytes: usize,
    /// Bytes per accumulator element held in `M_local` (4 for fp32
    /// accumulation).
    pub acc_elem_bytes: usize,
    /// Multiplier on global-memory load traffic. 1.0 for plain GEMM;
    /// implicit-GEMM convolution pays a gather inefficiency > 1.
    pub load_scale: f64,
    /// Number of pipeline stages double/multi-buffered in `M_local`.
    pub stages: usize,
    /// Code-generation quality multiplier on compute efficiency. 1.0 for
    /// compiler-generated code; hand-written vendor assembly sustains a few
    /// percent more of peak (cuBLAS SASS, CANN cube code), which is how the
    /// paper's baselines stay competitive on their golden shapes.
    pub quality: f64,
}

impl TaskShape {
    /// A GEMM tile of `um x un x uk` with the given element widths and
    /// double buffering (`stages = 2`).
    pub fn gemm_tile(
        um: usize,
        un: usize,
        uk: usize,
        in_elem_bytes: usize,
        out_elem_bytes: usize,
        acc_elem_bytes: usize,
    ) -> Self {
        Self {
            um,
            un,
            uk,
            in_elem_bytes,
            out_elem_bytes,
            acc_elem_bytes,
            load_scale: 1.0,
            stages: 2,
            quality: 1.0,
        }
    }

    /// An fp16-in / fp16-out / fp32-accumulate GEMM tile, the configuration
    /// used throughout the paper's evaluation.
    pub fn gemm_tile_f16(um: usize, un: usize, uk: usize) -> Self {
        Self::gemm_tile(um, un, uk, 2, 2, 4)
    }

    /// Sets the global-load traffic multiplier (builder style).
    #[must_use]
    pub fn with_load_scale(mut self, scale: f64) -> Self {
        self.load_scale = scale;
        self
    }

    /// Sets the code-generation quality multiplier (builder style).
    #[must_use]
    pub fn with_quality(mut self, quality: f64) -> Self {
        self.quality = quality;
        self
    }

    /// Floating-point operations per micro-kernel instance.
    pub fn flops_per_instance(&self) -> f64 {
        2.0 * self.um as f64 * self.un as f64 * self.uk as f64
    }

    /// Bytes loaded from `M_global` per micro-kernel instance (one `um x uk`
    /// operand tile plus one `uk x un` operand tile).
    pub fn load_bytes_per_instance(&self) -> f64 {
        ((self.um + self.un) * self.uk * self.in_elem_bytes) as f64 * self.load_scale
    }

    /// Bytes written back to `M_global` once per task.
    pub fn store_bytes(&self) -> f64 {
        (self.um * self.un * self.out_elem_bytes) as f64
    }

    /// `M_local` footprint of one resident task: `stages`-buffered operand
    /// tiles plus the accumulator.
    pub fn local_mem_bytes(&self) -> usize {
        self.stages * (self.um + self.un) * self.uk * self.in_elem_bytes
            + self.um * self.un * self.acc_elem_bytes
    }

    /// Whether a task of this shape fits in one PE's `M_local`.
    pub fn fits(&self, machine: &MachineModel) -> bool {
        self.local_mem_bytes() <= machine.local_mem_bytes
    }
}

/// A pipelined task: a [`TaskShape`] plus its resource footprint and the
/// number of micro-kernel instances it runs (`t`, the reduction trip count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// The per-instance work description.
    pub shape: TaskShape,
    /// Warps occupied on the PE while the task is resident.
    pub warps: usize,
    /// Number of micro-kernel instances executed by the task.
    pub instances: usize,
}

impl TaskSpec {
    /// Creates a task running `instances` instances of `shape` with `warps`
    /// resident warps.
    ///
    /// # Panics
    ///
    /// Panics if `warps` or `instances` is zero.
    pub fn new(shape: TaskShape, warps: usize, instances: usize) -> Self {
        assert!(warps > 0, "a task must occupy at least one warp");
        assert!(instances > 0, "a task must run at least one instance");
        Self {
            shape,
            warps,
            instances,
        }
    }

    /// Total floating-point work of the task.
    pub fn total_flops(&self) -> f64 {
        self.shape.flops_per_instance() * self.instances as f64
    }

    /// Total global-memory traffic of the task (loads plus the single
    /// write-back), including one extra instance's worth of loads for the
    /// pipeline fill bubble.
    pub fn total_bytes(&self) -> f64 {
        self.shape.load_bytes_per_instance() * (self.instances as f64 + 1.0)
            + self.shape.store_bytes()
    }
}

/// A homogeneous group of tasks within a launch: `count` tasks that all run
/// the same [`TaskSpec`]. Polymerized programs contain one group per region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGroup {
    /// The task executed by every member of the group.
    pub spec: TaskSpec,
    /// Number of tasks in the group.
    pub count: usize,
    /// Optional static placement: `assignment[i]` is the PE index of task
    /// `i`. Required on machines with
    /// [`crate::AllocationPolicy::StaticCompilerAssigned`].
    pub assignment: Option<Vec<usize>>,
}

impl TaskGroup {
    /// A group of `count` identical tasks with dynamic placement.
    pub fn new(spec: TaskSpec, count: usize) -> Self {
        Self {
            spec,
            count,
            assignment: None,
        }
    }

    /// A group with a compiler-provided static placement.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != count`.
    pub fn with_assignment(spec: TaskSpec, assignment: Vec<usize>) -> Self {
        let count = assignment.len();
        Self {
            spec,
            count,
            assignment: Some(assignment),
        }
    }
}

/// A single device launch: one or more task groups co-scheduled on the
/// machine. All groups of a launch compete for PEs concurrently, exactly as
/// the thread blocks of a polymerized kernel do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Launch {
    /// The task groups of this launch.
    pub groups: Vec<TaskGroup>,
}

impl Launch {
    /// A launch consisting of a single homogeneous grid.
    pub fn grid(spec: TaskSpec, count: usize) -> Self {
        Self {
            groups: vec![TaskGroup::new(spec, count)],
        }
    }

    /// A launch from explicit groups.
    pub fn from_groups(groups: Vec<TaskGroup>) -> Self {
        Self { groups }
    }

    /// Total number of tasks across all groups (the paper's `grid_size`).
    pub fn grid_size(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Total floating-point work of the launch.
    pub fn total_flops(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.spec.total_flops() * g.count as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_tile_accounting() {
        let s = TaskShape::gemm_tile_f16(256, 128, 32);
        assert_eq!(s.flops_per_instance(), 2.0 * 256.0 * 128.0 * 32.0);
        assert_eq!(s.load_bytes_per_instance(), ((256 + 128) * 32 * 2) as f64);
        assert_eq!(s.store_bytes(), (256 * 128 * 2) as f64);
        // Double-buffered fp16 operands + fp32 accumulator.
        assert_eq!(
            s.local_mem_bytes(),
            2 * (256 + 128) * 32 * 2 + 256 * 128 * 4
        );
    }

    #[test]
    fn paper_kernel_a_barely_fits_a100_local_mem() {
        // Kernel A from the Section 6 case study: (256, 128, 32).
        let machine = MachineModel::a100();
        assert!(TaskShape::gemm_tile_f16(256, 128, 32).fits(&machine));
        // A 256x256x32 accumulator alone exceeds 192 KiB.
        assert!(!TaskShape::gemm_tile_f16(256, 256, 32).fits(&machine));
    }

    #[test]
    fn load_scale_inflates_traffic_only() {
        let plain = TaskShape::gemm_tile_f16(64, 64, 64);
        let conv = plain.with_load_scale(1.25);
        assert!(conv.load_bytes_per_instance() > plain.load_bytes_per_instance());
        assert_eq!(conv.flops_per_instance(), plain.flops_per_instance());
        assert_eq!(conv.store_bytes(), plain.store_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_rejected() {
        let _ = TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 64), 0, 1);
    }

    #[test]
    fn launch_grid_size_sums_groups() {
        let spec = TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 64), 4, 10);
        let launch = Launch::from_groups(vec![TaskGroup::new(spec, 96), TaskGroup::new(spec, 32)]);
        assert_eq!(launch.grid_size(), 128);
    }
}
