//! Physical-plausibility invariants over simulation results.
//!
//! The simulator stands in for real hardware in every experiment, so a bug
//! here silently corrupts the whole evaluation. This module states what any
//! *physically realizable* schedule must satisfy — conservation laws the
//! event-driven scheduler cannot violate unless it is wrong — and checks
//! them against a [`SimReport`] and its task trace:
//!
//! * **Non-negative phases**: every task interval has `end > start ≥ 0`,
//!   and report times/counters are non-negative with `time_ns ≥ device_ns`.
//! * **Bounded utilization**: `sm_efficiency` and `achieved_occupancy` are
//!   fractions in `[0, 1]`; no PE is busy longer than the device ran.
//! * **Monotonic timeline**: traced task starts are non-decreasing and no
//!   task outlives the device interval.
//! * **Warp conservation**: at no instant does a PE's resident warp total
//!   exceed the machine's per-PE cap (checked with an event sweep, not
//!   sampling), and aggregate warp-time matches the occupancy counter.
//! * **Task conservation**: the trace covers exactly `grid_size` tasks and
//!   per-PE task counts agree with the per-PE utilization counters.
//! * **Deterministic replay** ([`check_deterministic_replay`]): simulating
//!   the same launch twice yields bit-identical reports and traces — the
//!   property the conformance fuzzer and the oracle both depend on.
//!
//! Checks return all violations found rather than failing fast, so a fuzzer
//! can report every broken invariant of a shrunk input at once.

use crate::counters::SimReport;
use crate::machine::MachineModel;
use crate::scheduler::{simulate_traced, TraceEvent};
use crate::task::Launch;
use crate::timing::TimingMode;

/// Slack for float comparisons, ns. Matches the scheduler's event epsilon
/// in spirit: anything below this is accumulation noise, not a bug.
const TOL_NS: f64 = 1e-3;

/// Relative slack for conserved aggregates (warp-time, busy-time).
const TOL_REL: f64 = 1e-6;

/// One violated invariant, with enough context to reproduce and triage.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Stable name of the violated invariant (e.g. `"warp-cap"`).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn violation(out: &mut Vec<InvariantViolation>, invariant: &'static str, detail: String) {
    out.push(InvariantViolation { invariant, detail });
}

/// True when `value` fails "non-negative": negative *or* NaN. Spelled out
/// so NaN (incomparable, hence not `>= 0.0`) is visibly part of the check.
fn not_non_negative(value: f64) -> bool {
    value.is_nan() || value < 0.0
}

/// Checks the counter-level invariants of a report. `machine` must be the
/// model the report was produced on.
pub fn check_report(machine: &MachineModel, report: &SimReport) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if not_non_negative(report.device_ns) {
        violation(
            &mut out,
            "non-negative-time",
            format!("device_ns = {}", report.device_ns),
        );
    }
    if report.time_ns + TOL_NS < report.device_ns {
        violation(
            &mut out,
            "wall-covers-device",
            format!(
                "time_ns = {} < device_ns = {}",
                report.time_ns, report.device_ns
            ),
        );
    }
    for (name, value) in [
        ("sm_efficiency", report.sm_efficiency),
        ("achieved_occupancy", report.achieved_occupancy),
    ] {
        if !(0.0..=1.0 + TOL_REL).contains(&value) {
            violation(
                &mut out,
                "utilization-fraction",
                format!("{name} = {value} outside [0, 1]"),
            );
        }
    }
    if not_non_negative(report.elapsed_cycles_sm) || not_non_negative(report.total_flops) {
        violation(
            &mut out,
            "non-negative-counters",
            format!(
                "elapsed_cycles_sm = {}, total_flops = {}",
                report.elapsed_cycles_sm, report.total_flops
            ),
        );
    }
    let tasks: usize = report.per_pe.iter().map(|p| p.tasks).sum();
    if tasks != report.grid_size {
        violation(
            &mut out,
            "task-conservation",
            format!(
                "per-PE task counts sum to {tasks} but grid_size = {}",
                report.grid_size
            ),
        );
    }
    for (pe, util) in report.per_pe.iter().enumerate() {
        if util.busy_ns < 0.0 || util.warp_ns < 0.0 {
            violation(
                &mut out,
                "non-negative-utilization",
                format!(
                    "PE {pe}: busy_ns = {}, warp_ns = {}",
                    util.busy_ns, util.warp_ns
                ),
            );
        }
        if util.busy_ns > report.device_ns * (1.0 + TOL_REL) + TOL_NS {
            violation(
                &mut out,
                "busy-within-device",
                format!(
                    "PE {pe} busy {} ns exceeds device interval {} ns",
                    util.busy_ns, report.device_ns
                ),
            );
        }
        if util.warp_ns > util.busy_ns * machine.warp_cap_per_pe as f64 * (1.0 + TOL_REL) + TOL_NS {
            violation(
                &mut out,
                "warp-time-within-cap",
                format!(
                    "PE {pe} warp-time {} ns exceeds busy {} ns x cap {}",
                    util.warp_ns, util.busy_ns, machine.warp_cap_per_pe
                ),
            );
        }
    }
    out
}

/// Checks the trace-level invariants of a traced simulation: interval
/// sanity, timeline monotonicity, task coverage, and — via a boundary
/// sweep, so *every* instant is covered — the per-PE warp cap and the
/// warp-time conservation law tying the trace to the occupancy counters.
pub fn check_trace(
    machine: &MachineModel,
    report: &SimReport,
    trace: &[TraceEvent],
) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if trace.len() != report.grid_size {
        violation(
            &mut out,
            "trace-coverage",
            format!(
                "trace has {} events but grid_size = {}",
                trace.len(),
                report.grid_size
            ),
        );
    }
    let mut last_start = f64::NEG_INFINITY;
    for (i, e) in trace.iter().enumerate() {
        if not_non_negative(e.start_ns) || e.end_ns <= e.start_ns {
            violation(
                &mut out,
                "non-negative-phase",
                format!("event {i}: [{}, {}] ns", e.start_ns, e.end_ns),
            );
        }
        if e.end_ns > report.device_ns + TOL_NS {
            violation(
                &mut out,
                "monotonic-timeline",
                format!(
                    "event {i} ends at {} ns, past device end {} ns",
                    e.end_ns, report.device_ns
                ),
            );
        }
        if e.start_ns + TOL_NS < last_start {
            violation(
                &mut out,
                "monotonic-timeline",
                format!(
                    "event {i} starts at {} ns before predecessor's {} ns",
                    e.start_ns, last_start
                ),
            );
        }
        last_start = last_start.max(e.start_ns);
        if e.pe >= machine.num_pes {
            violation(
                &mut out,
                "pe-in-range",
                format!("event {i} on PE {} of {}", e.pe, machine.num_pes),
            );
        }
        if e.warps == 0 || e.warps > machine.warp_cap_per_pe {
            violation(
                &mut out,
                "warp-cap",
                format!(
                    "event {i} occupies {} warps (cap {})",
                    e.warps, machine.warp_cap_per_pe
                ),
            );
        }
    }

    // Warp conservation per PE: sweep interval boundaries; between
    // boundaries residency is constant, so checking each boundary covers
    // every instant.
    let mut per_pe_events: Vec<Vec<(f64, isize)>> = vec![Vec::new(); machine.num_pes];
    let mut per_pe_warp_ns = vec![0.0f64; machine.num_pes];
    let mut per_pe_tasks = vec![0usize; machine.num_pes];
    for e in trace {
        if e.pe >= machine.num_pes || e.end_ns <= e.start_ns {
            continue; // already reported above
        }
        per_pe_events[e.pe].push((e.start_ns, e.warps as isize));
        per_pe_events[e.pe].push((e.end_ns, -(e.warps as isize)));
        per_pe_warp_ns[e.pe] += (e.end_ns - e.start_ns) * e.warps as f64;
        per_pe_tasks[e.pe] += 1;
    }
    for (pe, boundaries) in per_pe_events.iter_mut().enumerate() {
        // Ends sort before coincident starts so a back-to-back handoff at
        // the same instant is not double counted.
        boundaries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut resident: isize = 0;
        for &(t, delta) in boundaries.iter() {
            resident += delta;
            if resident > machine.warp_cap_per_pe as isize {
                violation(
                    &mut out,
                    "warp-cap",
                    format!(
                        "PE {pe} holds {resident} warps at t = {t} ns (cap {})",
                        machine.warp_cap_per_pe
                    ),
                );
                break; // one report per PE is enough
            }
        }
        if resident != 0 {
            violation(
                &mut out,
                "warp-conservation",
                format!("PE {pe} ends the sweep with {resident} resident warps"),
            );
        }
    }
    for (pe, util) in report.per_pe.iter().enumerate() {
        let traced = per_pe_warp_ns.get(pe).copied().unwrap_or(0.0);
        if (traced - util.warp_ns).abs() > util.warp_ns.abs() * TOL_REL + TOL_NS {
            violation(
                &mut out,
                "warp-conservation",
                format!(
                    "PE {pe}: trace warp-time {} ns != counter {} ns",
                    traced, util.warp_ns
                ),
            );
        }
        let tasks = per_pe_tasks.get(pe).copied().unwrap_or(0);
        if tasks != util.tasks {
            violation(
                &mut out,
                "task-conservation",
                format!("PE {pe}: {tasks} traced tasks != counter {}", util.tasks),
            );
        }
    }
    out
}

/// Simulates `launch` twice and verifies the runs are bit-identical —
/// reports *and* traces. Returns the (first) report and trace alongside
/// any violations, so callers don't pay for a third run.
pub fn check_deterministic_replay(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> (SimReport, Vec<TraceEvent>, Vec<InvariantViolation>) {
    let (report_a, trace_a) = simulate_traced(machine, launch, mode);
    let (report_b, trace_b) = simulate_traced(machine, launch, mode);
    let mut out = Vec::new();
    if report_a != report_b {
        violation(
            &mut out,
            "deterministic-replay",
            format!(
                "replay diverged: device_ns {} vs {}",
                report_a.device_ns, report_b.device_ns
            ),
        );
    }
    if trace_a != trace_b {
        violation(
            &mut out,
            "deterministic-replay",
            "replayed trace differs from the original".to_string(),
        );
    }
    (report_a, trace_a, out)
}

/// Full sweep: deterministic replay plus every report- and trace-level
/// invariant, in one call. This is the entry point the conformance fuzzer
/// uses per case.
pub fn check_launch(
    machine: &MachineModel,
    launch: &Launch,
    mode: TimingMode,
) -> Vec<InvariantViolation> {
    let (report, trace, mut out) = check_deterministic_replay(machine, launch, mode);
    out.extend(check_report(machine, &report));
    out.extend(check_trace(machine, &report, &trace));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskGroup, TaskShape, TaskSpec};

    fn spec(um: usize, un: usize, uk: usize, warps: usize, t: usize) -> TaskSpec {
        TaskSpec::new(TaskShape::gemm_tile_f16(um, un, uk), warps, t)
    }

    #[test]
    fn healthy_simulation_has_no_violations() {
        let m = MachineModel::a100();
        let a = TaskGroup::new(spec(256, 128, 32, 8, 64), 96);
        let b = TaskGroup::new(spec(64, 64, 64, 4, 32), 200);
        let launch = Launch::from_groups(vec![a, b]);
        let violations = check_launch(&m, &launch, TimingMode::Evaluate);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn measure_mode_is_also_deterministic() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 16), 150);
        let violations = check_launch(&m, &launch, TimingMode::Measure { seed: 11 });
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn corrupted_report_is_caught() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(128, 128, 32, 8, 16), 20);
        let (mut report, trace) = simulate_traced(&m, &launch, TimingMode::Evaluate);
        report.sm_efficiency = 1.5;
        report.per_pe[0].warp_ns *= 2.0;
        let violations: Vec<_> = check_report(&m, &report)
            .into_iter()
            .chain(check_trace(&m, &report, &trace))
            .collect();
        assert!(violations
            .iter()
            .any(|v| v.invariant == "utilization-fraction"));
        assert!(violations
            .iter()
            .any(|v| v.invariant == "warp-conservation"));
    }

    #[test]
    fn corrupted_trace_is_caught() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(64, 64, 64, 4, 16), 40);
        let (report, mut trace) = simulate_traced(&m, &launch, TimingMode::Evaluate);
        // An event claiming more warps than the PE cap at one instant.
        let cap = m.warp_cap_per_pe;
        trace[0].warps = cap + 1;
        let violations = check_trace(&m, &report, &trace);
        assert!(violations.iter().any(|v| v.invariant == "warp-cap"));
    }

    #[test]
    fn negative_phase_is_caught() {
        let m = MachineModel::a100();
        let launch = Launch::grid(spec(64, 64, 64, 4, 16), 8);
        let (report, mut trace) = simulate_traced(&m, &launch, TimingMode::Evaluate);
        let end = trace[3].end_ns;
        trace[3].start_ns = end + 1.0;
        let violations = check_trace(&m, &report, &trace);
        assert!(violations
            .iter()
            .any(|v| v.invariant == "non-negative-phase"));
    }
}
