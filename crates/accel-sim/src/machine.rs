//! Machine models: the `H = (P_multi, M_local, M_global)` abstraction.

use serde::{Deserialize, Serialize};

/// Shape of the PE's native matrix-multiply-accumulate instruction.
///
/// Tensor Cores on an A100 execute `16x8x16` fp16 MMAs; the Ascend 910A cube
/// unit computes `16x16x16` fragments. Tiles that are not multiples of the
/// MMA shape waste lanes (the padding is executed but discarded), which
/// [`crate::compute_efficiency`] charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MmaShape {
    /// Rows of the MMA fragment.
    pub m: usize,
    /// Columns of the MMA fragment.
    pub n: usize,
    /// Reduction depth of the MMA fragment.
    pub k: usize,
}

impl MmaShape {
    /// Creates a new MMA shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k }
    }

    /// Output fragment area `m * n`.
    pub const fn area(&self) -> usize {
        self.m * self.n
    }
}

impl std::fmt::Display for MmaShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// How a grid of tasks is placed onto PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// A hardware scheduler assigns tasks to PEs greedily as slots free up
    /// (NVIDIA GPUs: thread blocks are dispatched to SMs dynamically).
    DynamicHardware,
    /// The compiler pre-assigns every task to a PE; each PE executes its
    /// queue in order (Ascend NPUs: the runtime honours a static placement,
    /// which MikPoly computes with a max-min / LPT allocator).
    StaticCompilerAssigned,
}

/// A multi-level accelerator: `H = (P_multi, M_local, M_global)`.
///
/// The presets [`MachineModel::a100`] and [`MachineModel::ascend910a`] mirror
/// Table 1/2 of the paper; [`MachineModel::a100_cuda_cores`] is the
/// Tensor-Core-free variant used for the DietCode/Nimble comparison
/// (Fig. 10), where all compilers are restricted to CUDA cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable device name.
    pub name: String,
    /// `|P_multi|`: number of processing engines (SMs / DaVinci cores).
    pub num_pes: usize,
    /// PE clock in GHz.
    pub clock_ghz: f64,
    /// Peak FLOPs per cycle per PE at full warp occupancy (fp16 with fp32
    /// accumulate on the matrix units).
    pub flops_per_cycle_per_pe: f64,
    /// `M_local` capacity in bytes (shared memory / L1 buffer usable by one
    /// resident task set).
    pub local_mem_bytes: usize,
    /// `M_global` aggregate bandwidth in GB/s, divided equally among PEs.
    pub global_bandwidth_gbps: f64,
    /// Effective bandwidth amplification from the cache hierarchy between
    /// `M_global` and the PEs (L2 hits, multicast of shared operand tiles).
    pub mem_amplification: f64,
    /// `M_global` capacity in bytes.
    pub global_mem_bytes: u64,
    /// Native MMA fragment shape.
    pub mma: MmaShape,
    /// Threads per warp (1 for NPU cores, which have no warp concept).
    pub warp_size: usize,
    /// Active warp slots per PE for matrix-unit kernels. Register and
    /// local-memory pressure of tensor kernels caps residency well below the
    /// architectural limit; on the A100 the tensor-core GEMM kernels of the
    /// paper run at 12.5% occupancy = 8 active warps per SM (Section 6).
    pub warp_cap_per_pe: usize,
    /// Fixed host-side launch overhead per kernel launch, in nanoseconds.
    /// Calibrated to stream-pipelined dispatch (kernels are enqueued
    /// back-to-back, so per-launch cost is the ~1 us driver path, not the
    /// full synchronous round trip).
    pub launch_overhead_ns: f64,
    /// Fixed per-task scheduling overhead, in nanoseconds.
    pub task_overhead_ns: f64,
    /// Baseline fraction of peak sustained by a perfectly-shaped kernel
    /// (instruction issue, synchronization and epilogue overheads).
    pub base_efficiency: f64,
    /// Task placement policy.
    pub allocation: AllocationPolicy,
}

impl MachineModel {
    /// NVIDIA A100 (SXM4-80GB) with Tensor Cores, as abstracted in Table 1.
    ///
    /// 108 SMs at 1.41 GHz; 2048 fp16 FLOP/cycle/SM gives the 312 TFLOPS
    /// Tensor-Core peak; 192 KiB combined shared memory/L1 per SM; 1555 GB/s
    /// HBM2e after Table 2.
    pub fn a100() -> Self {
        Self {
            name: "nvidia-a100".into(),
            num_pes: 108,
            clock_ghz: 1.41,
            flops_per_cycle_per_pe: 2048.0,
            local_mem_bytes: 192 * 1024,
            global_bandwidth_gbps: 1555.0,
            mem_amplification: 5.0,
            global_mem_bytes: 80 * (1 << 30),
            mma: MmaShape::new(16, 8, 16),
            warp_size: 32,
            warp_cap_per_pe: 8,
            launch_overhead_ns: 1_000.0,
            task_overhead_ns: 250.0,
            base_efficiency: 0.95,
            allocation: AllocationPolicy::DynamicHardware,
        }
    }

    /// NVIDIA A100 restricted to CUDA cores (no Tensor Cores).
    ///
    /// Used for the comparison with DietCode and Nimble (Fig. 10), which only
    /// target CUDA cores. fp16 FMA throughput on CUDA cores is 512
    /// FLOP/cycle/SM (78 TFLOPS); scalar lanes have no MMA alignment
    /// requirement and much higher occupancy headroom.
    pub fn a100_cuda_cores() -> Self {
        Self {
            name: "nvidia-a100-cuda-cores".into(),
            flops_per_cycle_per_pe: 512.0,
            mma: MmaShape::new(4, 4, 1),
            warp_cap_per_pe: 8,
            base_efficiency: 0.9,
            ..Self::a100()
        }
    }

    /// An H100-class (SXM5) GPU — not part of the paper's evaluation; used
    /// by the portability extension study to show the pipeline retargets by
    /// swapping the machine description alone.
    ///
    /// 132 SMs at 1.83 GHz; ~4096 fp16 FLOP/cycle/SM (≈ 990 TFLOPS dense
    /// Tensor-Core peak); 228 KiB shared memory/L1 per SM; 3350 GB/s HBM3.
    pub fn h100() -> Self {
        Self {
            name: "nvidia-h100".into(),
            num_pes: 132,
            clock_ghz: 1.83,
            flops_per_cycle_per_pe: 4096.0,
            local_mem_bytes: 228 * 1024,
            global_bandwidth_gbps: 3350.0,
            mem_amplification: 5.0,
            global_mem_bytes: 80 * (1 << 30),
            mma: MmaShape::new(16, 8, 16),
            warp_size: 32,
            warp_cap_per_pe: 8,
            launch_overhead_ns: 1_000.0,
            task_overhead_ns: 200.0,
            base_efficiency: 0.95,
            allocation: AllocationPolicy::DynamicHardware,
        }
    }

    /// Huawei Ascend 910A, as abstracted in Table 1.
    ///
    /// 32 DaVinci cores at 1.0 GHz; each cube unit delivers 8192 fp16
    /// FLOP/cycle (256 TFLOPS aggregate); 1 MiB L1 buffer per core; 1200 GB/s
    /// HBM. DaVinci cores execute one task at a time and placement is static.
    pub fn ascend910a() -> Self {
        Self {
            name: "ascend-910a".into(),
            num_pes: 32,
            clock_ghz: 1.0,
            flops_per_cycle_per_pe: 8192.0,
            local_mem_bytes: 1024 * 1024,
            global_bandwidth_gbps: 1200.0,
            mem_amplification: 3.0,
            global_mem_bytes: 32 * (1 << 30),
            mma: MmaShape::new(16, 16, 16),
            warp_size: 1,
            warp_cap_per_pe: 1,
            // Ascend task dispatch runs through the AI CPU / runtime: both
            // the per-launch and per-task costs are an order of magnitude
            // above a GPU's hardware scheduler.
            launch_overhead_ns: 10_000.0,
            task_overhead_ns: 2_000.0,
            base_efficiency: 0.92,
            allocation: AllocationPolicy::StaticCompilerAssigned,
        }
    }

    /// Peak FLOPs/s of a single PE.
    pub fn pe_peak_flops(&self) -> f64 {
        self.clock_ghz * 1e9 * self.flops_per_cycle_per_pe
    }

    /// Aggregate peak FLOPs/s of the device.
    pub fn peak_flops(&self) -> f64 {
        self.pe_peak_flops() * self.num_pes as f64
    }

    /// Effective bytes/ns available to one PE: the equal share of global
    /// bandwidth (the paper's `M_global` "allocates its bandwidth equally
    /// across PEs") amplified by the cache hierarchy.
    pub fn pe_bandwidth_bytes_per_ns(&self) -> f64 {
        self.global_bandwidth_gbps * self.mem_amplification / self.num_pes as f64
    }

    /// Whether this machine has matrix (tensor-core / cube) units with an
    /// alignment-sensitive fragment shape.
    pub fn has_matrix_units(&self) -> bool {
        self.mma.area() > 16
    }
}

impl std::fmt::Display for MachineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (|P_multi|={}, M_local={} KiB, M_global bw={} GB/s, peak={:.0} TFLOPS)",
            self.name,
            self.num_pes,
            self.local_mem_bytes / 1024,
            self.global_bandwidth_gbps,
            self.peak_flops() / 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_peak_matches_datasheet() {
        let m = MachineModel::a100();
        // 312 TFLOPS fp16 Tensor Core peak.
        assert!((m.peak_flops() / 1e12 - 312.0).abs() < 5.0);
    }

    #[test]
    fn ascend_peak_matches_datasheet() {
        let m = MachineModel::ascend910a();
        // ~256 TFLOPS fp16 cube peak (32 cores x 8192 FLOP/cycle at 1 GHz).
        assert!((m.peak_flops() / 1e12 - 256.0).abs() < 10.0);
    }

    #[test]
    fn h100_is_stronger_than_a100_everywhere() {
        let a = MachineModel::a100();
        let h = MachineModel::h100();
        assert!(h.peak_flops() > 2.0 * a.peak_flops());
        assert!(h.pe_bandwidth_bytes_per_ns() > a.pe_bandwidth_bytes_per_ns());
        assert!(h.local_mem_bytes > a.local_mem_bytes);
    }

    #[test]
    fn cuda_core_variant_is_weaker_but_same_chip() {
        let tc = MachineModel::a100();
        let cc = MachineModel::a100_cuda_cores();
        assert_eq!(tc.num_pes, cc.num_pes);
        assert!(cc.peak_flops() < tc.peak_flops() / 3.0);
        assert!(!cc.has_matrix_units());
        assert!(tc.has_matrix_units());
    }

    #[test]
    fn pe_bandwidth_is_equal_share() {
        let m = MachineModel::a100();
        let total = m.pe_bandwidth_bytes_per_ns() * m.num_pes as f64;
        assert!((total - 1555.0 * 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_informative() {
        let s = MachineModel::a100().to_string();
        assert!(s.contains("nvidia-a100"));
        assert!(s.contains("108"));
    }
}
