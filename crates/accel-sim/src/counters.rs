//! Simulation reports and profiling counters.
//!
//! The counter names follow NVIDIA's profiling tools, which the paper quotes
//! in Table 9: `sm_efficiency` (fraction of time at least one warp is active
//! on an SM), `elapsed_cycles_sm` (clock cycles elapsed per SM summed over
//! SMs), and `grid_size` (number of thread blocks / tasks).

use serde::{Deserialize, Serialize};

/// Per-PE utilization breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PeUtilization {
    /// Nanoseconds during which at least one task was resident.
    pub busy_ns: f64,
    /// Number of tasks this PE executed.
    pub tasks: usize,
    /// Warp-nanoseconds of residency (for occupancy accounting).
    pub warp_ns: f64,
}

/// The result of simulating one or more launches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end wall-clock time in nanoseconds, including launch overhead.
    pub time_ns: f64,
    /// Device-busy portion (excludes host launch overhead).
    pub device_ns: f64,
    /// Total number of tasks executed (`grid_size`).
    pub grid_size: usize,
    /// Fraction of PE-time with at least one resident task
    /// (`sm_efficiency`, in `[0, 1]`).
    pub sm_efficiency: f64,
    /// Clock cycles elapsed per PE, summed across PEs
    /// (`elapsed_cycles_sm`).
    pub elapsed_cycles_sm: f64,
    /// Average resident warps per PE while the device was busy, as a
    /// fraction of the per-PE warp cap (`achieved_occupancy`, in `[0, 1]`).
    pub achieved_occupancy: f64,
    /// Total floating-point operations of the launch(es).
    pub total_flops: f64,
    /// Per-PE utilization.
    pub per_pe: Vec<PeUtilization>,
}

impl SimReport {
    /// Achieved throughput in TFLOPS.
    pub fn tflops(&self) -> f64 {
        if self.time_ns <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.time_ns / 1e3
    }

    /// End-to-end time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_ns / 1e3
    }

    /// End-to-end time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time_ns / 1e6
    }

    /// Merges two sequential reports (their times add; counters are combined
    /// with time-weighted averages).
    pub fn chain(&self, other: &SimReport) -> SimReport {
        let time_ns = self.time_ns + other.time_ns;
        let device_ns = self.device_ns + other.device_ns;
        let weight = |a: f64, b: f64| {
            if device_ns > 0.0 {
                (a * self.device_ns + b * other.device_ns) / device_ns
            } else {
                0.0
            }
        };
        let mut per_pe = self.per_pe.clone();
        if per_pe.len() < other.per_pe.len() {
            per_pe.resize(other.per_pe.len(), PeUtilization::default());
        }
        for (dst, src) in per_pe.iter_mut().zip(&other.per_pe) {
            dst.busy_ns += src.busy_ns;
            dst.tasks += src.tasks;
            dst.warp_ns += src.warp_ns;
        }
        SimReport {
            time_ns,
            device_ns,
            grid_size: self.grid_size + other.grid_size,
            sm_efficiency: weight(self.sm_efficiency, other.sm_efficiency),
            elapsed_cycles_sm: self.elapsed_cycles_sm + other.elapsed_cycles_sm,
            achieved_occupancy: weight(self.achieved_occupancy, other.achieved_occupancy),
            total_flops: self.total_flops + other.total_flops,
            per_pe,
        }
    }

    /// An empty (zero-time) report.
    pub fn empty(num_pes: usize) -> SimReport {
        SimReport {
            time_ns: 0.0,
            device_ns: 0.0,
            grid_size: 0,
            sm_efficiency: 0.0,
            elapsed_cycles_sm: 0.0,
            achieved_occupancy: 0.0,
            total_flops: 0.0,
            per_pe: vec![PeUtilization::default(); num_pes],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tflops_is_flops_over_time() {
        let mut r = SimReport::empty(4);
        r.time_ns = 1e6;
        r.total_flops = 2e12;
        assert!((r.tflops() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn chain_adds_times_and_weights_efficiency() {
        let mut a = SimReport::empty(2);
        a.time_ns = 100.0;
        a.device_ns = 100.0;
        a.sm_efficiency = 1.0;
        a.grid_size = 10;
        let mut b = SimReport::empty(2);
        b.time_ns = 300.0;
        b.device_ns = 300.0;
        b.sm_efficiency = 0.5;
        b.grid_size = 30;
        let c = a.chain(&b);
        assert_eq!(c.time_ns, 400.0);
        assert_eq!(c.grid_size, 40);
        assert!((c.sm_efficiency - (1.0 * 100.0 + 0.5 * 300.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_throughput() {
        assert_eq!(SimReport::empty(8).tflops(), 0.0);
    }
}
