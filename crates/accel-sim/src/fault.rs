//! Deterministic, seeded fault injection.
//!
//! Production serving must survive transient device faults, slow searches,
//! and corrupted cache entries. A [`FaultPlan`] describes a reproducible
//! schedule of such faults: every decision is a pure function of the plan's
//! seed and the identity of the event (request id and attempt for device
//! faults, shape key for compile-path faults), driven by the same
//! [`hash_f64`](crate::hash_f64) mixer the measurement-noise model uses.
//! The same plan therefore injects exactly the same faults on every run —
//! chaos tests replay byte-identical schedules, and a failure seen in CI
//! reproduces locally from the seed alone.
//!
//! The plan is pure policy: it decides *whether* an event faults; the
//! compiler and serving runtime own *what happens next* (retry, degrade,
//! shed). Rates are probabilities in `[0, 1]`; a rate of zero disables the
//! fault class, and [`FaultPlan::none`] disables everything.

use serde::{Deserialize, Serialize};

use crate::noise::hash_f64;

/// Domain-separation salts so the fault classes draw independent streams
/// from one seed.
const DEVICE_SALT: u64 = 0xD0_DE;
const STALL_SALT: u64 = 0x57A1;
const CORRUPT_SALT: u64 = 0xC0_44;
const PANIC_SALT: u64 = 0xBAD_C0DE;

/// A reproducible fault-injection schedule.
///
/// All decisions are deterministic in `(seed, event identity)`; see the
/// per-method docs for what identifies each event class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; all fault classes derive independent streams from it.
    pub seed: u64,
    /// Probability that one device execution attempt of a request faults
    /// transiently (per `(request, attempt)` pair, so retries re-roll).
    #[serde(default)]
    pub device_fault_rate: f64,
    /// Probability that compiling a shape stalls for
    /// [`FaultPlan::search_stall_ns`] of real time before the search
    /// (per shape).
    #[serde(default)]
    pub search_stall_rate: f64,
    /// Stall duration injected before the search, real nanoseconds.
    #[serde(default)]
    pub search_stall_ns: u64,
    /// Probability that a shape's *first* compilation produces a corrupted
    /// program — a poisoned cache entry the validation layer must detect
    /// and evict (per shape; the recompile after eviction is clean).
    #[serde(default)]
    pub cache_corrupt_rate: f64,
    /// Probability that compiling a shape panics outright (per shape).
    #[serde(default)]
    pub compile_panic_rate: f64,
    /// How many consecutive compile attempts of a panicking shape panic
    /// before the fault clears. `u32::MAX` models a persistent fault (the
    /// circuit-breaker case); small values model transients that a retry
    /// or a breaker probe eventually gets past.
    #[serde(default)]
    pub panic_attempts: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn none() -> Self {
        Self {
            seed: 0,
            device_fault_rate: 0.0,
            search_stall_rate: 0.0,
            search_stall_ns: 0,
            cache_corrupt_rate: 0.0,
            compile_panic_rate: 0.0,
            panic_attempts: 1,
        }
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.device_fault_rate > 0.0
            || (self.search_stall_rate > 0.0 && self.search_stall_ns > 0)
            || self.cache_corrupt_rate > 0.0
            || self.compile_panic_rate > 0.0
    }

    /// Whether device-execution `attempt` (0-based) of `request_id`
    /// faults. Each attempt re-rolls, so transient faults clear under
    /// retry with probability `1 - rate` per attempt.
    pub fn device_fault(&self, request_id: u64, attempt: u32) -> bool {
        self.device_fault_rate > 0.0
            && hash_f64(self.seed ^ DEVICE_SALT, &[request_id, u64::from(attempt)])
                < self.device_fault_rate
    }

    /// The real-time stall, in nanoseconds, injected before searching
    /// `shape_key`, or `None` when this shape does not stall.
    pub fn search_stall(&self, shape_key: u64) -> Option<u64> {
        (self.search_stall_rate > 0.0
            && self.search_stall_ns > 0
            && hash_f64(self.seed ^ STALL_SALT, &[shape_key]) < self.search_stall_rate)
            .then_some(self.search_stall_ns)
    }

    /// Whether compile `attempt` (0-based) of `shape_key` produces a
    /// corrupted program. Only the first attempt corrupts: the recompile
    /// after the poisoned entry is evicted comes out clean.
    pub fn corrupts_program(&self, shape_key: u64, attempt: u32) -> bool {
        attempt == 0
            && self.cache_corrupt_rate > 0.0
            && hash_f64(self.seed ^ CORRUPT_SALT, &[shape_key]) < self.cache_corrupt_rate
    }

    /// Whether compile `attempt` (0-based) of `shape_key` panics. The
    /// first [`FaultPlan::panic_attempts`] attempts of an afflicted shape
    /// panic; later attempts succeed (the fault has cleared).
    pub fn compile_panics(&self, shape_key: u64, attempt: u32) -> bool {
        attempt < self.panic_attempts
            && self.compile_panic_rate > 0.0
            && hash_f64(self.seed ^ PANIC_SALT, &[shape_key]) < self.compile_panic_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for id in 0..100 {
            assert!(!plan.device_fault(id, 0));
            assert!(plan.search_stall(id).is_none());
            assert!(!plan.corrupts_program(id, 0));
            assert!(!plan.compile_panics(id, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            device_fault_rate: 0.5,
            search_stall_rate: 0.5,
            search_stall_ns: 1000,
            cache_corrupt_rate: 0.5,
            compile_panic_rate: 0.5,
            panic_attempts: 2,
        };
        let again = plan.clone();
        for id in 0..200u64 {
            assert_eq!(plan.device_fault(id, 3), again.device_fault(id, 3));
            assert_eq!(plan.search_stall(id), again.search_stall(id));
            assert_eq!(plan.corrupts_program(id, 0), again.corrupts_program(id, 0));
            assert_eq!(plan.compile_panics(id, 1), again.compile_panics(id, 1));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            seed: 7,
            device_fault_rate: 0.01,
            ..FaultPlan::none()
        };
        let faults = (0..10_000u64)
            .filter(|&id| plan.device_fault(id, 0))
            .count();
        assert!((50..200).contains(&faults), "1% of 10k ~ 100, got {faults}");
    }

    #[test]
    fn panic_attempts_clear_and_corruption_is_once() {
        let plan = FaultPlan {
            seed: 3,
            compile_panic_rate: 1.0,
            panic_attempts: 2,
            cache_corrupt_rate: 1.0,
            ..FaultPlan::none()
        };
        assert!(plan.compile_panics(9, 0));
        assert!(plan.compile_panics(9, 1));
        assert!(!plan.compile_panics(9, 2), "fault clears after 2 attempts");
        assert!(plan.corrupts_program(9, 0));
        assert!(!plan.corrupts_program(9, 1), "recompile is clean");
    }

    #[test]
    fn fault_classes_are_independent_streams() {
        let plan = FaultPlan {
            seed: 11,
            device_fault_rate: 0.5,
            search_stall_rate: 0.5,
            search_stall_ns: 10,
            ..FaultPlan::none()
        };
        // The two classes must not fault on exactly the same ids.
        let device: Vec<bool> = (0..64).map(|id| plan.device_fault(id, 0)).collect();
        let stall: Vec<bool> = (0..64).map(|id| plan.search_stall(id).is_some()).collect();
        assert_ne!(device, stall);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan {
            seed: 99,
            device_fault_rate: 0.01,
            search_stall_rate: 0.02,
            search_stall_ns: 5000,
            cache_corrupt_rate: 0.03,
            compile_panic_rate: 0.04,
            panic_attempts: 3,
        };
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<FaultPlan>(&json).unwrap(), plan);
    }
}
