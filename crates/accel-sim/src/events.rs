//! Completion-event tracking for the fast scheduler core.
//!
//! The reference loop finds the next event by rescanning every resident
//! of every PE (`min` over `remaining * factor`). The event core keeps
//! that scan out of the hot loop with two structures:
//!
//! * a **busy-PE bitset** ([`PeSet`]) so the per-iteration completion
//!   pick and the advance sweep only touch PEs that hold residents —
//!   idle PEs cost nothing, exactly as the reference's early return;
//! * a **cached earliest resident** per PE ([`EventPe::min_idx`]). All
//!   residents of one PE share the congestion factor and receive the
//!   same per-iteration progress subtraction, and IEEE-754 subtraction
//!   of a common value (like multiplication by a common positive
//!   factor) is monotone — so the argmin by `remaining_base_ns` is
//!   invariant between structural changes. It is updated in O(1) on
//!   admission and recomputed only when a resident retires.
//!
//! Together these make the completion pick O(busy PEs) and keep every
//! floating-point operation **bit-identical** to the reference loop:
//! the same subtractions in the same order on the same values, with the
//! scans merely *located* rather than recomputed.

use crate::counters::PeUtilization;
use crate::machine::MachineModel;
use crate::scheduler::TraceEvent;

/// Completion-time comparison tolerance (ns), shared with the scheduler:
/// residents whose remaining work is at or below this retire together,
/// which keeps the event count proportional to the number of waves for
/// homogeneous grids.
pub(crate) const EPS_NS: f64 = 1e-6;

/// One not-yet-admitted task, materialized lazily from its group run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTask {
    /// Uncontended duration, ns.
    pub base_ns: f64,
    /// Warp slots occupied while resident.
    pub warps: usize,
    /// `M_local` footprint, bytes.
    pub local_mem: usize,
    /// Average bandwidth demand, bytes/ns.
    pub avg_bw: f64,
    /// Index of the task's group within the launch.
    pub group: usize,
}

/// One task currently resident on a PE.
#[derive(Debug, Clone, Copy)]
struct Resident {
    remaining_base_ns: f64,
    warps: usize,
    local_mem: usize,
    avg_bw: f64,
    group: usize,
    start_ns: f64,
}

/// Per-PE state for the fast core: the reference `PeState` plus the
/// cached index of the earliest-finishing resident.
#[derive(Debug, Default)]
pub(crate) struct EventPe {
    residents: Vec<Resident>,
    /// Warp slots currently occupied.
    pub used_warps: usize,
    /// `M_local` bytes currently occupied.
    pub used_mem: usize,
    bw_demand: f64,
    factor: f64,
    /// Utilization counters, identical to the reference accumulation.
    pub util: PeUtilization,
    /// Index into `residents` of the task with the least remaining base
    /// work. Meaningless while `residents` is empty.
    min_idx: usize,
}

impl EventPe {
    /// A fresh idle PE (congestion factor 1.0).
    pub fn idle() -> Self {
        EventPe {
            factor: 1.0,
            ..EventPe::default()
        }
    }

    fn recompute_factor(&mut self, pe_bw: f64) {
        self.factor = (self.bw_demand / pe_bw).max(1.0);
    }

    /// Whether the PE currently holds residents.
    pub fn is_busy(&self) -> bool {
        !self.residents.is_empty()
    }

    /// Resident count (used by the advance sweep to count retirements).
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Whether `t` fits in the remaining warp slots and `M_local`.
    pub fn fits(&self, machine: &MachineModel, t: &PendingTask) -> bool {
        self.used_warps + t.warps <= machine.warp_cap_per_pe
            && self.used_mem + t.local_mem <= machine.local_mem_bytes
    }

    /// Whether a task with footprint `(warps, local_mem)` fits. The
    /// admission index checks warp headroom through its buckets; this
    /// only needs to veto on `M_local`.
    pub fn fits_mem(&self, machine: &MachineModel, local_mem: usize) -> bool {
        self.used_mem + local_mem <= machine.local_mem_bytes
    }

    /// Admits `t`, updating the cached argmin in O(1): a new resident
    /// can only displace the minimum if it carries strictly less work.
    pub fn admit(&mut self, t: &PendingTask, pe_bw: f64, now: f64) {
        if self.residents.is_empty() || t.base_ns < self.residents[self.min_idx].remaining_base_ns {
            self.min_idx = self.residents.len();
        }
        self.residents.push(Resident {
            remaining_base_ns: t.base_ns,
            warps: t.warps,
            local_mem: t.local_mem,
            avg_bw: t.avg_bw,
            group: t.group,
            start_ns: now,
        });
        self.used_warps += t.warps;
        self.used_mem += t.local_mem;
        self.bw_demand += t.avg_bw;
        self.recompute_factor(pe_bw);
    }

    /// Wall-clock ns until this PE's next completion. Must only be
    /// called while busy. Bit-identical to the reference's
    /// `min(remaining * factor)`: multiplication by the shared positive
    /// factor is monotone, so the cached argmin's product *is* the min.
    pub fn next_completion_ns(&self) -> f64 {
        debug_assert!(!self.residents.is_empty());
        self.residents[self.min_idx].remaining_base_ns * self.factor
    }

    /// Advances the (busy) PE by `dt` ns; returns `true` if any
    /// resident finished. The accumulation and retirement arithmetic is
    /// a verbatim transcription of the reference `PeState::advance`.
    pub fn advance(
        &mut self,
        dt: f64,
        pe_bw: f64,
        now: f64,
        pe_index: usize,
        trace: Option<&mut Vec<TraceEvent>>,
    ) -> bool {
        self.util.busy_ns += dt;
        self.util.warp_ns += dt * self.used_warps as f64;
        let progress = dt / self.factor;
        let mut finished = false;
        for r in &mut self.residents {
            r.remaining_base_ns -= progress;
        }
        let mut events = trace;
        self.residents.retain(|r| {
            if r.remaining_base_ns <= EPS_NS {
                self.used_warps -= r.warps;
                self.used_mem -= r.local_mem;
                self.bw_demand -= r.avg_bw;
                self.util.tasks += 1;
                if let Some(events) = events.as_deref_mut() {
                    events.push(TraceEvent {
                        pe: pe_index,
                        group: r.group,
                        start_ns: r.start_ns,
                        end_ns: now,
                        warps: r.warps,
                    });
                }
                finished = true;
                false
            } else {
                true
            }
        });
        if finished {
            self.recompute_factor(pe_bw);
            // Retirement compacts `residents`; rebuild the argmin. The
            // uniform subtraction above cannot change which survivor is
            // minimal (monotone), so no rebuild is needed otherwise.
            self.min_idx = 0;
            for (i, r) in self.residents.iter().enumerate() {
                if r.remaining_base_ns < self.residents[self.min_idx].remaining_base_ns {
                    self.min_idx = i;
                }
            }
        }
        finished
    }
}

/// A fixed-capacity bitset over PE indices. Backs the busy set, the
/// static-placement dirty set, and the admission index's buckets.
#[derive(Debug, Clone)]
pub(crate) struct PeSet {
    words: Vec<u64>,
}

impl PeSet {
    /// An empty set with capacity for `num_pes` PEs.
    pub fn new(num_pes: usize) -> Self {
        PeSet {
            words: vec![0; num_pes.div_ceil(64)],
        }
    }

    /// Inserts `pe` (idempotent).
    pub fn insert(&mut self, pe: usize) {
        self.words[pe / 64] |= 1 << (pe % 64);
    }

    /// Removes `pe` (idempotent).
    pub fn remove(&mut self, pe: usize) {
        self.words[pe / 64] &= !(1 << (pe % 64));
    }

    /// Number of backing words (for snapshot iteration).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `i`-th backing word. Snapshot a word, then walk its set bits
    /// with `trailing_zeros` — this stays correct while bits of the
    /// *live* set are concurrently cleared, which the advance sweep and
    /// the dirty-set drain both rely on.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Calls `f` for every member in ascending PE order.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let pe = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(pe);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peset_insert_remove_iterates_ascending() {
        let mut s = PeSet::new(130);
        for pe in [0, 63, 64, 65, 129, 5] {
            s.insert(pe);
        }
        s.remove(64);
        s.insert(5); // idempotent
        let mut seen = Vec::new();
        s.for_each(|pe| seen.push(pe));
        assert_eq!(seen, vec![0, 5, 63, 65, 129]);
    }

    #[test]
    fn cached_argmin_tracks_admissions_and_retirements() {
        let m = MachineModel::a100();
        let pe_bw = m.pe_bandwidth_bytes_per_ns();
        let mut pe = EventPe::idle();
        let task = |base_ns: f64| PendingTask {
            base_ns,
            warps: 1,
            local_mem: 1024,
            avg_bw: 0.001,
            group: 0,
        };
        pe.admit(&task(300.0), pe_bw, 0.0);
        pe.admit(&task(100.0), pe_bw, 0.0);
        pe.admit(&task(200.0), pe_bw, 0.0);
        assert!((pe.next_completion_ns() - 100.0).abs() < 1e-9);
        // Advance to the earliest completion: the 100 ns task retires
        // and the argmin is rebuilt over the survivors.
        let dt = pe.next_completion_ns();
        assert!(pe.advance(dt, pe_bw, dt, 0, None));
        assert_eq!(pe.resident_count(), 2);
        assert!((pe.next_completion_ns() - 100.0).abs() < 1e-6);
    }
}
