//! Multi-device clusters and collective-communication cost.
//!
//! Tensor-parallel inference (the paper's Llama2-13b setup: four A100s over
//! NVLink) interleaves per-rank GEMMs with all-reduces of the activations.
//! The devices run identical per-rank launches; what a cluster adds is the
//! collective cost, modeled here with the standard ring bound plus a
//! latency floor.

use serde::{Deserialize, Serialize};

use crate::machine::MachineModel;

/// A point-to-point interconnect between the devices of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-direction link bandwidth in GB/s.
    pub link_gbps: f64,
    /// Latency floor per collective, ns (kernel launches, synchronization,
    /// protocol hops).
    pub latency_ns: f64,
}

impl Interconnect {
    /// Third-generation NVLink as on A100 SXM systems: 600 GB/s per
    /// direction, ~20 us small-message collective floor.
    pub fn nvlink3() -> Self {
        Self {
            link_gbps: 600.0,
            latency_ns: 20_000.0,
        }
    }

    /// PCIe 4.0 x16 (~25 GB/s effective per direction, higher latency).
    pub fn pcie4() -> Self {
        Self {
            link_gbps: 25.0,
            latency_ns: 50_000.0,
        }
    }
}

/// A homogeneous multi-device cluster running tensor parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The per-rank device.
    pub machine: MachineModel,
    /// Number of devices (the tensor-parallel degree).
    pub devices: usize,
    /// Device-to-device interconnect.
    pub interconnect: Interconnect,
}

impl Cluster {
    /// Creates a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(machine: MachineModel, devices: usize, interconnect: Interconnect) -> Self {
        assert!(devices > 0, "a cluster needs at least one device");
        Self {
            machine,
            devices,
            interconnect,
        }
    }

    /// The paper's Llama2 testbed: four A100s over NVLink.
    pub fn a100_x4_nvlink() -> Self {
        Self::new(MachineModel::a100(), 4, Interconnect::nvlink3())
    }

    /// Ring all-reduce of `bytes` across the cluster:
    /// `latency + 2(n-1)/n · bytes / link_bw`. Zero for a single device.
    pub fn allreduce_ns(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        let n = self.devices as f64;
        if self.devices == 1 {
            return 0.0;
        }
        self.interconnect.latency_ns + 2.0 * (n - 1.0) / n * bytes / self.interconnect.link_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_needs_no_collective() {
        let c = Cluster::new(MachineModel::a100(), 1, Interconnect::nvlink3());
        assert_eq!(c.allreduce_ns(1e9), 0.0);
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let c = Cluster::a100_x4_nvlink();
        let tiny = c.allreduce_ns(10_240.0); // a decode step's activations
        assert!((tiny - c.interconnect.latency_ns).abs() / tiny < 0.01);
    }

    #[test]
    fn large_messages_approach_the_ring_bound() {
        let c = Cluster::a100_x4_nvlink();
        let bytes = 1e9;
        let ring = 2.0 * 3.0 / 4.0 * bytes / 600.0;
        let t = c.allreduce_ns(bytes);
        assert!((t - ring) / ring < 0.02, "t = {t}, ring = {ring}");
    }

    #[test]
    fn nvlink_beats_pcie() {
        let nv = Cluster::new(MachineModel::a100(), 4, Interconnect::nvlink3());
        let pci = Cluster::new(MachineModel::a100(), 4, Interconnect::pcie4());
        assert!(nv.allreduce_ns(1e8) < pci.allreduce_ns(1e8) / 5.0);
    }

    #[test]
    fn allreduce_grows_with_device_count() {
        let bytes = 1e8;
        let two = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
        let eight = Cluster::new(MachineModel::a100(), 8, Interconnect::nvlink3());
        assert!(eight.allreduce_ns(bytes) > two.allreduce_ns(bytes));
    }
}
