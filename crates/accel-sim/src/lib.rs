//! # accel-sim — a deterministic multi-level accelerator simulator
//!
//! This crate implements the hardware substrate for the MikPoly reproduction.
//! The paper ("Optimizing Dynamic-Shape Neural Networks on Accelerators via
//! On-the-Fly Micro-Kernel Polymerization", ASPLOS 2024) models every target
//! device through a *multi-level accelerator abstraction*
//! `H = (P_multi, M_local, M_global)`:
//!
//! * `P_multi` — a set of identical processing engines (PEs): streaming
//!   multiprocessors on an NVIDIA GPU, DaVinci cores on an Ascend NPU;
//! * `M_local` — fast memory private to one PE (shared memory / L1 buffer);
//! * `M_global` — large memory whose bandwidth is divided equally among PEs.
//!
//! Work is submitted as *pipelined tasks*: a task executes `t` instances of a
//! fixed-size micro-kernel on one PE, overlapping (1) loads from `M_global`
//! to `M_local`, (2) compute on the PE, and (3) write-back of results.
//! A grid of tasks is executed in *waves* across the PEs.
//!
//! The simulator plays the role of the paper's testbed (A100 GPU and Ascend
//! 910A NPU, Table 1/2): it produces the "measurements" that drive offline
//! micro-kernel tuning and performance-model fitting, and the final execution
//! times reported by every experiment. Two first-order phenomena the paper's
//! evaluation hinges on are reproduced faithfully:
//!
//! * **wave quantization / load imbalance** (Fig. 15, Table 9): a grid whose
//!   task count is slightly above a multiple of the wave capacity pays for a
//!   nearly-idle tail wave, visible in the `sm_efficiency` counter;
//! * **tile-size dependent throughput** (roofline): small tiles are
//!   memory-bound and have poor per-warp ILP, very large tiles exhaust
//!   `M_local`.
//!
//! # Example
//!
//! ```
//! use accel_sim::{MachineModel, TaskShape, TaskSpec, Launch, simulate, TimingMode};
//!
//! let machine = MachineModel::a100();
//! // One pipelined task: 128 instances of a 256x128x32 fp16 micro-kernel.
//! let shape = TaskShape::gemm_tile(256, 128, 32, 2, 2, 4);
//! let spec = TaskSpec::new(shape, 8, 128);
//! let launch = Launch::grid(spec, 128);
//! let report = simulate(&machine, &launch, TimingMode::Evaluate);
//! assert!(report.time_ns > 0.0);
//! assert_eq!(report.grid_size, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod cluster;
mod counters;
mod error;
mod events;
mod fault;
pub mod invariants;
mod machine;
mod noise;
#[cfg(any(test, feature = "reference-sim"))]
pub mod reference;
mod scheduler;
mod task;
mod timing;

pub use cluster::{Cluster, Interconnect};
pub use counters::{PeUtilization, SimReport};
pub use error::SimError;
pub use fault::FaultPlan;
pub use invariants::{
    check_deterministic_replay, check_launch, check_report, check_trace, InvariantViolation,
};
pub use machine::{AllocationPolicy, MachineModel, MmaShape};
pub use noise::{hash_f64, unit_noise};
#[cfg(any(test, feature = "reference-sim"))]
pub use reference::{simulate_reference, simulate_reference_profiled, simulate_reference_traced};
pub use scheduler::{
    simulate, simulate_launches, simulate_profiled, simulate_traced, try_simulate,
    try_simulate_launches, try_simulate_traced, SimProfile, TraceEvent,
};
pub use task::{Launch, TaskGroup, TaskShape, TaskSpec};
pub use timing::{
    compute_efficiency, measure_pipelined_task, pipelined_task_ns, KernelTiming, TimingMode,
};
