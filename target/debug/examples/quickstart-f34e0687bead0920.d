/root/repo/target/debug/examples/quickstart-f34e0687bead0920.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f34e0687bead0920: examples/quickstart.rs

examples/quickstart.rs:
