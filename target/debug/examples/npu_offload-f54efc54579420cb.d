/root/repo/target/debug/examples/npu_offload-f54efc54579420cb.d: examples/npu_offload.rs Cargo.toml

/root/repo/target/debug/examples/libnpu_offload-f54efc54579420cb.rmeta: examples/npu_offload.rs Cargo.toml

examples/npu_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
