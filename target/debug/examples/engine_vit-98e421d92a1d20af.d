/root/repo/target/debug/examples/engine_vit-98e421d92a1d20af.d: examples/engine_vit.rs Cargo.toml

/root/repo/target/debug/examples/libengine_vit-98e421d92a1d20af.rmeta: examples/engine_vit.rs Cargo.toml

examples/engine_vit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
