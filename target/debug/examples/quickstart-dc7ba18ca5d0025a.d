/root/repo/target/debug/examples/quickstart-dc7ba18ca5d0025a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-dc7ba18ca5d0025a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
