/root/repo/target/debug/examples/llama_inference-c8b71b7545c1259e.d: examples/llama_inference.rs

/root/repo/target/debug/examples/llama_inference-c8b71b7545c1259e: examples/llama_inference.rs

examples/llama_inference.rs:
