/root/repo/target/debug/examples/bert_serving-3ab7dd934e93e9a6.d: examples/bert_serving.rs Cargo.toml

/root/repo/target/debug/examples/libbert_serving-3ab7dd934e93e9a6.rmeta: examples/bert_serving.rs Cargo.toml

examples/bert_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
