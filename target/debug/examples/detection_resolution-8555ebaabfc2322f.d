/root/repo/target/debug/examples/detection_resolution-8555ebaabfc2322f.d: examples/detection_resolution.rs

/root/repo/target/debug/examples/detection_resolution-8555ebaabfc2322f: examples/detection_resolution.rs

examples/detection_resolution.rs:
