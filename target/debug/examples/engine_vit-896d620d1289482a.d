/root/repo/target/debug/examples/engine_vit-896d620d1289482a.d: examples/engine_vit.rs

/root/repo/target/debug/examples/engine_vit-896d620d1289482a: examples/engine_vit.rs

examples/engine_vit.rs:
