/root/repo/target/debug/examples/inflight_batching-865cb5bd0046b1f4.d: examples/inflight_batching.rs Cargo.toml

/root/repo/target/debug/examples/libinflight_batching-865cb5bd0046b1f4.rmeta: examples/inflight_batching.rs Cargo.toml

examples/inflight_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
