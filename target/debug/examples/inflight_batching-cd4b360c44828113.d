/root/repo/target/debug/examples/inflight_batching-cd4b360c44828113.d: examples/inflight_batching.rs

/root/repo/target/debug/examples/inflight_batching-cd4b360c44828113: examples/inflight_batching.rs

examples/inflight_batching.rs:
