/root/repo/target/debug/examples/bert_serving-c7a959a0aa3b0de1.d: examples/bert_serving.rs

/root/repo/target/debug/examples/bert_serving-c7a959a0aa3b0de1: examples/bert_serving.rs

examples/bert_serving.rs:
