/root/repo/target/debug/examples/compiler_shootout-7f5b3cac19f00456.d: examples/compiler_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libcompiler_shootout-7f5b3cac19f00456.rmeta: examples/compiler_shootout.rs Cargo.toml

examples/compiler_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
