/root/repo/target/debug/examples/detection_resolution-674ed93eb6bc36f1.d: examples/detection_resolution.rs Cargo.toml

/root/repo/target/debug/examples/libdetection_resolution-674ed93eb6bc36f1.rmeta: examples/detection_resolution.rs Cargo.toml

examples/detection_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
