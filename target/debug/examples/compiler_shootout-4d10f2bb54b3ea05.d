/root/repo/target/debug/examples/compiler_shootout-4d10f2bb54b3ea05.d: examples/compiler_shootout.rs

/root/repo/target/debug/examples/compiler_shootout-4d10f2bb54b3ea05: examples/compiler_shootout.rs

examples/compiler_shootout.rs:
