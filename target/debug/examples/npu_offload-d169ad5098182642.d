/root/repo/target/debug/examples/npu_offload-d169ad5098182642.d: examples/npu_offload.rs

/root/repo/target/debug/examples/npu_offload-d169ad5098182642: examples/npu_offload.rs

examples/npu_offload.rs:
