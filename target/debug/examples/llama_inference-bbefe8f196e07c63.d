/root/repo/target/debug/examples/llama_inference-bbefe8f196e07c63.d: examples/llama_inference.rs Cargo.toml

/root/repo/target/debug/examples/libllama_inference-bbefe8f196e07c63.rmeta: examples/llama_inference.rs Cargo.toml

examples/llama_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
