/root/repo/target/debug/deps/suites_and_models-4b4b89330d386961.d: tests/suites_and_models.rs Cargo.toml

/root/repo/target/debug/deps/libsuites_and_models-4b4b89330d386961.rmeta: tests/suites_and_models.rs Cargo.toml

tests/suites_and_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
