/root/repo/target/debug/deps/baseline_properties-0aaaf982b27906f6.d: tests/baseline_properties.rs

/root/repo/target/debug/deps/baseline_properties-0aaaf982b27906f6: tests/baseline_properties.rs

tests/baseline_properties.rs:
