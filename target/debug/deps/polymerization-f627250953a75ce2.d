/root/repo/target/debug/deps/polymerization-f627250953a75ce2.d: crates/bench/benches/polymerization.rs Cargo.toml

/root/repo/target/debug/deps/libpolymerization-f627250953a75ce2.rmeta: crates/bench/benches/polymerization.rs Cargo.toml

crates/bench/benches/polymerization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
