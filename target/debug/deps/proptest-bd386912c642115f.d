/root/repo/target/debug/deps/proptest-bd386912c642115f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bd386912c642115f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
