/root/repo/target/debug/deps/mikpoly_suite-7139f333ae50d096.d: src/lib.rs

/root/repo/target/debug/deps/mikpoly_suite-7139f333ae50d096: src/lib.rs

src/lib.rs:
