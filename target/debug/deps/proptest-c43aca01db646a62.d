/root/repo/target/debug/deps/proptest-c43aca01db646a62.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c43aca01db646a62.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c43aca01db646a62.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
