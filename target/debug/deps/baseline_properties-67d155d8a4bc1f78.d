/root/repo/target/debug/deps/baseline_properties-67d155d8a4bc1f78.d: tests/baseline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_properties-67d155d8a4bc1f78.rmeta: tests/baseline_properties.rs Cargo.toml

tests/baseline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
