/root/repo/target/debug/deps/tensor_ir-218ceff5ff7d5cdc.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ir-218ceff5ff7d5cdc.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs Cargo.toml

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/dtype.rs:
crates/tensor-ir/src/im2col.rs:
crates/tensor-ir/src/operator.rs:
crates/tensor-ir/src/shape.rs:
crates/tensor-ir/src/template.rs:
crates/tensor-ir/src/tensor.rs:
crates/tensor-ir/src/winograd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
