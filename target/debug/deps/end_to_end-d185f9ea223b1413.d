/root/repo/target/debug/deps/end_to_end-d185f9ea223b1413.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d185f9ea223b1413: tests/end_to_end.rs

tests/end_to_end.rs:
