/root/repo/target/debug/deps/paper_experiments-ad1ae200edf4dc82.d: crates/bench/benches/paper_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_experiments-ad1ae200edf4dc82.rmeta: crates/bench/benches/paper_experiments.rs Cargo.toml

crates/bench/benches/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
