/root/repo/target/debug/deps/mikpoly_suite-18645c5cb0cccf46.d: src/lib.rs

/root/repo/target/debug/deps/libmikpoly_suite-18645c5cb0cccf46.rlib: src/lib.rs

/root/repo/target/debug/deps/libmikpoly_suite-18645c5cb0cccf46.rmeta: src/lib.rs

src/lib.rs:
