/root/repo/target/debug/deps/offline_stage-fcb867431ba0b226.d: crates/bench/benches/offline_stage.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_stage-fcb867431ba0b226.rmeta: crates/bench/benches/offline_stage.rs Cargo.toml

crates/bench/benches/offline_stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
