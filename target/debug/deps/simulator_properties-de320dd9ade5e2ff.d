/root/repo/target/debug/deps/simulator_properties-de320dd9ade5e2ff.d: tests/simulator_properties.rs

/root/repo/target/debug/deps/simulator_properties-de320dd9ade5e2ff: tests/simulator_properties.rs

tests/simulator_properties.rs:
