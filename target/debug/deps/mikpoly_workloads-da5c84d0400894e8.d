/root/repo/target/debug/deps/mikpoly_workloads-da5c84d0400894e8.d: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_workloads-da5c84d0400894e8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/conv_suite.rs:
crates/workloads/src/gemm_suite.rs:
crates/workloads/src/sampling.rs:
crates/workloads/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
