/root/repo/target/debug/deps/engine_integration-21fad38daabd71bc.d: tests/engine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_integration-21fad38daabd71bc.rmeta: tests/engine_integration.rs Cargo.toml

tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
