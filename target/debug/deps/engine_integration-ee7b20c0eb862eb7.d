/root/repo/target/debug/deps/engine_integration-ee7b20c0eb862eb7.d: tests/engine_integration.rs

/root/repo/target/debug/deps/engine_integration-ee7b20c0eb862eb7: tests/engine_integration.rs

tests/engine_integration.rs:
