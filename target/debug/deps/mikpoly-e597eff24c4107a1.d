/root/repo/target/debug/deps/mikpoly-e597eff24c4107a1.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly-e597eff24c4107a1.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/cache.rs:
crates/core/src/compiler.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/exec.rs:
crates/core/src/kernel.rs:
crates/core/src/offline.rs:
crates/core/src/pattern.rs:
crates/core/src/perf_model.rs:
crates/core/src/plan.rs:
crates/core/src/search.rs:
crates/core/src/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
