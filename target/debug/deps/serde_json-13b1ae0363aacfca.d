/root/repo/target/debug/deps/serde_json-13b1ae0363aacfca.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-13b1ae0363aacfca.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-13b1ae0363aacfca.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
