/root/repo/target/debug/deps/mikpoly_bench-3b1ad164e48b8c27.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/expectations.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/abl_patterns.rs crates/bench/src/experiments/abl_search.rs crates/bench/src/experiments/case_study.rs crates/bench/src/experiments/ext_colaunch.rs crates/bench/src/experiments/ext_fusion.rs crates/bench/src/experiments/ext_portability.rs crates/bench/src/experiments/ext_serving.rs crates/bench/src/experiments/ext_splitk.rs crates/bench/src/experiments/ext_winograd.rs crates/bench/src/experiments/fig01.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12a.rs crates/bench/src/experiments/fig12b.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/npu_e2e.rs crates/bench/src/experiments/tab05.rs crates/bench/src/experiments/tab08.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/setup.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_bench-3b1ad164e48b8c27.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/expectations.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/abl_patterns.rs crates/bench/src/experiments/abl_search.rs crates/bench/src/experiments/case_study.rs crates/bench/src/experiments/ext_colaunch.rs crates/bench/src/experiments/ext_fusion.rs crates/bench/src/experiments/ext_portability.rs crates/bench/src/experiments/ext_serving.rs crates/bench/src/experiments/ext_splitk.rs crates/bench/src/experiments/ext_winograd.rs crates/bench/src/experiments/fig01.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12a.rs crates/bench/src/experiments/fig12b.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/npu_e2e.rs crates/bench/src/experiments/tab05.rs crates/bench/src/experiments/tab08.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/setup.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/expectations.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/abl_patterns.rs:
crates/bench/src/experiments/abl_search.rs:
crates/bench/src/experiments/case_study.rs:
crates/bench/src/experiments/ext_colaunch.rs:
crates/bench/src/experiments/ext_fusion.rs:
crates/bench/src/experiments/ext_portability.rs:
crates/bench/src/experiments/ext_serving.rs:
crates/bench/src/experiments/ext_splitk.rs:
crates/bench/src/experiments/ext_winograd.rs:
crates/bench/src/experiments/fig01.rs:
crates/bench/src/experiments/fig06.rs:
crates/bench/src/experiments/fig07.rs:
crates/bench/src/experiments/fig08.rs:
crates/bench/src/experiments/fig09.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12a.rs:
crates/bench/src/experiments/fig12b.rs:
crates/bench/src/experiments/fig13.rs:
crates/bench/src/experiments/npu_e2e.rs:
crates/bench/src/experiments/tab05.rs:
crates/bench/src/experiments/tab08.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/setup.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
