/root/repo/target/debug/deps/serving_concurrency-68c093422f197bda.d: tests/serving_concurrency.rs

/root/repo/target/debug/deps/serving_concurrency-68c093422f197bda: tests/serving_concurrency.rs

tests/serving_concurrency.rs:
