/root/repo/target/debug/deps/tensor_ir-0c7e9acf2225565b.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

/root/repo/target/debug/deps/libtensor_ir-0c7e9acf2225565b.rlib: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

/root/repo/target/debug/deps/libtensor_ir-0c7e9acf2225565b.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/dtype.rs:
crates/tensor-ir/src/im2col.rs:
crates/tensor-ir/src/operator.rs:
crates/tensor-ir/src/shape.rs:
crates/tensor-ir/src/template.rs:
crates/tensor-ir/src/tensor.rs:
crates/tensor-ir/src/winograd.rs:
