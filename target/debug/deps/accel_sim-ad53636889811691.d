/root/repo/target/debug/deps/accel_sim-ad53636889811691.d: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

/root/repo/target/debug/deps/libaccel_sim-ad53636889811691.rlib: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

/root/repo/target/debug/deps/libaccel_sim-ad53636889811691.rmeta: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

crates/accel-sim/src/lib.rs:
crates/accel-sim/src/cluster.rs:
crates/accel-sim/src/counters.rs:
crates/accel-sim/src/machine.rs:
crates/accel-sim/src/noise.rs:
crates/accel-sim/src/scheduler.rs:
crates/accel-sim/src/task.rs:
crates/accel-sim/src/timing.rs:
