/root/repo/target/debug/deps/mikpoly_suite-99e29e624349710e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_suite-99e29e624349710e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
