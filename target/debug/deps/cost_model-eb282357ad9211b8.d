/root/repo/target/debug/deps/cost_model-eb282357ad9211b8.d: crates/bench/benches/cost_model.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model-eb282357ad9211b8.rmeta: crates/bench/benches/cost_model.rs Cargo.toml

crates/bench/benches/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
