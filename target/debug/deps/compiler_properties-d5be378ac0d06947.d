/root/repo/target/debug/deps/compiler_properties-d5be378ac0d06947.d: tests/compiler_properties.rs

/root/repo/target/debug/deps/compiler_properties-d5be378ac0d06947: tests/compiler_properties.rs

tests/compiler_properties.rs:
