/root/repo/target/debug/deps/suites_and_models-48d4038a9ede38e3.d: tests/suites_and_models.rs

/root/repo/target/debug/deps/suites_and_models-48d4038a9ede38e3: tests/suites_and_models.rs

tests/suites_and_models.rs:
