/root/repo/target/debug/deps/compiler_properties-963f1970c3f9597e.d: tests/compiler_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcompiler_properties-963f1970c3f9597e.rmeta: tests/compiler_properties.rs Cargo.toml

tests/compiler_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
