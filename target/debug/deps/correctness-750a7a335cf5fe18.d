/root/repo/target/debug/deps/correctness-750a7a335cf5fe18.d: tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-750a7a335cf5fe18.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
