/root/repo/target/debug/deps/simulator_properties-ef549fb477facd7b.d: tests/simulator_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_properties-ef549fb477facd7b.rmeta: tests/simulator_properties.rs Cargo.toml

tests/simulator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
