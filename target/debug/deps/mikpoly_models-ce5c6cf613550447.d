/root/repo/target/debug/deps/mikpoly_models-ce5c6cf613550447.d: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/libmikpoly_models-ce5c6cf613550447.rlib: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/libmikpoly_models-ce5c6cf613550447.rmeta: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/cnns.rs:
crates/models/src/graph.rs:
crates/models/src/llama.rs:
crates/models/src/transformers.rs:
crates/models/src/vit.rs:
