/root/repo/target/debug/deps/mikpoly_workloads-72db4aff2667a4c1.d: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

/root/repo/target/debug/deps/libmikpoly_workloads-72db4aff2667a4c1.rlib: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

/root/repo/target/debug/deps/libmikpoly_workloads-72db4aff2667a4c1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

crates/workloads/src/lib.rs:
crates/workloads/src/conv_suite.rs:
crates/workloads/src/gemm_suite.rs:
crates/workloads/src/sampling.rs:
crates/workloads/src/sweeps.rs:
