/root/repo/target/debug/deps/correctness-52b995c36060b5e0.d: tests/correctness.rs

/root/repo/target/debug/deps/correctness-52b995c36060b5e0: tests/correctness.rs

tests/correctness.rs:
