/root/repo/target/debug/deps/mikpoly-9537282c1203a41a.d: crates/core/src/bin/mikpoly.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly-9537282c1203a41a.rmeta: crates/core/src/bin/mikpoly.rs Cargo.toml

crates/core/src/bin/mikpoly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
