/root/repo/target/debug/deps/mikpoly_baselines-123639f0243453fa.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/debug/deps/libmikpoly_baselines-123639f0243453fa.rlib: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/debug/deps/libmikpoly_baselines-123639f0243453fa.rmeta: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
