/root/repo/target/debug/deps/mikpoly-bd5474dd4f3395bd.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs

/root/repo/target/debug/deps/libmikpoly-bd5474dd4f3395bd.rlib: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs

/root/repo/target/debug/deps/libmikpoly-bd5474dd4f3395bd.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/cache.rs:
crates/core/src/compiler.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/exec.rs:
crates/core/src/kernel.rs:
crates/core/src/offline.rs:
crates/core/src/pattern.rs:
crates/core/src/perf_model.rs:
crates/core/src/plan.rs:
crates/core/src/search.rs:
crates/core/src/serving.rs:
