/root/repo/target/debug/deps/mikpoly-18f8f344cbff6986.d: crates/core/src/bin/mikpoly.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly-18f8f344cbff6986.rmeta: crates/core/src/bin/mikpoly.rs Cargo.toml

crates/core/src/bin/mikpoly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
