/root/repo/target/debug/deps/mikpoly_baselines-975c800304728983.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_baselines-975c800304728983.rmeta: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
