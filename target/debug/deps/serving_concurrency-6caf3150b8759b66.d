/root/repo/target/debug/deps/serving_concurrency-6caf3150b8759b66.d: tests/serving_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libserving_concurrency-6caf3150b8759b66.rmeta: tests/serving_concurrency.rs Cargo.toml

tests/serving_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
