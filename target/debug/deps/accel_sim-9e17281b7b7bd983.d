/root/repo/target/debug/deps/accel_sim-9e17281b7b7bd983.d: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libaccel_sim-9e17281b7b7bd983.rmeta: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs Cargo.toml

crates/accel-sim/src/lib.rs:
crates/accel-sim/src/cluster.rs:
crates/accel-sim/src/counters.rs:
crates/accel-sim/src/machine.rs:
crates/accel-sim/src/noise.rs:
crates/accel-sim/src/scheduler.rs:
crates/accel-sim/src/task.rs:
crates/accel-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
