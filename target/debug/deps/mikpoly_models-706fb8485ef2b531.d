/root/repo/target/debug/deps/mikpoly_models-706fb8485ef2b531.d: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_models-706fb8485ef2b531.rmeta: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/cnns.rs:
crates/models/src/graph.rs:
crates/models/src/llama.rs:
crates/models/src/transformers.rs:
crates/models/src/vit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
