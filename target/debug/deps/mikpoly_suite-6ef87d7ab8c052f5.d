/root/repo/target/debug/deps/mikpoly_suite-6ef87d7ab8c052f5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmikpoly_suite-6ef87d7ab8c052f5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
