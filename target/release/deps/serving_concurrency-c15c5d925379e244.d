/root/repo/target/release/deps/serving_concurrency-c15c5d925379e244.d: tests/serving_concurrency.rs

/root/repo/target/release/deps/serving_concurrency-c15c5d925379e244: tests/serving_concurrency.rs

tests/serving_concurrency.rs:
