/root/repo/target/release/deps/mikpoly-7769b66781027bce.d: crates/core/src/bin/mikpoly.rs Cargo.toml

/root/repo/target/release/deps/libmikpoly-7769b66781027bce.rmeta: crates/core/src/bin/mikpoly.rs Cargo.toml

crates/core/src/bin/mikpoly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
