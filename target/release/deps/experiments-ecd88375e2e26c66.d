/root/repo/target/release/deps/experiments-ecd88375e2e26c66.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-ecd88375e2e26c66: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
