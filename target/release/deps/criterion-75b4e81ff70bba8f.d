/root/repo/target/release/deps/criterion-75b4e81ff70bba8f.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-75b4e81ff70bba8f: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
