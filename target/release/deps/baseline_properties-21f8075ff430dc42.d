/root/repo/target/release/deps/baseline_properties-21f8075ff430dc42.d: tests/baseline_properties.rs

/root/repo/target/release/deps/baseline_properties-21f8075ff430dc42: tests/baseline_properties.rs

tests/baseline_properties.rs:
