/root/repo/target/release/deps/mikpoly_baselines-9555e3fd2b8be526.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/release/deps/libmikpoly_baselines-9555e3fd2b8be526.rlib: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/release/deps/libmikpoly_baselines-9555e3fd2b8be526.rmeta: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
