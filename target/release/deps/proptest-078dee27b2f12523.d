/root/repo/target/release/deps/proptest-078dee27b2f12523.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-078dee27b2f12523: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
