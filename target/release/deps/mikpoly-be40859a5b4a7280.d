/root/repo/target/release/deps/mikpoly-be40859a5b4a7280.d: crates/core/src/bin/mikpoly.rs Cargo.toml

/root/repo/target/release/deps/libmikpoly-be40859a5b4a7280.rmeta: crates/core/src/bin/mikpoly.rs Cargo.toml

crates/core/src/bin/mikpoly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
