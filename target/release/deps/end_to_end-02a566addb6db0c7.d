/root/repo/target/release/deps/end_to_end-02a566addb6db0c7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-02a566addb6db0c7: tests/end_to_end.rs

tests/end_to_end.rs:
