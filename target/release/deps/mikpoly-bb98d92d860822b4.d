/root/repo/target/release/deps/mikpoly-bb98d92d860822b4.d: crates/core/src/bin/mikpoly.rs

/root/repo/target/release/deps/mikpoly-bb98d92d860822b4: crates/core/src/bin/mikpoly.rs

crates/core/src/bin/mikpoly.rs:
