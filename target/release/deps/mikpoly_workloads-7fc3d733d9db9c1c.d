/root/repo/target/release/deps/mikpoly_workloads-7fc3d733d9db9c1c.d: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs Cargo.toml

/root/repo/target/release/deps/libmikpoly_workloads-7fc3d733d9db9c1c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/conv_suite.rs:
crates/workloads/src/gemm_suite.rs:
crates/workloads/src/sampling.rs:
crates/workloads/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
