/root/repo/target/release/deps/suites_and_models-246caf8fe0b1f170.d: tests/suites_and_models.rs

/root/repo/target/release/deps/suites_and_models-246caf8fe0b1f170: tests/suites_and_models.rs

tests/suites_and_models.rs:
