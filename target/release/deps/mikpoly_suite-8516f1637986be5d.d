/root/repo/target/release/deps/mikpoly_suite-8516f1637986be5d.d: src/lib.rs

/root/repo/target/release/deps/mikpoly_suite-8516f1637986be5d: src/lib.rs

src/lib.rs:
