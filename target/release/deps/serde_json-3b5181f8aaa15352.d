/root/repo/target/release/deps/serde_json-3b5181f8aaa15352.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3b5181f8aaa15352.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3b5181f8aaa15352.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
