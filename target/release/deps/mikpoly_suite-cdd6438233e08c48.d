/root/repo/target/release/deps/mikpoly_suite-cdd6438233e08c48.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmikpoly_suite-cdd6438233e08c48.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
