/root/repo/target/release/deps/simulator_properties-658fa57ed3760e82.d: tests/simulator_properties.rs

/root/repo/target/release/deps/simulator_properties-658fa57ed3760e82: tests/simulator_properties.rs

tests/simulator_properties.rs:
