/root/repo/target/release/deps/criterion-e9c6759ecaa4e832.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-e9c6759ecaa4e832.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
