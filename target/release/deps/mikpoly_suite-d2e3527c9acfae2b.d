/root/repo/target/release/deps/mikpoly_suite-d2e3527c9acfae2b.d: src/lib.rs

/root/repo/target/release/deps/libmikpoly_suite-d2e3527c9acfae2b.rlib: src/lib.rs

/root/repo/target/release/deps/libmikpoly_suite-d2e3527c9acfae2b.rmeta: src/lib.rs

src/lib.rs:
