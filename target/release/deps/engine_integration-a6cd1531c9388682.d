/root/repo/target/release/deps/engine_integration-a6cd1531c9388682.d: tests/engine_integration.rs Cargo.toml

/root/repo/target/release/deps/libengine_integration-a6cd1531c9388682.rmeta: tests/engine_integration.rs Cargo.toml

tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
