/root/repo/target/release/deps/mikpoly_suite-a8a290015b708069.d: src/lib.rs

/root/repo/target/release/deps/libmikpoly_suite-a8a290015b708069.rlib: src/lib.rs

/root/repo/target/release/deps/libmikpoly_suite-a8a290015b708069.rmeta: src/lib.rs

src/lib.rs:
