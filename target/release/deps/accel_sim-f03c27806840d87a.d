/root/repo/target/release/deps/accel_sim-f03c27806840d87a.d: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

/root/repo/target/release/deps/libaccel_sim-f03c27806840d87a.rlib: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

/root/repo/target/release/deps/libaccel_sim-f03c27806840d87a.rmeta: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs

crates/accel-sim/src/lib.rs:
crates/accel-sim/src/cluster.rs:
crates/accel-sim/src/counters.rs:
crates/accel-sim/src/machine.rs:
crates/accel-sim/src/noise.rs:
crates/accel-sim/src/scheduler.rs:
crates/accel-sim/src/task.rs:
crates/accel-sim/src/timing.rs:
