/root/repo/target/release/deps/offline_stage-619cfa410bbc8ebf.d: crates/bench/benches/offline_stage.rs Cargo.toml

/root/repo/target/release/deps/liboffline_stage-619cfa410bbc8ebf.rmeta: crates/bench/benches/offline_stage.rs Cargo.toml

crates/bench/benches/offline_stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
