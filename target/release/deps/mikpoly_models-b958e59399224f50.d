/root/repo/target/release/deps/mikpoly_models-b958e59399224f50.d: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libmikpoly_models-b958e59399224f50.rlib: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libmikpoly_models-b958e59399224f50.rmeta: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/cnns.rs:
crates/models/src/graph.rs:
crates/models/src/llama.rs:
crates/models/src/transformers.rs:
crates/models/src/vit.rs:
