/root/repo/target/release/deps/cost_model-3a656c8b0fe77376.d: crates/bench/benches/cost_model.rs Cargo.toml

/root/repo/target/release/deps/libcost_model-3a656c8b0fe77376.rmeta: crates/bench/benches/cost_model.rs Cargo.toml

crates/bench/benches/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
