/root/repo/target/release/deps/engine_integration-2829662ef013d218.d: tests/engine_integration.rs

/root/repo/target/release/deps/engine_integration-2829662ef013d218: tests/engine_integration.rs

tests/engine_integration.rs:
