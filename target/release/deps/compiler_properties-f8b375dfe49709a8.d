/root/repo/target/release/deps/compiler_properties-f8b375dfe49709a8.d: tests/compiler_properties.rs Cargo.toml

/root/repo/target/release/deps/libcompiler_properties-f8b375dfe49709a8.rmeta: tests/compiler_properties.rs Cargo.toml

tests/compiler_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
