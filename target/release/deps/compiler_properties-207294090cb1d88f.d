/root/repo/target/release/deps/compiler_properties-207294090cb1d88f.d: tests/compiler_properties.rs

/root/repo/target/release/deps/compiler_properties-207294090cb1d88f: tests/compiler_properties.rs

tests/compiler_properties.rs:
