/root/repo/target/release/deps/mikpoly_workloads-2386d49ea58c5418.d: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

/root/repo/target/release/deps/libmikpoly_workloads-2386d49ea58c5418.rlib: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

/root/repo/target/release/deps/libmikpoly_workloads-2386d49ea58c5418.rmeta: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

crates/workloads/src/lib.rs:
crates/workloads/src/conv_suite.rs:
crates/workloads/src/gemm_suite.rs:
crates/workloads/src/sampling.rs:
crates/workloads/src/sweeps.rs:
