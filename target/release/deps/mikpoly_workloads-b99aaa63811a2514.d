/root/repo/target/release/deps/mikpoly_workloads-b99aaa63811a2514.d: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

/root/repo/target/release/deps/mikpoly_workloads-b99aaa63811a2514: crates/workloads/src/lib.rs crates/workloads/src/conv_suite.rs crates/workloads/src/gemm_suite.rs crates/workloads/src/sampling.rs crates/workloads/src/sweeps.rs

crates/workloads/src/lib.rs:
crates/workloads/src/conv_suite.rs:
crates/workloads/src/gemm_suite.rs:
crates/workloads/src/sampling.rs:
crates/workloads/src/sweeps.rs:
