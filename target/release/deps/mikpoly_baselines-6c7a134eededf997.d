/root/repo/target/release/deps/mikpoly_baselines-6c7a134eededf997.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs Cargo.toml

/root/repo/target/release/deps/libmikpoly_baselines-6c7a134eededf997.rmeta: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
