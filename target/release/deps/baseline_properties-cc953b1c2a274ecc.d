/root/repo/target/release/deps/baseline_properties-cc953b1c2a274ecc.d: tests/baseline_properties.rs Cargo.toml

/root/repo/target/release/deps/libbaseline_properties-cc953b1c2a274ecc.rmeta: tests/baseline_properties.rs Cargo.toml

tests/baseline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
