/root/repo/target/release/deps/rand-02c9acb9cbb485ee.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-02c9acb9cbb485ee.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
