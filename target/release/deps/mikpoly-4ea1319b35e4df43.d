/root/repo/target/release/deps/mikpoly-4ea1319b35e4df43.d: crates/core/src/bin/mikpoly.rs

/root/repo/target/release/deps/mikpoly-4ea1319b35e4df43: crates/core/src/bin/mikpoly.rs

crates/core/src/bin/mikpoly.rs:
