/root/repo/target/release/deps/end_to_end-41f8f51ed46db7ca.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-41f8f51ed46db7ca: tests/end_to_end.rs

tests/end_to_end.rs:
