/root/repo/target/release/deps/engine_integration-10668662075e8324.d: tests/engine_integration.rs

/root/repo/target/release/deps/engine_integration-10668662075e8324: tests/engine_integration.rs

tests/engine_integration.rs:
