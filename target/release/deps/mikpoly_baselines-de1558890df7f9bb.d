/root/repo/target/release/deps/mikpoly_baselines-de1558890df7f9bb.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/release/deps/mikpoly_baselines-de1558890df7f9bb: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
