/root/repo/target/release/deps/simulator_properties-9b27cbb9748c1f15.d: tests/simulator_properties.rs

/root/repo/target/release/deps/simulator_properties-9b27cbb9748c1f15: tests/simulator_properties.rs

tests/simulator_properties.rs:
