/root/repo/target/release/deps/proptest-c30ccf89f1a4a44d.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-c30ccf89f1a4a44d.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
