/root/repo/target/release/deps/mikpoly_baselines-2671214f8ea265df.d: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/release/deps/libmikpoly_baselines-2671214f8ea265df.rlib: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

/root/repo/target/release/deps/libmikpoly_baselines-2671214f8ea265df.rmeta: crates/baselines/src/lib.rs crates/baselines/src/adapter.rs crates/baselines/src/backend.rs crates/baselines/src/cutlass.rs crates/baselines/src/dietcode.rs crates/baselines/src/nimble.rs crates/baselines/src/vendor.rs

crates/baselines/src/lib.rs:
crates/baselines/src/adapter.rs:
crates/baselines/src/backend.rs:
crates/baselines/src/cutlass.rs:
crates/baselines/src/dietcode.rs:
crates/baselines/src/nimble.rs:
crates/baselines/src/vendor.rs:
