/root/repo/target/release/deps/serde_json-c3146d3b74c7e443.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-c3146d3b74c7e443.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
