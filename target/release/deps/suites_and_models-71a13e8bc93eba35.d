/root/repo/target/release/deps/suites_and_models-71a13e8bc93eba35.d: tests/suites_and_models.rs

/root/repo/target/release/deps/suites_and_models-71a13e8bc93eba35: tests/suites_and_models.rs

tests/suites_and_models.rs:
