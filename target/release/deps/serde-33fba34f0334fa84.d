/root/repo/target/release/deps/serde-33fba34f0334fa84.d: vendor/serde/src/lib.rs vendor/serde/src/json.rs Cargo.toml

/root/repo/target/release/deps/libserde-33fba34f0334fa84.rmeta: vendor/serde/src/lib.rs vendor/serde/src/json.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
