/root/repo/target/release/deps/mikpoly_suite-ebc710ccb927fb16.d: src/lib.rs

/root/repo/target/release/deps/mikpoly_suite-ebc710ccb927fb16: src/lib.rs

src/lib.rs:
