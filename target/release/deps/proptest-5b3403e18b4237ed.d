/root/repo/target/release/deps/proptest-5b3403e18b4237ed.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-5b3403e18b4237ed.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
