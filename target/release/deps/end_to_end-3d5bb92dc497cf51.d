/root/repo/target/release/deps/end_to_end-3d5bb92dc497cf51.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-3d5bb92dc497cf51.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
