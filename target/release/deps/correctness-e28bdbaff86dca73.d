/root/repo/target/release/deps/correctness-e28bdbaff86dca73.d: tests/correctness.rs Cargo.toml

/root/repo/target/release/deps/libcorrectness-e28bdbaff86dca73.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
