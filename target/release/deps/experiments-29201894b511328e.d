/root/repo/target/release/deps/experiments-29201894b511328e.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-29201894b511328e.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
