/root/repo/target/release/deps/proptest-5c2342604da36ffe.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5c2342604da36ffe.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5c2342604da36ffe.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
