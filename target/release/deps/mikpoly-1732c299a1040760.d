/root/repo/target/release/deps/mikpoly-1732c299a1040760.d: crates/core/src/bin/mikpoly.rs

/root/repo/target/release/deps/mikpoly-1732c299a1040760: crates/core/src/bin/mikpoly.rs

crates/core/src/bin/mikpoly.rs:
