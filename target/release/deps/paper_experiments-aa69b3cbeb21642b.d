/root/repo/target/release/deps/paper_experiments-aa69b3cbeb21642b.d: crates/bench/benches/paper_experiments.rs Cargo.toml

/root/repo/target/release/deps/libpaper_experiments-aa69b3cbeb21642b.rmeta: crates/bench/benches/paper_experiments.rs Cargo.toml

crates/bench/benches/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
