/root/repo/target/release/deps/experiments-d043f7bcd7b1f2ca.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d043f7bcd7b1f2ca: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
