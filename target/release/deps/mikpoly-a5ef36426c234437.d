/root/repo/target/release/deps/mikpoly-a5ef36426c234437.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs

/root/repo/target/release/deps/mikpoly-a5ef36426c234437: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/cache.rs crates/core/src/compiler.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/offline.rs crates/core/src/pattern.rs crates/core/src/perf_model.rs crates/core/src/plan.rs crates/core/src/search.rs crates/core/src/serving.rs

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/cache.rs:
crates/core/src/compiler.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/exec.rs:
crates/core/src/kernel.rs:
crates/core/src/offline.rs:
crates/core/src/pattern.rs:
crates/core/src/perf_model.rs:
crates/core/src/plan.rs:
crates/core/src/search.rs:
crates/core/src/serving.rs:
