/root/repo/target/release/deps/serde_json-6ab7c03ad7f66383.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-6ab7c03ad7f66383.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
