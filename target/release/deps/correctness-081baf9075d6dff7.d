/root/repo/target/release/deps/correctness-081baf9075d6dff7.d: tests/correctness.rs

/root/repo/target/release/deps/correctness-081baf9075d6dff7: tests/correctness.rs

tests/correctness.rs:
