/root/repo/target/release/deps/correctness-69c26ef15d2d0dcb.d: tests/correctness.rs

/root/repo/target/release/deps/correctness-69c26ef15d2d0dcb: tests/correctness.rs

tests/correctness.rs:
