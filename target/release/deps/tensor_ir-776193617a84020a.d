/root/repo/target/release/deps/tensor_ir-776193617a84020a.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

/root/repo/target/release/deps/libtensor_ir-776193617a84020a.rlib: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

/root/repo/target/release/deps/libtensor_ir-776193617a84020a.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/dtype.rs crates/tensor-ir/src/im2col.rs crates/tensor-ir/src/operator.rs crates/tensor-ir/src/shape.rs crates/tensor-ir/src/template.rs crates/tensor-ir/src/tensor.rs crates/tensor-ir/src/winograd.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/dtype.rs:
crates/tensor-ir/src/im2col.rs:
crates/tensor-ir/src/operator.rs:
crates/tensor-ir/src/shape.rs:
crates/tensor-ir/src/template.rs:
crates/tensor-ir/src/tensor.rs:
crates/tensor-ir/src/winograd.rs:
