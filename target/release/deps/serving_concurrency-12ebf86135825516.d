/root/repo/target/release/deps/serving_concurrency-12ebf86135825516.d: tests/serving_concurrency.rs Cargo.toml

/root/repo/target/release/deps/libserving_concurrency-12ebf86135825516.rmeta: tests/serving_concurrency.rs Cargo.toml

tests/serving_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
