/root/repo/target/release/deps/polymerization-cc0bcecf34971895.d: crates/bench/benches/polymerization.rs Cargo.toml

/root/repo/target/release/deps/libpolymerization-cc0bcecf34971895.rmeta: crates/bench/benches/polymerization.rs Cargo.toml

crates/bench/benches/polymerization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
