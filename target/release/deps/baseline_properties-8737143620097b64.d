/root/repo/target/release/deps/baseline_properties-8737143620097b64.d: tests/baseline_properties.rs

/root/repo/target/release/deps/baseline_properties-8737143620097b64: tests/baseline_properties.rs

tests/baseline_properties.rs:
