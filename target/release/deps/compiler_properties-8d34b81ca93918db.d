/root/repo/target/release/deps/compiler_properties-8d34b81ca93918db.d: tests/compiler_properties.rs

/root/repo/target/release/deps/compiler_properties-8d34b81ca93918db: tests/compiler_properties.rs

tests/compiler_properties.rs:
