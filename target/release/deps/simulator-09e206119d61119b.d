/root/repo/target/release/deps/simulator-09e206119d61119b.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/release/deps/libsimulator-09e206119d61119b.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
