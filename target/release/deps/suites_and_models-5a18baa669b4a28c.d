/root/repo/target/release/deps/suites_and_models-5a18baa669b4a28c.d: tests/suites_and_models.rs Cargo.toml

/root/repo/target/release/deps/libsuites_and_models-5a18baa669b4a28c.rmeta: tests/suites_and_models.rs Cargo.toml

tests/suites_and_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
