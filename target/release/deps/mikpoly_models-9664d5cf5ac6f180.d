/root/repo/target/release/deps/mikpoly_models-9664d5cf5ac6f180.d: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

/root/repo/target/release/deps/mikpoly_models-9664d5cf5ac6f180: crates/models/src/lib.rs crates/models/src/cnns.rs crates/models/src/graph.rs crates/models/src/llama.rs crates/models/src/transformers.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/cnns.rs:
crates/models/src/graph.rs:
crates/models/src/llama.rs:
crates/models/src/transformers.rs:
crates/models/src/vit.rs:
