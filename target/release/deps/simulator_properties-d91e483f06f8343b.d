/root/repo/target/release/deps/simulator_properties-d91e483f06f8343b.d: tests/simulator_properties.rs Cargo.toml

/root/repo/target/release/deps/libsimulator_properties-d91e483f06f8343b.rmeta: tests/simulator_properties.rs Cargo.toml

tests/simulator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
