/root/repo/target/release/deps/serde_json-d5f6ded4eea5f571.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-d5f6ded4eea5f571: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
