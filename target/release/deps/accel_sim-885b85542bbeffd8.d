/root/repo/target/release/deps/accel_sim-885b85542bbeffd8.d: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libaccel_sim-885b85542bbeffd8.rmeta: crates/accel-sim/src/lib.rs crates/accel-sim/src/cluster.rs crates/accel-sim/src/counters.rs crates/accel-sim/src/machine.rs crates/accel-sim/src/noise.rs crates/accel-sim/src/scheduler.rs crates/accel-sim/src/task.rs crates/accel-sim/src/timing.rs Cargo.toml

crates/accel-sim/src/lib.rs:
crates/accel-sim/src/cluster.rs:
crates/accel-sim/src/counters.rs:
crates/accel-sim/src/machine.rs:
crates/accel-sim/src/noise.rs:
crates/accel-sim/src/scheduler.rs:
crates/accel-sim/src/task.rs:
crates/accel-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
