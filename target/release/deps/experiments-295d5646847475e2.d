/root/repo/target/release/deps/experiments-295d5646847475e2.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-295d5646847475e2.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
