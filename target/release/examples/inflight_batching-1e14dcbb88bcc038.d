/root/repo/target/release/examples/inflight_batching-1e14dcbb88bcc038.d: examples/inflight_batching.rs

/root/repo/target/release/examples/inflight_batching-1e14dcbb88bcc038: examples/inflight_batching.rs

examples/inflight_batching.rs:
