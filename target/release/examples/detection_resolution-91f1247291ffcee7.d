/root/repo/target/release/examples/detection_resolution-91f1247291ffcee7.d: examples/detection_resolution.rs

/root/repo/target/release/examples/detection_resolution-91f1247291ffcee7: examples/detection_resolution.rs

examples/detection_resolution.rs:
