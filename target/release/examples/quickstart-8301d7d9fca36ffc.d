/root/repo/target/release/examples/quickstart-8301d7d9fca36ffc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8301d7d9fca36ffc: examples/quickstart.rs

examples/quickstart.rs:
