/root/repo/target/release/examples/quickstart-ecf7e1da8ff85bb0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ecf7e1da8ff85bb0: examples/quickstart.rs

examples/quickstart.rs:
