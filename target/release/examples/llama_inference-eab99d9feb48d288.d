/root/repo/target/release/examples/llama_inference-eab99d9feb48d288.d: examples/llama_inference.rs

/root/repo/target/release/examples/llama_inference-eab99d9feb48d288: examples/llama_inference.rs

examples/llama_inference.rs:
