/root/repo/target/release/examples/bert_serving-0c6d3d51e991de76.d: examples/bert_serving.rs

/root/repo/target/release/examples/bert_serving-0c6d3d51e991de76: examples/bert_serving.rs

examples/bert_serving.rs:
