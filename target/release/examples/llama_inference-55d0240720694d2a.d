/root/repo/target/release/examples/llama_inference-55d0240720694d2a.d: examples/llama_inference.rs

/root/repo/target/release/examples/llama_inference-55d0240720694d2a: examples/llama_inference.rs

examples/llama_inference.rs:
