/root/repo/target/release/examples/npu_offload-d606f81c12c601b1.d: examples/npu_offload.rs Cargo.toml

/root/repo/target/release/examples/libnpu_offload-d606f81c12c601b1.rmeta: examples/npu_offload.rs Cargo.toml

examples/npu_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
