/root/repo/target/release/examples/llama_inference-b529925b9ab14783.d: examples/llama_inference.rs Cargo.toml

/root/repo/target/release/examples/libllama_inference-b529925b9ab14783.rmeta: examples/llama_inference.rs Cargo.toml

examples/llama_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
