/root/repo/target/release/examples/inflight_batching-349502656c7f9a00.d: examples/inflight_batching.rs

/root/repo/target/release/examples/inflight_batching-349502656c7f9a00: examples/inflight_batching.rs

examples/inflight_batching.rs:
