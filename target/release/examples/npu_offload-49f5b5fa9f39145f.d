/root/repo/target/release/examples/npu_offload-49f5b5fa9f39145f.d: examples/npu_offload.rs

/root/repo/target/release/examples/npu_offload-49f5b5fa9f39145f: examples/npu_offload.rs

examples/npu_offload.rs:
