/root/repo/target/release/examples/detection_resolution-96d88cfe9d6d6b91.d: examples/detection_resolution.rs Cargo.toml

/root/repo/target/release/examples/libdetection_resolution-96d88cfe9d6d6b91.rmeta: examples/detection_resolution.rs Cargo.toml

examples/detection_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
