/root/repo/target/release/examples/npu_offload-18ec8236917ddea3.d: examples/npu_offload.rs

/root/repo/target/release/examples/npu_offload-18ec8236917ddea3: examples/npu_offload.rs

examples/npu_offload.rs:
