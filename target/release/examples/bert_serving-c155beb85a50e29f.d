/root/repo/target/release/examples/bert_serving-c155beb85a50e29f.d: examples/bert_serving.rs Cargo.toml

/root/repo/target/release/examples/libbert_serving-c155beb85a50e29f.rmeta: examples/bert_serving.rs Cargo.toml

examples/bert_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
