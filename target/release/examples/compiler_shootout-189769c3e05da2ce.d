/root/repo/target/release/examples/compiler_shootout-189769c3e05da2ce.d: examples/compiler_shootout.rs

/root/repo/target/release/examples/compiler_shootout-189769c3e05da2ce: examples/compiler_shootout.rs

examples/compiler_shootout.rs:
