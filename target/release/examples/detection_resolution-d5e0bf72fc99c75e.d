/root/repo/target/release/examples/detection_resolution-d5e0bf72fc99c75e.d: examples/detection_resolution.rs

/root/repo/target/release/examples/detection_resolution-d5e0bf72fc99c75e: examples/detection_resolution.rs

examples/detection_resolution.rs:
