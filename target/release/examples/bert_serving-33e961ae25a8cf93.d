/root/repo/target/release/examples/bert_serving-33e961ae25a8cf93.d: examples/bert_serving.rs

/root/repo/target/release/examples/bert_serving-33e961ae25a8cf93: examples/bert_serving.rs

examples/bert_serving.rs:
