/root/repo/target/release/examples/compiler_shootout-a0ee96e761d7e7fd.d: examples/compiler_shootout.rs Cargo.toml

/root/repo/target/release/examples/libcompiler_shootout-a0ee96e761d7e7fd.rmeta: examples/compiler_shootout.rs Cargo.toml

examples/compiler_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
