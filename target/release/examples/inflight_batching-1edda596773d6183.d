/root/repo/target/release/examples/inflight_batching-1edda596773d6183.d: examples/inflight_batching.rs Cargo.toml

/root/repo/target/release/examples/libinflight_batching-1edda596773d6183.rmeta: examples/inflight_batching.rs Cargo.toml

examples/inflight_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
