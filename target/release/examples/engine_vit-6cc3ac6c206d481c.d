/root/repo/target/release/examples/engine_vit-6cc3ac6c206d481c.d: examples/engine_vit.rs Cargo.toml

/root/repo/target/release/examples/libengine_vit-6cc3ac6c206d481c.rmeta: examples/engine_vit.rs Cargo.toml

examples/engine_vit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
