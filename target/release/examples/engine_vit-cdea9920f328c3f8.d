/root/repo/target/release/examples/engine_vit-cdea9920f328c3f8.d: examples/engine_vit.rs

/root/repo/target/release/examples/engine_vit-cdea9920f328c3f8: examples/engine_vit.rs

examples/engine_vit.rs:
