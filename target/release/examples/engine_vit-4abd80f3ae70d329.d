/root/repo/target/release/examples/engine_vit-4abd80f3ae70d329.d: examples/engine_vit.rs

/root/repo/target/release/examples/engine_vit-4abd80f3ae70d329: examples/engine_vit.rs

examples/engine_vit.rs:
