/root/repo/target/release/examples/compiler_shootout-bd9444ee804bc855.d: examples/compiler_shootout.rs

/root/repo/target/release/examples/compiler_shootout-bd9444ee804bc855: examples/compiler_shootout.rs

examples/compiler_shootout.rs:
